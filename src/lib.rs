//! # Parameterized Partial Evaluation
//!
//! A Rust implementation of Consel & Khoo, *Parameterized Partial
//! Evaluation* (PLDI 1991; extended version YALEU/DCS/RR-865): partial
//! evaluation parameterized by user-defined static properties (*facets*),
//! in both **online** and **offline** (facet analysis + specialization)
//! form.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`lang`] — the object language: AST, parser, printer, standard
//!   evaluator (Figure 1 of the paper).
//! - [`core`] — facets, abstract facets, products, the partial-evaluation
//!   and binding-time facets, safety checking, and a library of ready-made
//!   facets (Sections 3–5.3).
//! - [`online`] — the online parameterized partial evaluator (Figure 3) and
//!   the conventional simple partial evaluator (Figure 2).
//! - [`offline`] — facet analysis (Figure 4), the analysis-driven
//!   specializer, and the higher-order analysis (Figures 5–6).
//! - [`analyze`] — the static analyzer behind `ppe check`: structured
//!   diagnostics (stable codes, severities, locations) for well-formedness,
//!   unfold-safety, occurrence, input consistency (Definition 6), and
//!   binding-time-certificate congruence (Definition 10).
//! - [`server`] — the concurrent specialization service: a sharded
//!   content-addressed residual cache with single-flight deduplication,
//!   a work-stealing batch driver, and a JSON-lines serve loop (the
//!   `ppe batch` / `ppe serve` subcommands).
//!
//! ## Quickstart
//!
//! Specialize the paper's inner-product program with respect to the *size*
//! of its vector arguments (Section 6):
//!
//! ```
//! use ppe::lang::parse_program;
//! use ppe::core::{facets::SizeFacet, size_of, FacetSet};
//! use ppe::online::{OnlinePe, PeInput};
//!
//! let program = parse_program(
//!     "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
//!      (define (dotprod a b n)
//!        (if (= n 0) 0.0
//!            (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
//! )?;
//!
//! let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
//! let pe = OnlinePe::new(&program, &facets);
//! let residual = pe.specialize_main(&[
//!     PeInput::dynamic().with_facet("size", size_of(3)),
//!     PeInput::dynamic().with_facet("size", size_of(3)),
//! ])?;
//! // The residual program is the fully unrolled Figure 8 of the paper.
//! assert!(ppe::lang::pretty_program(&residual.program).contains("vref"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//! ## Architecture tour
//!
//! The pipeline mirrors the paper's structure:
//!
//! 1. **Say what is known.** Concrete inputs are [`online::PeInput::known`];
//!    unknown inputs are [`online::PeInput::dynamic`], optionally refined
//!    with per-facet abstract values (`.with_facet("size", size_of(3))`).
//!    Internally each input becomes a [`core::ProductVal`]: the smashed
//!    product of the PE facet's `Values` component and one component per
//!    user facet (Definition 5).
//! 2. **Online** ([`online::OnlinePe`]): every primitive application goes
//!    through the product operator (`K̂_P` of Figure 3). Closed operators
//!    compute new abstract values; open operators may answer a constant —
//!    from *any* facet — which reduces the expression and re-abstracts
//!    into all facets. Calls unfold on static information or fold onto
//!    cached specializations (`Sf`).
//! 3. **Offline** ([`offline::analyze`] + [`offline::OfflinePe`]): facet
//!    analysis (Figure 4) runs the same product logic over *abstract
//!    facets* (`Values̄` + `D̄ᵢ`), producing per-function facet signatures
//!    and per-expression annotations that name the facet performing each
//!    reduction; the specializer then just follows them.
//! 4. **Check your facets.** [`core::safety`] makes the paper's
//!    Definition 2 obligations executable; run
//!    [`core::safety::validate_facet`] over samples before trusting a new
//!    facet (`ppe verify-facets` does exactly this for the shipped ones).
//! 5. **Check your programs.** [`analyze::check_source`] reports every
//!    static problem — unbound variables, arity mismatches, unfold-unsafe
//!    recursion, incongruent annotations — as a [`lang::Diagnostic`] with a
//!    stable code, before the engines ever see the program (`ppe check`,
//!    and the server's pre-flight pass).
//!
//! Residual programs are ordinary [`lang::Program`]s: run them with
//! [`lang::Evaluator`], compile them to bytecode and run them fast with
//! [`vm`], clean them with [`lang::optimize_program`] and
//! [`lang::prune_unused_params`], or print them with
//! [`lang::pretty_program`].

#![forbid(unsafe_code)]

pub use ppe_analyze as analyze;
pub use ppe_core as core;
pub use ppe_lang as lang;
pub use ppe_offline as offline;
pub use ppe_online as online;
pub use ppe_server as server;
pub use ppe_vm as vm;
