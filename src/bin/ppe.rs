//! `ppe` — command-line driver for parameterized partial evaluation.
//!
//! ```text
//! ppe run <file.sexp> ARG...            evaluate the main function
//! ppe specialize <file.sexp> INPUT...   specialize (online by default)
//! ppe analyze <file.sexp> INPUT...      facet analysis report (Figure 9 style)
//! ppe check <file.sexp> [INPUT...]      static diagnostics (see below); with
//!     [--format text|json]              INPUTs the binding-time certificate
//!                                       of the offline analysis is checked
//!                                       too; exits nonzero on any error
//! ppe check --impact <old> <new>        per-entry incremental impact of
//!     [--format text|json]              editing old into new: `unchanged`
//!                                       entries keep every cached residual,
//!                                       `invalidated` ones name the changed
//!                                       definition and a call path to it
//! ppe verify-facets [--facets LIST]     run the Definition-2 safety
//!                                       obligations over every shipped
//!                                       facet; exits nonzero on violation
//! ppe batch <requests.jsonl|->          answer a batch of JSON requests
//!     [--jobs N] [--cache-mb N]         through the shared residual cache;
//!     [--program <file.sexp>]           residuals on stdout (input order),
//!     [--cache-dir DIR]                 metrics JSON on stderr
//!     [--cache-mode rw|ro|off]
//! ppe serve [--jobs N] [--cache-mb N]   JSON-lines service on stdin/stdout
//!     [--cache-dir DIR]                 (one request line in, one response
//!     [--cache-mode rw|ro|off]          line out, in order)
//! ppe cache <stats|export|import|gc>    inspect and maintain a disk cache
//!     --cache-dir DIR [FILE|-]          directory (see DESIGN.md §15);
//!     [--max-bytes N]                   export/import move entries between
//!     [--purge-quarantine]              machines as validated JSON lines;
//!     [--stale-against <file.sexp>]     gc --stale-against drops exactly the
//!                                       entries whose closure fingerprint no
//!                                       longer matches the given program
//!
//! `--cache-dir` puts a crash-safe disk tier under the in-memory residual
//! cache: entries survive restarts, corrupt files are quarantined and
//! recomputed (never trusted, never fatal). `--cache-mode ro` reads an
//! existing directory without writing; `off` ignores `--cache-dir`.
//!
//! ARG    ::= 5 | -3 | 2.5 | #t | #f | vec:1.0,2.0,3.0
//! INPUT  ::= ARG                         a known input
//!          | _                           a dynamic input
//!          | _:FACET=SPEC[:FACET=SPEC]…  dynamic with facet refinements
//! SPEC   ::= sign=pos|neg|zero | parity=even|odd | size=N
//!          | range=LO..HI (either bound may be empty)
//!
//! options: --facets LIST   comma-separated: sign,parity,range,size,
//!                          contents,const-set,type (default: all)
//!          --format FMT    check output: text (default) or json (one
//!                          deterministic object per run)
//!          --offline       specialize through facet analysis
//!          --constraints   propagate conditional constraints (online)
//!          --optimize      run the residual cleanup passes
//!          --polyvariant   per-call-pattern variants (analyze only)
//!
//! resource governance (see DESIGN.md § Resource governance):
//!          --fuel N                  reduction-step budget
//!          --deadline-ms N           wall-clock budget in milliseconds
//!          --max-residual-size N     residual-program node cap
//!          --on-exhaustion=POLICY    fail (default) or degrade: under
//!                                    degrade a tripped budget generalizes
//!                                    to dynamic instead of erroring, and
//!                                    the degradation report is printed on
//!                                    stderr
//! ```
//!
//! Example:
//!
//! ```sh
//! ppe specialize iprod.sexp '_:size=3' '_:size=3'
//! ```

use std::process::ExitCode;
use std::time::Duration;

use ppe::analyze::depgraph::{self, DepGraph, EntryImpact};
use ppe::analyze::{check_certificate, check_inputs, check_source, check_unfolding, CheckReport};
use ppe::core::consistency::default_candidates;
use ppe::core::safety::validate_facet;
use ppe::lang::{
    interner_stats, optimize_program, parse_program, pretty_program, prune_unused_params,
    Diagnostic, Evaluator, OptLevel, Program, Value,
};
use ppe::offline::{analyze_with_config, AbstractInput, OfflinePe};
use ppe::online::{ExhaustionPolicy, OnlinePe, PeConfig, PeInput};
use ppe::server::request::diagnostic_json;
use ppe::server::spec::{build_facets, parse_input, parse_value, ALL_FACETS};
use ppe::server::{
    run_batch, serve, BatchOptions, Json, NetOptions, NetServer, PersistConfig, PersistMode,
    PersistTier, ServeOptions, ServiceConfig, SpecializeRequest, SpecializeService,
};

/// Stack size for the worker thread. Deeply recursive source programs drive
/// equally deep recursion in the specializer walks; the guarded recursion
/// limits (`PeConfig::max_recursion_depth`, the evaluator's expression-depth
/// cap) are calibrated against this, not against the OS default main-thread
/// stack.
const WORKER_STACK_BYTES: usize = 256 * 1024 * 1024;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `RUST_MIN_STACK` only sizes stacks of threads spawned by the Rust
    // runtime, never the main thread, so run the driver on a worker thread
    // with an explicit stack: recursion limits then fail structurally
    // (DepthLimit) instead of faulting the process.
    let worker = std::thread::Builder::new()
        .name("ppe-driver".to_owned())
        .stack_size(WORKER_STACK_BYTES)
        .spawn(move || run(&args));
    let outcome = match worker {
        Ok(handle) => match handle.join() {
            Ok(result) => result,
            Err(_) => Err("driver thread panicked".to_owned()),
        },
        // Thread creation can fail under memory pressure; degrade to the
        // main thread rather than refusing to run at all.
        Err(_) => {
            let args: Vec<String> = std::env::args().skip(1).collect();
            run(&args)
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ppe: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "specialize" => cmd_specialize(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "verify-facets" => cmd_verify_facets(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "cache" => cmd_cache(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: ppe run <file> [inputs…] [--engine vm|ast] [--fuel N] [--deadline-ms N]\n\
     \u{20}      ppe <specialize|analyze> <file> [inputs…] [--facets LIST] [--offline] [--constraints]\n\
     \u{20}       [--spec-engine vm|ast] [--fuel N] [--deadline-ms N] [--max-residual-size N]\n\
     \u{20}       [--on-exhaustion=fail|degrade]\n\
     \u{20}      ppe check <file> [inputs…] [--facets LIST] [--format text|json]\n\
     \u{20}      ppe check --impact <old.sexp> <new.sexp> [--format text|json]\n\
     \u{20}      ppe verify-facets [--facets LIST]\n\
     \u{20}      ppe batch <requests.jsonl|-> [--jobs N] [--cache-mb N] [--program <file.sexp>]\n\
     \u{20}       [--cache-dir DIR] [--cache-mode rw|ro|off]\n\
     \u{20}      ppe serve [--jobs N] [--cache-mb N] [--cache-dir DIR] [--cache-mode rw|ro|off]\n\
     \u{20}       [--listen ADDR] [--max-connections N] [--request-deadline-ms N]\n\
     \u{20}      ppe cache <stats|export|import|gc> --cache-dir DIR [FILE|-]\n\
     \u{20}       [--max-bytes N] [--purge-quarantine] [--stale-against <file.sexp>]\n\
     see `cargo doc` or the README for the input syntax"
        .to_owned()
}

/// Parsed command-line options.
struct Opts {
    file: String,
    inputs: Vec<String>,
    facets: Vec<String>,
    offline: bool,
    constraints: bool,
    optimize: bool,
    polyvariant: bool,
    fuel: Option<u64>,
    deadline_ms: Option<u64>,
    max_residual_size: Option<usize>,
    on_exhaustion: ExhaustionPolicy,
    json: bool,
    engine: ExecEngine,
    /// Run the specializer's static evaluation on the bytecode VM
    /// (`--spec-engine`, default on; `ast` selects the oracle tree walk).
    spec_vm: bool,
    impact: bool,
}

/// Which execution engine `ppe run` uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ExecEngine {
    /// The Figure-1 tree-walking evaluator (the differential oracle).
    Ast,
    /// The bytecode VM (`ppe-vm`).
    Vm,
}

impl Opts {
    /// Folds the resource-governance flags into a [`PeConfig`].
    fn pe_config(&self) -> PeConfig {
        let mut config = PeConfig {
            propagate_constraints: self.constraints,
            on_exhaustion: self.on_exhaustion,
            ..PeConfig::default()
        };
        if let Some(fuel) = self.fuel {
            config.fuel = fuel;
        }
        if let Some(ms) = self.deadline_ms {
            config.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(cap) = self.max_residual_size {
            config.max_residual_size = cap;
        }
        if self.spec_vm {
            config.spec_eval = Some(std::sync::Arc::new(ppe_vm::VmStaticEval));
        }
        config
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut file = None;
    let mut inputs = Vec::new();
    let mut facets = ALL_FACETS.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let mut offline = false;
    let mut constraints = false;
    let mut optimize = false;
    let mut polyvariant = false;
    let mut fuel = None;
    let mut deadline_ms = None;
    let mut max_residual_size = None;
    let mut on_exhaustion = ExhaustionPolicy::Fail;
    let mut json = false;
    let mut engine = ExecEngine::Ast;
    let mut spec_vm = true;
    let mut impact = false;
    // Flags that take a value accept both `--flag VALUE` and `--flag=VALUE`.
    let take_value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        let arg = &args[*i];
        if let Some(v) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Ok(v.to_owned());
        }
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let flag = arg.split('=').next().unwrap_or(&arg);
        match flag {
            "--facets" => {
                let list = take_value(args, &mut i, "--facets")?;
                facets = list.split(',').map(|s| s.trim().to_owned()).collect();
            }
            "--offline" => offline = true,
            "--impact" => impact = true,
            "--constraints" => constraints = true,
            "--optimize" => optimize = true,
            "--polyvariant" => polyvariant = true,
            "--fuel" => {
                let v = take_value(args, &mut i, "--fuel")?;
                fuel =
                    Some(v.parse::<u64>().map_err(|_| {
                        format!("--fuel must be a non-negative integer, got `{v}`")
                    })?);
            }
            "--deadline-ms" => {
                let v = take_value(args, &mut i, "--deadline-ms")?;
                deadline_ms = Some(v.parse::<u64>().map_err(|_| {
                    format!("--deadline-ms must be a non-negative integer, got `{v}`")
                })?);
            }
            "--max-residual-size" => {
                let v = take_value(args, &mut i, "--max-residual-size")?;
                max_residual_size = Some(v.parse::<usize>().map_err(|_| {
                    format!("--max-residual-size must be a non-negative integer, got `{v}`")
                })?);
            }
            "--on-exhaustion" => {
                let v = take_value(args, &mut i, "--on-exhaustion")?;
                on_exhaustion = match v.as_str() {
                    "fail" => ExhaustionPolicy::Fail,
                    "degrade" => ExhaustionPolicy::Degrade,
                    other => {
                        return Err(format!(
                            "--on-exhaustion must be fail or degrade, got `{other}`"
                        ))
                    }
                };
            }
            "--format" => {
                let v = take_value(args, &mut i, "--format")?;
                json = match v.as_str() {
                    "text" => false,
                    "json" => true,
                    other => return Err(format!("--format must be text or json, got `{other}`")),
                };
            }
            "--engine" => {
                let v = take_value(args, &mut i, "--engine")?;
                engine = match v.as_str() {
                    "ast" => ExecEngine::Ast,
                    "vm" => ExecEngine::Vm,
                    other => return Err(format!("--engine must be vm or ast, got `{other}`")),
                };
            }
            "--spec-engine" => {
                let v = take_value(args, &mut i, "--spec-engine")?;
                spec_vm = match v.as_str() {
                    "vm" => true,
                    "ast" => false,
                    other => return Err(format!("--spec-engine must be vm or ast, got `{other}`")),
                };
            }
            _ => {
                if file.is_none() {
                    file = Some(arg.clone());
                } else {
                    inputs.push(arg.clone());
                }
            }
        }
        i += 1;
    }
    Ok(Opts {
        file: file.ok_or_else(|| format!("missing program file\n{}", usage()))?,
        inputs,
        facets,
        offline,
        constraints,
        optimize,
        polyvariant,
        fuel,
        deadline_ms,
        max_residual_size,
        on_exhaustion,
        json,
        engine,
        spec_vm,
        impact,
    })
}

fn load(file: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    parse_program(&src).map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let program = load(&opts.file)?;
    let vals: Result<Vec<Value>, String> = opts.inputs.iter().map(|s| parse_value(s)).collect();
    let vals = vals?;
    let out = match opts.engine {
        ExecEngine::Ast => {
            let mut ev = match opts.fuel {
                Some(fuel) => Evaluator::with_fuel(&program, fuel),
                None => Evaluator::new(&program),
            };
            ev.set_max_depth(10_000);
            if let Some(ms) = opts.deadline_ms {
                ev.set_deadline(Some(Duration::from_millis(ms)));
            }
            ev.run_main(&vals).map_err(|e| e.to_string())?
        }
        ExecEngine::Vm => {
            let vm_opts = ppe_vm::VmOptions {
                fuel: opts.fuel.unwrap_or(ppe::lang::DEFAULT_FUEL),
                max_depth: 10_000,
                deadline: opts.deadline_ms.map(Duration::from_millis),
            };
            let (out, _report) = ppe_vm::execute_main(&program, &vals, vm_opts);
            out.map_err(|e| e.to_string())?
        }
    };
    println!("{out}");
    Ok(())
}

fn cmd_specialize(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let program = load(&opts.file)?;
    let facets = build_facets(&opts.facets)?;
    let inputs: Result<Vec<PeInput>, String> = opts.inputs.iter().map(|s| parse_input(s)).collect();
    let inputs = inputs?;
    let config = opts.pe_config();
    let residual = if opts.offline {
        let abstract_inputs: Result<Vec<AbstractInput>, String> = inputs
            .iter()
            .map(|i| {
                i.to_product(&facets)
                    .map(AbstractInput::of_product)
                    .map_err(|e| e.to_string())
            })
            .collect();
        let analysis = analyze_with_config(&program, &facets, &abstract_inputs?, &config)
            .map_err(|e| e.to_string())?;
        OfflinePe::with_config(&program, &facets, &analysis, config)
            .specialize(&inputs)
            .map_err(|e| e.to_string())?
    } else {
        OnlinePe::with_config(&program, &facets, config)
            .specialize_main(&inputs)
            .map_err(|e| e.to_string())?
    };
    let final_program = if opts.optimize {
        prune_unused_params(
            &optimize_program(&residual.program, OptLevel::Safe),
            OptLevel::Safe,
        )
    } else {
        residual.program.clone()
    };
    print!("{}", pretty_program(&final_program));
    eprintln!(
        "; {} reductions, {} static branches, {} unfolds, {} specializations",
        residual.stats.reductions,
        residual.stats.static_branches,
        residual.stats.unfolds,
        residual.stats.specializations
    );
    if !residual.report.is_empty() {
        eprintln!("; degradation report:");
        for line in residual.report.to_string().lines() {
            eprintln!(";   {line}");
        }
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let program = load(&opts.file)?;
    let facets = build_facets(&opts.facets)?;
    let inputs: Result<Vec<PeInput>, String> = opts.inputs.iter().map(|s| parse_input(s)).collect();
    let abstract_inputs: Result<Vec<AbstractInput>, String> = inputs?
        .iter()
        .map(|i| {
            i.to_product(&facets)
                .map(AbstractInput::of_product)
                .map_err(|e| e.to_string())
        })
        .collect();
    let abstract_inputs = abstract_inputs?;
    if opts.polyvariant {
        let poly =
            ppe::offline::polyvariant::analyze_polyvariant(&program, &facets, &abstract_inputs)
                .map_err(|e| e.to_string())?;
        println!("polyvariant variants:");
        let mut names: Vec<_> = program.defs().iter().map(|d| d.name).collect();
        names.sort_by_key(|f| f.as_str());
        for f in names {
            for sig in poly.signatures_of(f) {
                println!("  {f}: {}", sig.display());
            }
        }
        println!("result: {}", poly.result.display());
        return Ok(());
    }
    let analysis = analyze_with_config(&program, &facets, &abstract_inputs, &opts.pe_config())
        .map_err(|e| e.to_string())?;
    if !analysis.degradation.is_empty() {
        eprintln!("; degradation report:");
        for line in analysis.degradation.to_string().lines() {
            eprintln!(";   {line}");
        }
    }
    print!("{}", analysis.report(&program));
    let mut sigs: Vec<_> = analysis.signatures.iter().collect();
    sigs.sort_by_key(|(f, _)| f.as_str());
    println!("\nsignatures:");
    for (f, sig) in sigs {
        println!("  {f}: {}", sig.display());
    }
    Ok(())
}

/// `ppe check`: static diagnostics over a program file, and — when input
/// specs are given — over the inputs (Definition-6 consistency), the
/// offline analysis's unfold decisions, and its binding-time certificate.
///
/// Output is one [`Diagnostic`] per line (`--format text`, the default) or
/// one deterministic JSON object (`--format json`; keys sorted, diagnostics
/// in analysis order). Exit status is nonzero iff any diagnostic is an
/// error, so the command slots into CI pipelines directly.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    if opts.impact {
        return cmd_check_impact(&opts);
    }
    let src = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.file))?;
    let mut report = check_source(&src);
    // The input-driven passes presuppose a program that parses and binds;
    // skip them (rather than crash into the engines) if pass 1 failed.
    if !report.has_errors() && !opts.inputs.is_empty() {
        check_against_inputs(&opts, &src, &mut report.diagnostics)?;
    }
    emit_check_report(&opts, &report)
}

/// `ppe check --impact <old> <new>`: classify every definition of the
/// edited program against the original. `unchanged` is a cache-validity
/// verdict — by the closure-fingerprint keying (DESIGN.md §17) every
/// residual cached for that entry, in memory or on disk, is still
/// addressed by a live key — while `invalidated` names the nearest
/// changed definition and a shortest call path from the entry to it.
/// Output order is sorted by name in both formats, so runs are
/// byte-for-byte deterministic.
fn cmd_check_impact(opts: &Opts) -> Result<(), String> {
    let (old_file, new_file) = match opts.inputs.as_slice() {
        [new] => (opts.file.as_str(), new.as_str()),
        _ => {
            return Err(format!(
                "check --impact takes exactly two program files (old, new)\n{}",
                usage()
            ))
        }
    };
    let old = DepGraph::of_program(&load(old_file)?);
    let new = DepGraph::of_program(&load(new_file)?);
    let report = depgraph::impact(&old, &new);
    if opts.json {
        let entries: Vec<Json> = report
            .entries
            .iter()
            .map(|(f, verdict)| {
                let mut fields = vec![("entry", Json::str(f.as_str()))];
                match verdict {
                    EntryImpact::Unchanged => fields.push(("status", Json::str("unchanged"))),
                    EntryImpact::Added => fields.push(("status", Json::str("added"))),
                    EntryImpact::Invalidated { changed, via } => {
                        fields.push(("changed", Json::str(changed.as_str())));
                        fields.push(("status", Json::str("invalidated")));
                        fields.push((
                            "via",
                            Json::Arr(via.iter().map(|s| Json::str(s.as_str())).collect()),
                        ));
                    }
                }
                Json::obj(fields)
            })
            .collect();
        let obj = Json::obj(vec![
            ("entries", Json::Arr(entries)),
            ("new", Json::str(new_file)),
            ("old", Json::str(old_file)),
            (
                "removed",
                Json::Arr(
                    report
                        .removed
                        .iter()
                        .map(|s| Json::str(s.as_str()))
                        .collect(),
                ),
            ),
        ]);
        println!("{}", obj.render());
    } else {
        for (f, verdict) in &report.entries {
            match verdict {
                EntryImpact::Unchanged => println!("{f}: unchanged"),
                EntryImpact::Added => println!("{f}: added"),
                EntryImpact::Invalidated { changed, via } => {
                    let path: Vec<&str> = via.iter().map(|s| s.as_str()).collect();
                    println!(
                        "{f}: invalidated (changed `{changed}`, via {})",
                        path.join(" -> ")
                    );
                }
            }
        }
        for f in &report.removed {
            println!("{f}: removed");
        }
    }
    Ok(())
}

/// The input-driven half of `ppe check`: input-product consistency
/// (`E0007`/`E0008`), then facet analysis, then the unfold-safety and
/// binding-time-certificate checks over its annotated output.
fn check_against_inputs(opts: &Opts, src: &str, out: &mut Vec<Diagnostic>) -> Result<(), String> {
    let program = parse_program(src).map_err(|e| e.to_string())?;
    let facets = match build_facets(&opts.facets) {
        Ok(facets) => facets,
        Err(e) => {
            out.push(Diagnostic::error("E0008", e));
            return Ok(());
        }
    };
    let arity = program.main().arity();
    if opts.inputs.len() != arity {
        out.push(Diagnostic::error(
            "E0008",
            format!(
                "`{}` takes {arity} inputs but {} were given",
                program.main().name,
                opts.inputs.len()
            ),
        ));
        return Ok(());
    }
    let mut products = Vec::new();
    for (i, s) in opts.inputs.iter().enumerate() {
        let product = parse_input(s).and_then(|p| p.to_product(&facets).map_err(|e| e.to_string()));
        match product {
            Ok(p) => products.push(p),
            Err(e) => out.push(Diagnostic::error(
                "E0008",
                format!("input {i} (`{s}`) is rejected: {e}"),
            )),
        }
    }
    if products.len() != arity {
        return Ok(());
    }
    let before = out.len();
    out.extend(check_inputs(&products, &facets));
    if out[before..].iter().any(Diagnostic::is_error) {
        // Inconsistent products denote no concrete value; analyzing from
        // them would only manufacture follow-on noise.
        return Ok(());
    }
    let abstract_inputs: Vec<AbstractInput> = products
        .into_iter()
        .map(AbstractInput::of_product)
        .collect();
    let analysis = analyze_with_config(&program, &facets, &abstract_inputs, &opts.pe_config())
        .map_err(|e| e.to_string())?;
    out.extend(check_unfolding(&program, &analysis));
    out.extend(check_certificate(&analysis));
    Ok(())
}

/// Prints a [`CheckReport`] in the selected format and converts it to the
/// process outcome (error diagnostics ⇒ failure exit).
fn emit_check_report(opts: &Opts, report: &CheckReport) -> Result<(), String> {
    if opts.json {
        let diags: Vec<Json> = report.diagnostics.iter().map(diagnostic_json).collect();
        let obj = Json::obj(vec![
            ("diagnostics", Json::Arr(diags)),
            ("errors", Json::num(report.errors() as u64)),
            ("file", Json::str(opts.file.clone())),
            ("warnings", Json::num(report.warnings() as u64)),
        ]);
        println!("{}", obj.render());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{}: {} error(s), {} warning(s)",
            opts.file,
            report.errors(),
            report.warnings()
        );
    }
    if report.has_errors() {
        Err(format!("`{}` has errors", opts.file))
    } else {
        Ok(())
    }
}

/// `ppe verify-facets`: run the executable Definition-2 safety
/// obligations (`ppe::core::safety::validate_facet` — Properties 1–8 of
/// the paper) over every selected facet against the shared candidate
/// pool. Exits nonzero if any facet fails any obligation.
fn cmd_verify_facets(args: &[String]) -> Result<(), String> {
    let mut names: Vec<String> = ALL_FACETS.iter().map(|s| s.to_string()).collect();
    let take_value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        let arg = &args[*i];
        if let Some(v) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Ok(v.to_owned());
        }
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let flag = arg.split('=').next().unwrap_or(&arg);
        match flag {
            "--facets" => {
                let list = take_value(args, &mut i, "--facets")?;
                names = list.split(',').map(|s| s.trim().to_owned()).collect();
            }
            other => {
                return Err(format!(
                    "verify-facets does not take `{other}`\n{}",
                    usage()
                ))
            }
        }
        i += 1;
    }
    let facets = build_facets(&names)?;
    let candidates = default_candidates();
    let mut violations = 0usize;
    for facet in facets.iter() {
        match validate_facet(facet, &candidates) {
            Ok(()) => println!(
                "facet `{}`: ok ({} sample values)",
                facet.name(),
                candidates.len()
            ),
            Err(v) => {
                violations += 1;
                println!("facet `{}`: VIOLATION: {v}", facet.name());
            }
        }
    }
    if violations > 0 {
        Err(format!(
            "{violations} facet(s) violate the Definition 2 obligations"
        ))
    } else {
        println!(
            "all {} facet(s) satisfy the safety obligations",
            names.len()
        );
        Ok(())
    }
}

/// What `--cache-mode` asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CacheMode {
    ReadWrite,
    ReadOnly,
    Off,
}

/// Options shared by the `batch` and `serve` service commands.
struct ServerOpts {
    jobs: usize,
    cache_mb: usize,
    program: Option<String>,
    cache_dir: Option<String>,
    cache_mode: CacheMode,
    /// `serve` only: bind a TCP front-end here instead of stdio.
    listen: Option<String>,
    /// `serve --listen` only: concurrent-connection bound.
    max_connections: usize,
    /// `serve --listen` only: per-request deadline cap, milliseconds.
    request_deadline_ms: Option<u64>,
    positional: Vec<String>,
}

impl ServerOpts {
    /// The disk-tier configuration, if one was requested and not `off`.
    fn persist_config(&self) -> Option<PersistConfig> {
        let dir = self.cache_dir.as_ref()?;
        let mode = match self.cache_mode {
            CacheMode::ReadWrite => PersistMode::ReadWrite,
            CacheMode::ReadOnly => PersistMode::ReadOnly,
            CacheMode::Off => return None,
        };
        Some(PersistConfig {
            mode,
            ..PersistConfig::new(dir)
        })
    }
}

fn parse_server_opts(args: &[String]) -> Result<ServerOpts, String> {
    let mut opts = ServerOpts {
        jobs: 1,
        cache_mb: 64,
        program: None,
        cache_dir: None,
        cache_mode: CacheMode::ReadWrite,
        listen: None,
        max_connections: 64,
        request_deadline_ms: None,
        positional: Vec::new(),
    };
    let take_value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        let arg = &args[*i];
        if let Some(v) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Ok(v.to_owned());
        }
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let flag = arg.split('=').next().unwrap_or(&arg);
        match flag {
            "--jobs" => {
                let v = take_value(args, &mut i, "--jobs")?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs must be a positive integer, got `{v}`"))?;
            }
            "--cache-mb" => {
                let v = take_value(args, &mut i, "--cache-mb")?;
                opts.cache_mb = v
                    .parse::<usize>()
                    .map_err(|_| format!("--cache-mb must be a non-negative integer, got `{v}`"))?;
            }
            "--program" => {
                opts.program = Some(take_value(args, &mut i, "--program")?);
            }
            "--cache-dir" => {
                opts.cache_dir = Some(take_value(args, &mut i, "--cache-dir")?);
            }
            "--listen" => {
                opts.listen = Some(take_value(args, &mut i, "--listen")?);
            }
            "--max-connections" => {
                let v = take_value(args, &mut i, "--max-connections")?;
                opts.max_connections = v.parse::<usize>().map_err(|_| {
                    format!("--max-connections must be a positive integer, got `{v}`")
                })?;
            }
            "--request-deadline-ms" => {
                let v = take_value(args, &mut i, "--request-deadline-ms")?;
                opts.request_deadline_ms = Some(v.parse::<u64>().map_err(|_| {
                    format!("--request-deadline-ms must be a non-negative integer, got `{v}`")
                })?);
            }
            "--cache-mode" => {
                let v = take_value(args, &mut i, "--cache-mode")?;
                opts.cache_mode = match v.as_str() {
                    "rw" => CacheMode::ReadWrite,
                    "ro" => CacheMode::ReadOnly,
                    "off" => CacheMode::Off,
                    other => {
                        return Err(format!(
                            "--cache-mode must be rw, ro, or off, got `{other}`"
                        ))
                    }
                };
            }
            _ => opts.positional.push(arg),
        }
        i += 1;
    }
    Ok(opts)
}

fn service_for(opts: &ServerOpts) -> SpecializeService {
    let service = SpecializeService::new(ServiceConfig {
        cache_bytes: opts.cache_mb << 20,
        persist: opts.persist_config(),
        ..ServiceConfig::default()
    });
    if let Some(error) = service.persist_error() {
        eprintln!("ppe: warning: disk cache disabled: {error}");
    }
    service
}

/// Prints the disk tier's fault summary on stderr, if anything went wrong.
fn report_disk_faults(service: &SpecializeService) {
    if let Some(tier) = service.persist() {
        let report = tier.fault_report();
        if !report.is_empty() {
            let action = if tier.read_only() {
                "left in place (read-only mode)"
            } else {
                "quarantined under `quarantine/`"
            };
            eprintln!("; disk faults: {report} ({action})");
        }
    }
}

/// `ppe batch`: answer every request line of a JSONL file (or stdin with
/// `-`) through one shared service. Residuals go to stdout in request
/// order; everything run-dependent (cache dispositions, wall times,
/// metrics) goes to stderr, so the stdout of a batch is byte-identical
/// whatever `--jobs` is.
fn cmd_batch(args: &[String]) -> Result<(), String> {
    let opts = parse_server_opts(args)?;
    let Some(path) = opts.positional.first() else {
        return Err(format!(
            "batch needs a requests file (or `-` for stdin)\n{}",
            usage()
        ));
    };
    let text = if path == "-" {
        use std::io::Read as _;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
    };
    let default_program = match &opts.program {
        Some(file) => {
            Some(std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?)
        }
        None => None,
    };
    // Requests that fail to parse keep their slot so output stays aligned
    // with input lines.
    let parsed: Vec<Result<SpecializeRequest, String>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let mut v = Json::parse(line)?;
            if v.get("program").is_none() {
                if let (Json::Obj(map), Some(src)) = (&mut v, &default_program) {
                    map.insert("program".to_owned(), Json::str(src.clone()));
                }
            }
            SpecializeRequest::from_json(&v)
        })
        .collect();
    let good: Vec<SpecializeRequest> = parsed
        .iter()
        .filter_map(|r| r.as_ref().ok().cloned())
        .collect();
    let service = service_for(&opts);
    let mut responses = run_batch(&service, &good, BatchOptions { jobs: opts.jobs }).into_iter();
    for (i, p) in parsed.iter().enumerate() {
        let outcome = match p {
            Err(msg) => Err(msg.clone()),
            Ok(_) => {
                let r = responses.next().expect("one response per request");
                r.outcome.map_err(|e| e.to_string())
            }
        };
        match outcome {
            Err(msg) => println!(";; request {i} error: {msg}"),
            Ok(out) => {
                println!(";; request {i}");
                for e in &out.degradations {
                    println!(";; degraded: {e}");
                }
                println!("{}", out.residual.trim_end());
            }
        }
    }
    let mut metrics = service.metrics().snapshot().to_json();
    if let Json::Obj(map) = &mut metrics {
        // Term-interner effectiveness for this process: how much of the
        // batch's term construction was answered by sharing.
        let interner = interner_stats();
        map.insert(
            "interner_nodes".to_owned(),
            Json::num(interner.nodes_interned),
        );
        map.insert("interner_hits".to_owned(), Json::num(interner.hits));
        map.insert(
            "interner_hit_rate".to_owned(),
            Json::Num((interner.hit_rate() * 1000.0).round() / 1000.0),
        );
        // VM chunk-cache effectiveness, process-wide (the service's vm_*
        // counters above are per-service; these include every VM run in
        // the process, mirroring the interner numbers).
        let vm = ppe::vm::vm_stats();
        map.insert(
            "vm_total_chunks_compiled".to_owned(),
            Json::num(vm.chunks_compiled),
        );
        map.insert(
            "vm_total_chunk_cache_hits".to_owned(),
            Json::num(vm.chunk_cache_hits),
        );
        map.insert(
            "vm_total_opcodes_executed".to_owned(),
            Json::num(vm.opcodes_executed),
        );
    }
    eprintln!("{}", metrics.render());
    report_disk_faults(&service);
    Ok(())
}

/// `ppe serve`: the JSON-lines request/response loop on stdin/stdout, or
/// (with `--listen ADDR`) the concurrent TCP front-end on that address.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let opts = parse_server_opts(args)?;
    if let Some(extra) = opts.positional.first() {
        return Err(format!("serve takes no positional argument, got `{extra}`"));
    }
    let service = service_for(&opts);
    if let Some(addr) = &opts.listen {
        let server = NetServer::bind(addr.as_str())
            .map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
        eprintln!("; listening on {}", server.local_addr());
        let summary = server
            .run(
                &service,
                NetOptions {
                    max_connections: opts.max_connections,
                    max_inflight: opts.jobs.max(1) as u64,
                    request_deadline: opts.request_deadline_ms.map(Duration::from_millis),
                    ..NetOptions::default()
                },
            )
            .map_err(|e| format!("serve network error: {e}"))?;
        eprintln!(
            "; served {} connections ({} refused), {} lines: {} requests, {} errors",
            summary.connections, summary.refused, summary.lines, summary.requests, summary.errors
        );
    } else {
        let stdin = std::io::stdin();
        let summary = serve(
            &service,
            stdin.lock(),
            std::io::stdout(),
            ServeOptions { jobs: opts.jobs },
        )
        .map_err(|e| format!("serve I/O error: {e}"))?;
        eprintln!(
            "; served {} lines: {} requests, {} errors",
            summary.lines, summary.requests, summary.errors
        );
    }
    eprintln!("{}", service.metrics().snapshot().to_json().render());
    report_disk_faults(&service);
    Ok(())
}

/// `ppe cache`: offline maintenance of one disk-cache directory.
fn cmd_cache(args: &[String]) -> Result<(), String> {
    let Some(action) = args.first().map(String::as_str) else {
        return Err(format!("cache needs an action\n{}", usage()));
    };
    let opts = parse_cache_opts(&args[1..])?;
    let Some(dir) = opts.cache_dir.clone() else {
        return Err(format!("cache {action} needs --cache-dir DIR\n{}", usage()));
    };
    let open = |mode: PersistMode| -> Result<PersistTier, String> {
        PersistTier::open(PersistConfig {
            mode,
            ..PersistConfig::new(&dir)
        })
    };
    match action {
        "stats" => {
            let tier = open(PersistMode::ReadOnly)?;
            let stats = tier
                .stats()
                .map_err(|e| format!("cannot walk `{dir}`: {e}"))?;
            let mut json = stats.to_json();
            if let Json::Obj(map) = &mut json {
                map.insert("dir".to_owned(), Json::str(dir.clone()));
            }
            println!("{}", json.render());
            Ok(())
        }
        "export" => {
            let tier = open(PersistMode::ReadOnly)?;
            let target = opts.file.as_deref().unwrap_or("-");
            let report = if target == "-" {
                let stdout = std::io::stdout();
                tier.export(&mut stdout.lock())
            } else {
                let mut file = std::fs::File::create(target)
                    .map_err(|e| format!("cannot create `{target}`: {e}"))?;
                tier.export(&mut file)
            }
            .map_err(|e| format!("export failed: {e}"))?;
            eprintln!(
                "; exported {} entries, skipped {} corrupt",
                report.exported, report.skipped
            );
            Ok(())
        }
        "import" => {
            let tier = open(PersistMode::ReadWrite)?;
            let source = opts.file.as_deref().unwrap_or("-");
            let report = if source == "-" {
                let stdin = std::io::stdin();
                tier.import(&mut stdin.lock())
            } else {
                let file = std::fs::File::open(source)
                    .map_err(|e| format!("cannot read `{source}`: {e}"))?;
                tier.import(&mut std::io::BufReader::new(file))
            }
            .map_err(|e| format!("import failed: {e}"))?;
            eprintln!(
                "; imported {} entries, rejected {}",
                report.imported, report.rejected
            );
            Ok(())
        }
        "gc" => {
            let tier = open(PersistMode::ReadWrite)?;
            if let Some(program_file) = &opts.stale_against {
                if opts.max_bytes.is_some() {
                    return Err(
                        "--stale-against and --max-bytes are different gc policies; \
                         run them as two separate invocations"
                            .to_owned(),
                    );
                }
                let reference = DepGraph::of_program(&load(program_file)?);
                let report = tier
                    .gc_stale(&reference, opts.purge_quarantine)
                    .map_err(|e| format!("gc --stale-against failed: {e}"))?;
                println!("{}", report.to_json().render());
                return Ok(());
            }
            let report = tier
                .gc(opts.max_bytes.unwrap_or(u64::MAX), opts.purge_quarantine)
                .map_err(|e| format!("gc failed: {e}"))?;
            println!(
                "{}",
                Json::obj(vec![
                    ("kept_bytes", Json::num(report.kept_bytes)),
                    ("kept_entries", Json::num(report.kept_entries)),
                    ("purged_quarantine", Json::num(report.purged_quarantine)),
                    ("removed_bytes", Json::num(report.removed_bytes)),
                    ("removed_entries", Json::num(report.removed_entries)),
                    ("removed_tmp", Json::num(report.removed_tmp)),
                ])
                .render()
            );
            Ok(())
        }
        other => Err(format!(
            "unknown cache action `{other}` (expected stats, export, import, or gc)\n{}",
            usage()
        )),
    }
}

/// Options for `ppe cache`.
struct CacheOpts {
    cache_dir: Option<String>,
    file: Option<String>,
    max_bytes: Option<u64>,
    purge_quarantine: bool,
    stale_against: Option<String>,
}

fn parse_cache_opts(args: &[String]) -> Result<CacheOpts, String> {
    let mut opts = CacheOpts {
        cache_dir: None,
        file: None,
        max_bytes: None,
        purge_quarantine: false,
        stale_against: None,
    };
    let take_value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        let arg = &args[*i];
        if let Some(v) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Ok(v.to_owned());
        }
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let flag = arg.split('=').next().unwrap_or(&arg);
        match flag {
            "--cache-dir" => opts.cache_dir = Some(take_value(args, &mut i, "--cache-dir")?),
            "--max-bytes" => {
                let v = take_value(args, &mut i, "--max-bytes")?;
                opts.max_bytes = Some(v.parse::<u64>().map_err(|_| {
                    format!("--max-bytes must be a non-negative integer, got `{v}`")
                })?);
            }
            "--purge-quarantine" => opts.purge_quarantine = true,
            "--stale-against" => {
                opts.stale_against = Some(take_value(args, &mut i, "--stale-against")?);
            }
            _ if flag.starts_with("--") => {
                return Err(format!("unknown cache option `{flag}`\n{}", usage()))
            }
            _ => {
                if opts.file.replace(arg.clone()).is_some() {
                    return Err(format!(
                        "cache takes one FILE argument, got a second `{arg}`"
                    ));
                }
            }
        }
        i += 1;
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_server_options() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let opts =
            parse_server_opts(&to_args(&["reqs.jsonl", "--jobs", "8", "--cache-mb=16"])).unwrap();
        assert_eq!(opts.positional, vec!["reqs.jsonl"]);
        assert_eq!(opts.jobs, 8);
        assert_eq!(opts.cache_mb, 16);
        assert!(opts.program.is_none());
        let opts = parse_server_opts(&to_args(&["-", "--program", "p.sexp"])).unwrap();
        assert_eq!(opts.program.as_deref(), Some("p.sexp"));
        assert!(parse_server_opts(&to_args(&["--jobs", "many"])).is_err());
    }

    #[test]
    fn parses_cache_tier_flags() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let opts = parse_server_opts(&to_args(&["--cache-dir", "/tmp/c"])).unwrap();
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(opts.cache_mode, CacheMode::ReadWrite);
        let persist = opts.persist_config().expect("tier configured");
        assert_eq!(persist.mode, PersistMode::ReadWrite);

        let opts = parse_server_opts(&to_args(&["--cache-dir=/tmp/c", "--cache-mode=ro"])).unwrap();
        assert_eq!(opts.cache_mode, CacheMode::ReadOnly);
        assert_eq!(
            opts.persist_config().expect("tier configured").mode,
            PersistMode::ReadOnly
        );

        let opts =
            parse_server_opts(&to_args(&["--cache-dir=/tmp/c", "--cache-mode=off"])).unwrap();
        assert!(opts.persist_config().is_none(), "off disables the tier");
        let opts = parse_server_opts(&to_args(&["--cache-mode=rw"])).unwrap();
        assert!(opts.persist_config().is_none(), "no dir, no tier");
        assert!(parse_server_opts(&to_args(&["--cache-mode=sometimes"])).is_err());
    }

    #[test]
    fn parses_cache_command_options() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let opts = parse_cache_opts(&to_args(&[
            "--cache-dir",
            "/tmp/c",
            "dump.jsonl",
            "--max-bytes=4096",
            "--purge-quarantine",
        ]))
        .unwrap();
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(opts.file.as_deref(), Some("dump.jsonl"));
        assert_eq!(opts.max_bytes, Some(4096));
        assert!(opts.purge_quarantine);
        let opts = parse_cache_opts(&to_args(&[
            "--cache-dir=/tmp/c",
            "--stale-against",
            "p.sexp",
        ]))
        .unwrap();
        assert_eq!(opts.stale_against.as_deref(), Some("p.sexp"));
        assert!(parse_cache_opts(&to_args(&["--stale-against"])).is_err());
        assert!(parse_cache_opts(&to_args(&["--max-bytes", "lots"])).is_err());
        assert!(parse_cache_opts(&to_args(&["--mystery-flag"])).is_err());
        assert!(parse_cache_opts(&to_args(&["a.jsonl", "b.jsonl"])).is_err());
    }

    #[test]
    fn parses_options() {
        let args: Vec<String> = ["prog.sexp", "_", "5", "--facets", "sign,range", "--offline"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_opts(&args).unwrap();
        assert_eq!(opts.file, "prog.sexp");
        assert_eq!(opts.inputs, vec!["_", "5"]);
        assert_eq!(opts.facets, vec!["sign", "range"]);
        assert!(opts.offline);
        assert!(!opts.constraints);
        assert!(!opts.optimize);
        assert_eq!(opts.fuel, None);
        assert_eq!(opts.on_exhaustion, ExhaustionPolicy::Fail);
        assert!(!opts.impact);
        let args: Vec<String> = ["--impact", "old.sexp", "new.sexp"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_opts(&args).unwrap();
        assert!(opts.impact);
        assert_eq!(opts.file, "old.sexp");
        assert_eq!(opts.inputs, vec!["new.sexp"]);
    }

    #[test]
    fn parses_governance_flags() {
        let args: Vec<String> = [
            "prog.sexp",
            "_:range=0..10",
            "--fuel",
            "500",
            "--deadline-ms=10",
            "--max-residual-size",
            "4096",
            "--on-exhaustion=degrade",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_opts(&args).unwrap();
        assert_eq!(opts.file, "prog.sexp");
        assert_eq!(opts.inputs, vec!["_:range=0..10"]);
        assert_eq!(opts.fuel, Some(500));
        assert_eq!(opts.deadline_ms, Some(10));
        assert_eq!(opts.max_residual_size, Some(4096));
        assert_eq!(opts.on_exhaustion, ExhaustionPolicy::Degrade);
        let config = opts.pe_config();
        assert_eq!(config.fuel, 500);
        assert_eq!(config.deadline, Some(Duration::from_millis(10)));
        assert_eq!(config.max_residual_size, 4096);
        assert_eq!(config.on_exhaustion, ExhaustionPolicy::Degrade);
    }

    #[test]
    fn rejects_bad_governance_flags() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(parse_opts(&to_args(&["p.sexp", "--fuel", "lots"])).is_err());
        assert!(parse_opts(&to_args(&["p.sexp", "--deadline-ms"])).is_err());
        assert!(parse_opts(&to_args(&["p.sexp", "--on-exhaustion=maybe"])).is_err());
    }
}
