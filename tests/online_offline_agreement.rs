//! Agreement between the three evaluators (standard, online, offline) and
//! between the two partial-evaluation strategies — the program-level
//! reading of Property 6 and of Definition 7 ("partial evaluation
//! subsumes standard evaluation").

mod common;

use common::CORPUS;
use ppe::core::FacetSet;
use ppe::lang::{parse_program, pretty_program, Evaluator, Value};
use ppe::offline::{analyze, AbstractInput, OfflinePe};
use ppe::online::{OnlinePe, PeInput, SimpleInput, SimplePe};

/// Simple PE (Figure 2) and parameterized PE restricted to the PE facet
/// (Definition 7) produce identical residual programs on the corpus, for
/// every static/dynamic division of the inputs.
#[test]
fn simple_pe_equals_pe_facet_only_parameterized_pe() {
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue; // vector constants are not SimpleInput-expressible
        }
        let program = parse_program(src).unwrap();
        let facets = FacetSet::new();
        // All 2^arity static/dynamic divisions.
        for mask in 0..(1u32 << arity) {
            let online_inputs: Vec<PeInput> = (0..*arity)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        PeInput::known(Value::Int(3))
                    } else {
                        PeInput::dynamic()
                    }
                })
                .collect();
            let simple_inputs: Vec<SimpleInput> = (0..*arity)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        SimpleInput::Known(ppe::lang::Const::Int(3))
                    } else {
                        SimpleInput::Dynamic
                    }
                })
                .collect();
            let online = OnlinePe::new(&program, &facets)
                .specialize_main(&online_inputs)
                .unwrap_or_else(|e| panic!("{name}/{mask:b} online: {e}"));
            let simple = SimplePe::new(&program)
                .specialize_main(&simple_inputs)
                .unwrap_or_else(|e| panic!("{name}/{mask:b} simple: {e}"));
            assert_eq!(
                pretty_program(&online.program),
                pretty_program(&simple.program),
                "{name} with division {mask:b}"
            );
        }
    }
}

/// Offline specialization (facet analysis + annotation-driven walk) and
/// online specialization agree *semantically* on the corpus: their
/// residuals compute the same function.
#[test]
fn offline_and_online_residuals_are_semantically_equal() {
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue; // covered (syntactically, even) in paper_example.rs
        }
        let program = parse_program(src).unwrap();
        let facets = FacetSet::new();
        // Static last argument, dynamic rest.
        let mut online_inputs = vec![PeInput::dynamic(); *arity];
        online_inputs[*arity - 1] = PeInput::known(Value::Int(4));
        let mut abstract_inputs = vec![AbstractInput::dynamic(); *arity];
        abstract_inputs[*arity - 1] = AbstractInput::static_();

        let online = OnlinePe::new(&program, &facets)
            .specialize_main(&online_inputs)
            .unwrap_or_else(|e| panic!("{name} online: {e}"));
        let analysis = analyze(&program, &facets, &abstract_inputs)
            .unwrap_or_else(|e| panic!("{name} analysis: {e}"));
        let offline = OfflinePe::new(&program, &facets, &analysis)
            .specialize(&online_inputs)
            .unwrap_or_else(|e| panic!("{name} offline: {e}"));

        for x in [-2i64, 0, 3, 6] {
            let dyn_args = vec![Value::Int(x); *arity - 1];
            let on = Evaluator::new(&online.program).run_main(&dyn_args);
            let off = Evaluator::new(&offline.program).run_main(&dyn_args);
            assert_eq!(on, off, "{name} at x={x}");
        }
    }
}

/// Definition 7's reading: with all inputs known, partial evaluation *is*
/// standard evaluation — online, simple, and offline all produce the
/// constant the evaluator computes.
#[test]
fn all_static_pe_subsumes_standard_evaluation() {
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue;
        }
        let program = parse_program(src).unwrap();
        let concrete: Vec<Value> = (0..*arity).map(|i| Value::Int(3 + i as i64)).collect();
        let expected = Evaluator::new(&program).run_main(&concrete).unwrap();

        let facets = FacetSet::new();
        let online_inputs: Vec<PeInput> = concrete.iter().cloned().map(PeInput::known).collect();
        let online = OnlinePe::new(&program, &facets)
            .specialize_main(&online_inputs)
            .unwrap();
        assert_eq!(
            online.program.main().body.as_const(),
            expected.to_const(),
            "{name} online"
        );

        let abstract_inputs = vec![AbstractInput::static_(); *arity];
        let analysis = analyze(&program, &facets, &abstract_inputs).unwrap();
        let offline = OfflinePe::new(&program, &facets, &analysis)
            .specialize(&online_inputs)
            .unwrap();
        assert_eq!(
            offline.program.main().body.as_const(),
            expected.to_const(),
            "{name} offline"
        );
    }
}

/// The binding-time division computed by the analysis is *sound* for the
/// online evaluator: every expression the analysis calls Static is
/// reduced by the online evaluator on compatible inputs. Observed
/// indirectly: the online residual never contains more dynamic branches
/// than the offline one predicted.
#[test]
fn analysis_static_claims_hold_online() {
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue;
        }
        let program = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let mut online_inputs = vec![PeInput::dynamic(); *arity];
        online_inputs[*arity - 1] = PeInput::known(Value::Int(4));
        let mut abstract_inputs = vec![AbstractInput::dynamic(); *arity];
        abstract_inputs[*arity - 1] = AbstractInput::static_();

        let online = OnlinePe::new(&program, &facets)
            .specialize_main(&online_inputs)
            .unwrap();
        let analysis = analyze(&program, &facets, &abstract_inputs).unwrap();
        let offline = OfflinePe::new(&program, &facets, &analysis)
            .specialize(&online_inputs)
            .unwrap();
        assert!(
            online.stats.static_branches >= offline.stats.static_branches,
            "{name}: online decided {} branches, offline {}",
            online.stats.static_branches,
            offline.stats.static_branches,
        );
    }
}
