//! Property tests for the dependency-fingerprint pass: the closure
//! fingerprint that keys every residual cache (DESIGN.md §17) must be
//! *insensitive* to edits the entry cannot reach, *sensitive* to edits it
//! can, and independent of the textual order of definitions. Together
//! these are the soundness and usefulness halves of incremental
//! re-specialization: unreachable edits keep caches warm, reachable edits
//! never serve a stale residual.

use ppe::analyze::depgraph::DepGraph;
use ppe::lang::{parse_program, Symbol};
use proptest::prelude::*;

const MAX_DEFS: usize = 8;

/// Renders `n` definitions `f0..f{n-1}` in the given order, where `fk`
/// calls exactly the higher-indexed definitions enabled in `adj[k]` and
/// ends in its own private constant. Edges only point upward, so every
/// generated program is acyclic and parses/binds cleanly.
fn program_src(n: usize, adj: &[Vec<bool>], consts: &[i64], order: &[usize]) -> String {
    let mut out = String::new();
    for &k in order {
        let mut body = format!("{}", consts[k]);
        for (j, &enabled) in adj[k].iter().enumerate().take(n).skip(k + 1) {
            if enabled {
                body = format!("(+ (f{j} x) {body})");
            }
        }
        out.push_str(&format!("(define (f{k} x) {body})\n"));
    }
    out
}

fn graph_of(src: &str) -> DepGraph {
    DepGraph::of_program(&parse_program(src).expect("generated program parses"))
}

fn closure_fp(g: &DepGraph, k: usize) -> u64 {
    g.closure_fingerprint(Symbol::intern(&format!("f{k}")))
        .expect("generated definition exists")
}

/// A random DAG over `f0..f{n-1}`: size, upward adjacency (row `k`,
/// column `j` enables the call `fk → fj` when `j > k`), and one constant
/// per body.
fn dag() -> impl Strategy<Value = (usize, Vec<Vec<bool>>, Vec<i64>)> {
    (
        2..MAX_DEFS + 1,
        proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), MAX_DEFS..MAX_DEFS + 1),
            MAX_DEFS..MAX_DEFS + 1,
        ),
        proptest::collection::vec(-100i64..100, MAX_DEFS..MAX_DEFS + 1),
    )
}

proptest! {
    /// The incremental contract, both directions: editing `fk`'s constant
    /// changes `f0`'s closure fingerprint exactly when `f0` reaches `fk`.
    /// The "only if" half keeps caches warm across dead-code edits; the
    /// "if" half is the soundness that stale residuals are never served.
    #[test]
    fn closure_fp_tracks_reachability_exactly(
        (n, adj, consts) in dag(),
        k_seed in 0..MAX_DEFS,
    ) {
        let k = k_seed % n;
        let order: Vec<usize> = (0..n).collect();
        let old_src = program_src(n, &adj, &consts, &order);
        let mut edited = consts.clone();
        edited[k] += 1;
        let new_src = program_src(n, &adj, &edited, &order);

        let old = graph_of(&old_src);
        let new = graph_of(&new_src);
        let f0_reaches_k = old
            .reachable(Symbol::intern("f0"))
            .expect("f0 exists")
            .contains(&Symbol::intern(&format!("f{k}")));

        if f0_reaches_k {
            prop_assert!(
                closure_fp(&old, 0) != closure_fp(&new, 0),
                "a reachable edit (f{k}) must invalidate f0's key\n{old_src}"
            );
        } else {
            prop_assert_eq!(
                closure_fp(&old, 0), closure_fp(&new, 0),
                "an unreachable edit (f{}) must preserve f0's key\n{}", k, old_src
            );
        }
        // The edited definition itself always reaches itself.
        prop_assert!(closure_fp(&old, k) != closure_fp(&new, k));
    }

    /// Closure fingerprints are a property of the call graph, not the
    /// file: permuting the textual order of definitions changes the
    /// whole-program fingerprint's input but not any closure fingerprint.
    #[test]
    fn closure_fp_is_definition_order_invariant(
        (n, adj, consts) in dag(),
        shuffle_seed in any::<i64>(),
    ) {
        let order: Vec<usize> = (0..n).collect();
        let mut shuffled = order.clone();
        // Fisher–Yates from the proptest-supplied seed; the vendored
        // proptest has no shuffle strategy of its own.
        let mut state = shuffle_seed as u64 | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }

        let a = graph_of(&program_src(n, &adj, &consts, &order));
        let b = graph_of(&program_src(n, &adj, &consts, &shuffled));
        for k in 0..n {
            prop_assert_eq!(
                closure_fp(&a, k), closure_fp(&b, k),
                "definition order must not leak into f{}'s key", k
            );
        }
    }
}
