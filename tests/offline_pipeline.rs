//! End-to-end properties of the offline pipeline (Section 5): residual
//! correctness on random programs, analysis reuse across compatible
//! inputs, and the soundness of annotations for every compatible input.

mod common;

use common::{int_expr, program_of, small_const, CORPUS};
use ppe::core::FacetSet;
use ppe::lang::{parse_program, pretty_program, EvalError, Evaluator, Value};
use ppe::offline::{analyze, AbstractInput, OfflinePe};
use ppe::online::PeInput;
use proptest::prelude::*;

fn run(program: &ppe::lang::Program, args: &[Value]) -> Result<Value, EvalError> {
    Evaluator::with_fuel(program, 200_000).run_main(args)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Offline residual correctness on random programs: analyze once at
    /// `(dynamic, static)`, specialize at `(dynamic, known y)`, and the
    /// residual computes what the source computes.
    #[test]
    fn offline_pipeline_preserves_semantics(
        body in int_expr(), y in small_const(), x in -6i64..=6
    ) {
        let program = program_of(&body);
        let facets = FacetSet::new();
        let analysis = analyze(
            &program,
            &facets,
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        ).expect("analysis succeeds");
        let pe = OfflinePe::new(&program, &facets, &analysis);
        let residual = match pe.specialize(&[
            PeInput::dynamic(),
            PeInput::known(Value::from_const(y)),
        ]) {
            Ok(r) => r,
            // Divergent static unfolding is a legal offline outcome.
            Err(ppe::offline::OfflineError::OutOfFuel) => return Ok(()),
            Err(e) => panic!("offline specialization failed: {e}"),
        };
        let source = run(&program, &[Value::Int(x), Value::from_const(y)]);
        let args: Vec<Value> = residual
            .program
            .main()
            .params
            .iter()
            .map(|_| Value::Int(x))
            .collect();
        let spec = run(&residual.program, &args);
        match (source, spec) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "source {a:?}, residual {b:?}"),
        }
    }

    /// One analysis serves every compatible static value — no
    /// annotation-mismatch errors, ever (Property 6 at the pipeline
    /// level).
    #[test]
    fn annotations_hold_for_every_compatible_input(
        body in int_expr(), ys in proptest::collection::vec(small_const(), 1..4)
    ) {
        let program = program_of(&body);
        let facets = FacetSet::new();
        let analysis = analyze(
            &program,
            &facets,
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        ).expect("analysis succeeds");
        let pe = OfflinePe::new(&program, &facets, &analysis);
        for y in ys {
            match pe.specialize(&[PeInput::dynamic(), PeInput::known(Value::from_const(y))]) {
                Ok(_) | Err(ppe::offline::OfflineError::OutOfFuel) => {}
                Err(e @ ppe::offline::OfflineError::AnnotationMismatch(_)) => {
                    prop_assert!(false, "unsound annotation: {e}");
                }
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
    }
}

/// Analysis is computed once and reused for a sweep of sizes and values
/// over the corpus, matching the online evaluator's outputs semantically.
#[test]
fn corpus_offline_matches_online_behaviour() {
    use ppe::online::OnlinePe;
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue;
        }
        let program = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let mut abstract_inputs = vec![AbstractInput::dynamic(); *arity];
        abstract_inputs[*arity - 1] = AbstractInput::static_();
        let analysis = analyze(&program, &facets, &abstract_inputs).unwrap();
        for n in [0i64, 1, 4] {
            let mut inputs = vec![PeInput::dynamic(); *arity];
            inputs[*arity - 1] = PeInput::known(Value::Int(n));
            let offline = OfflinePe::new(&program, &facets, &analysis)
                .specialize(&inputs)
                .unwrap_or_else(|e| panic!("{name}@{n}: {e}"));
            let online = OnlinePe::new(&program, &facets)
                .specialize_main(&inputs)
                .unwrap();
            for x in [-2i64, 0, 3] {
                let off_args: Vec<Value> = offline
                    .program
                    .main()
                    .params
                    .iter()
                    .map(|_| Value::Int(x))
                    .collect();
                let on_args: Vec<Value> = online
                    .program
                    .main()
                    .params
                    .iter()
                    .map(|_| Value::Int(x))
                    .collect();
                let a = run(&offline.program, &off_args);
                let b = run(&online.program, &on_args);
                assert_eq!(a, b, "{name} n={n} x={x}");
            }
        }
    }
}

/// The offline specializer's stats reflect the precomputed decisions: on
/// the fully static side everything reduces; on the fully dynamic side
/// nothing does.
#[test]
fn stats_reflect_the_binding_time_division() {
    let src = "(define (poly x n) (if (= n 0) 1 (* x (poly x (- n 1)))))";
    let program = parse_program(src).unwrap();
    let facets = FacetSet::new();

    let analysis = analyze(
        &program,
        &facets,
        &[AbstractInput::static_(), AbstractInput::static_()],
    )
    .unwrap();
    let all_static = OfflinePe::new(&program, &facets, &analysis)
        .specialize(&[PeInput::known(Value::Int(2)), PeInput::known(Value::Int(5))])
        .unwrap();
    assert_eq!(all_static.stats.residual_prims, 0);
    assert_eq!(all_static.stats.dynamic_branches, 0);
    assert_eq!(all_static.program.main().body, ppe::lang::Expr::int(32));

    let analysis = analyze(
        &program,
        &facets,
        &[AbstractInput::dynamic(), AbstractInput::dynamic()],
    )
    .unwrap();
    let all_dynamic = OfflinePe::new(&program, &facets, &analysis)
        .specialize(&[PeInput::dynamic(), PeInput::dynamic()])
        .unwrap();
    assert_eq!(all_dynamic.stats.reductions, 0);
    assert_eq!(all_dynamic.stats.static_branches, 0);
    // The source is recreated modulo renaming.
    assert!(pretty_program(&all_dynamic.program).contains("(= n 0)"));
}
