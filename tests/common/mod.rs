//! Shared helpers for the integration test suite: a corpus of subject
//! programs and typed random-expression generators for property tests.
//!
//! Not every test binary uses every helper.
#![allow(dead_code)]

use ppe::lang::{Const, Expr, Prim, Symbol};
use proptest::prelude::*;

/// Subject programs used across agreement and correctness tests. Each
/// entry is `(name, source, arity)`.
pub const CORPUS: &[(&str, &str, usize)] = &[
    (
        "power",
        "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
        2,
    ),
    (
        "sum-to",
        "(define (sum-to x n) (if (= n 0) x (+ x (sum-to x (- n 1)))))",
        2,
    ),
    (
        "gauss",
        "(define (gauss n acc) (if (= n 0) acc (gauss (- n 1) (+ acc n))))",
        2,
    ),
    (
        "abs-scale",
        "(define (abs-scale x k)
           (let ((a (if (< x 0) (neg x) x))) (* a k)))",
        2,
    ),
    (
        "fib-ish",
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        1,
    ),
    (
        "even-odd",
        "(define (evn n) (if (= n 0) #t (odd (- n 1))))
         (define (odd n) (if (= n 0) #f (evn (- n 1))))",
        1,
    ),
    (
        "iprod",
        "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
        2,
    ),
];

/// A generator of *integer-valued* expressions over the variables `x`
/// (dynamic) and `y` (static), with conditionals over generated boolean
/// expressions — typed so random programs mostly run instead of
/// immediately failing on type errors.
pub fn int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-6i64..=6).prop_map(Expr::int),
        Just(Expr::var("x")),
        Just(Expr::var("y")),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        let b = bool_expr(inner.clone());
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::prim(Prim::Add, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::prim(Prim::Sub, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::prim(Prim::Mul, vec![a, b])),
            inner.clone().prop_map(|a| Expr::prim(Prim::Neg, vec![a])),
            (b, inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::If(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
            (inner.clone(), inner).prop_map(|(bound, body)| {
                Expr::Let(
                    Symbol::intern("z"),
                    Box::new(bound),
                    Box::new(rename_one_var(body)),
                )
            }),
        ]
    })
}

/// Boolean expressions comparing integer subexpressions.
fn bool_expr(int: impl Strategy<Value = Expr> + Clone + 'static) -> BoxedStrategy<Expr> {
    prop_oneof![
        (int.clone(), int.clone()).prop_map(|(a, b)| Expr::prim(Prim::Lt, vec![a, b])),
        (int.clone(), int.clone()).prop_map(|(a, b)| Expr::prim(Prim::Le, vec![a, b])),
        (int.clone(), int).prop_map(|(a, b)| Expr::prim(Prim::Eq, vec![a, b])),
    ]
    .boxed()
}

/// Rewrites some occurrences of `x` to `z` so generated `let`s are used.
fn rename_one_var(e: Expr) -> Expr {
    match e {
        Expr::Var(v) if v == Symbol::intern("x") => Expr::var("z"),
        other => other,
    }
}

/// Builds the one-function program `(define (f x y) <body>)`.
pub fn program_of(body: &Expr) -> ppe::lang::Program {
    use ppe::lang::FunDef;
    let def = FunDef::new(
        Symbol::intern("f"),
        vec![Symbol::intern("x"), Symbol::intern("y")],
        body.clone(),
    );
    ppe::lang::Program::new(vec![def]).expect("single definition")
}

/// Constant pool for known inputs.
pub fn small_const() -> impl Strategy<Value = Const> {
    (-6i64..=6).prop_map(Const::Int)
}
