//! Parser and printer robustness: no panics on arbitrary input, and
//! round-trips for generated expressions including the higher-order forms.

use ppe::lang::{parse_expr, parse_program, pretty_expr, Expr, Prim, Symbol};
use proptest::prelude::*;

/// Generator of well-formed expressions over `x`, `y`, including `let`,
/// `lambda` and general application.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..=100).prop_map(Expr::int),
        any::<bool>().prop_map(Expr::bool),
        Just(Expr::var("x")),
        Just(Expr::var("y")),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::prim(Prim::Add, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::prim(Prim::Lt, vec![a, b])),
            inner.clone().prop_map(|a| Expr::prim(Prim::Not, vec![a])),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| { Expr::If(Box::new(a), Box::new(b), Box::new(c)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Let(Symbol::intern("z"), Box::new(a), Box::new(b)) }),
            inner
                .clone()
                .prop_map(|b| { Expr::Lambda(vec![Symbol::intern("w")], Box::new(b)) }),
            (inner.clone(), inner).prop_map(|(f, a)| {
                // Apply a lambda so the operator position is a value.
                Expr::App(
                    Box::new(Expr::Lambda(vec![Symbol::intern("w")], Box::new(f))),
                    vec![a],
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse ∘ pretty = id` for generated expressions, including λ and
    /// application (the expression round-trip law stated in the
    /// pretty-printer docs).
    #[test]
    fn pretty_parse_round_trip(e in arb_expr()) {
        let printed = pretty_expr(&e);
        let back = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("{printed}\n{err}"));
        prop_assert_eq!(back, e);
    }

    /// The lexer/parser never panic on arbitrary ASCII soup — they return
    /// errors.
    #[test]
    fn arbitrary_ascii_never_panics(s in "[ -~\\n]{0,80}") {
        let _ = parse_expr(&s);
        let _ = parse_program(&s);
    }

    /// Same for arbitrary Unicode.
    #[test]
    fn arbitrary_unicode_never_panics(s in "\\PC{0,40}") {
        let _ = parse_expr(&s);
        let _ = parse_program(&s);
    }

    /// Deeply right-nested input parses without stack trouble at modest
    /// depth and errors (not panics) at silly depth.
    #[test]
    fn nesting_depth_is_handled(depth in 1usize..120) {
        let src = format!("{}1{}", "(neg ".repeat(depth), ")".repeat(depth));
        let e = parse_expr(&src).unwrap();
        prop_assert_eq!(e.size(), depth + 1);
    }
}

#[test]
fn unmatched_parens_error_cleanly() {
    assert!(parse_expr("(((").is_err());
    assert!(parse_expr(")").is_err());
    assert!(parse_expr("(+ 1 2))").is_err());
}

#[test]
fn comments_and_whitespace_everywhere() {
    let e = parse_expr("( + ;comment\n 1 ;x\n 2 )").unwrap();
    assert_eq!(e, Expr::prim(Prim::Add, vec![Expr::int(1), Expr::int(2)]));
}

#[test]
fn unicode_identifiers_round_trip() {
    let p = parse_program("(define (ƒun λx) λx)").unwrap();
    let printed = ppe::lang::pretty_program(&p);
    assert_eq!(parse_program(&printed).unwrap().defs(), p.defs());
}
