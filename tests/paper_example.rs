//! The paper's Section 6 as executable assertions: Figure 7 in, Figure 8
//! out (online and offline), Figure 9's analysis facts.

use ppe::core::facets::{AbstractSizeVal, SizeFacet};
use ppe::core::{size_of, AbsVal, FacetSet};
use ppe::lang::{parse_program, pretty_program, Evaluator, Value};
use ppe::offline::{analyze, AbstractInput, OfflinePe, PrimAction};
use ppe::online::{OnlinePe, PeInput};

const FIGURE_7: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
     (define (dotprod a b n)
       (if (= n 0) 0.0
           (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

fn facets() -> FacetSet {
    FacetSet::with_facets(vec![Box::new(SizeFacet)])
}

fn sized_inputs(n: i64) -> [PeInput; 2] {
    [
        PeInput::dynamic().with_facet("size", size_of(n)),
        PeInput::dynamic().with_facet("size", size_of(n)),
    ]
}

/// Figure 8, textually: the online residual for size 3 is the fully
/// unrolled sum of products at indices 3, 2, 1.
#[test]
fn figure_8_exact_residual() {
    let program = parse_program(FIGURE_7).unwrap();
    let f = facets();
    let residual = OnlinePe::new(&program, &f)
        .specialize_main(&sized_inputs(3))
        .unwrap();
    let printed = pretty_program(&residual.program);
    let expected = "(define (iprod a b)\n  (+\n    (* (vref a 3) (vref b 3))\n    (+ (* (vref a 2) (vref b 2)) (+ (* (vref a 1) (vref b 1)) 0.0))))\n";
    assert_eq!(printed, expected);
}

/// Online and offline produce the same Figure 8 residual, for several
/// sizes, and one facet analysis serves all of them.
#[test]
fn online_offline_agree_across_sizes() {
    let program = parse_program(FIGURE_7).unwrap();
    let f = facets();
    let s = AbsVal::new(AbstractSizeVal::StaticSize);
    let analysis = analyze(
        &program,
        &f,
        &[
            AbstractInput::dynamic().with_facet("size", s.clone()),
            AbstractInput::dynamic().with_facet("size", s),
        ],
    )
    .unwrap();
    for n in 1..=6 {
        let inputs = sized_inputs(n);
        let online = OnlinePe::new(&program, &f)
            .specialize_main(&inputs)
            .unwrap();
        let offline = OfflinePe::new(&program, &f, &analysis)
            .specialize(&inputs)
            .unwrap();
        assert_eq!(
            pretty_program(&online.program),
            pretty_program(&offline.program),
            "size {n}"
        );
        // Fully unrolled: exactly one residual function, no conditionals.
        assert_eq!(online.program.defs().len(), 1);
    }
}

/// Residual correctness over random vectors: `iprod_n(a, b) = Σ aᵢ·bᵢ`.
#[test]
fn figure_8_residuals_compute_inner_products() {
    let program = parse_program(FIGURE_7).unwrap();
    let f = facets();
    for n in 1..=5usize {
        let residual = OnlinePe::new(&program, &f)
            .specialize_main(&sized_inputs(n as i64))
            .unwrap();
        let a: Vec<Value> = (0..n).map(|i| Value::Float(i as f64 + 0.5)).collect();
        let b: Vec<Value> = (0..n).map(|i| Value::Float(2.0 * i as f64 - 1.0)).collect();
        let expected: f64 = (0..n)
            .map(|i| (i as f64 + 0.5) * (2.0 * i as f64 - 1.0))
            .sum();
        let got = Evaluator::new(&residual.program)
            .run_main(&[Value::vector(a), Value::vector(b)])
            .unwrap();
        assert_eq!(got, Value::Float(expected), "n = {n}");
    }
}

/// Figure 9's rows, as assertions on the analysis.
#[test]
fn figure_9_analysis_facts() {
    let program = parse_program(FIGURE_7).unwrap();
    let f = facets();
    let s = AbsVal::new(AbstractSizeVal::StaticSize);
    let analysis = analyze(
        &program,
        &f,
        &[
            AbstractInput::dynamic().with_facet("size", s.clone()),
            AbstractInput::dynamic().with_facet("size", s),
        ],
    )
    .unwrap();

    // Row 1: A = ⟨Dyn, s⟩, B = ⟨Dyn, s⟩.
    let iprod = analysis.signatures.get("iprod".into()).unwrap();
    assert_eq!(iprod.args[0].display(), "⟨Dyn, s⟩");
    assert_eq!(iprod.args[1].display(), "⟨Dyn, s⟩");

    // Row 2: Vecf(A) = ⟨Stat⟩ — and the reduction is attributed to the
    // Size facet, not the binding-time facet.
    let ann = &analysis.annotated[&"iprod".into()];
    let ppe::offline::AnnExpr { kind, .. } = &ann.body;
    let ppe::offline::AnnKind::Let { bound, .. } = kind else {
        panic!("iprod body is a let");
    };
    assert!(bound.value.bt().is_static(), "Vecf(A) must be Static");
    let ppe::offline::AnnKind::Prim { action, .. } = &bound.kind else {
        panic!("bound is (vsize a)");
    };
    assert_eq!(*action, PrimAction::Reduce { source: 1 });

    // Rows 3–4: n = ⟨Stat⟩ in dotprod; the if-test is static.
    let dotprod = analysis.signatures.get("dotprod".into()).unwrap();
    assert!(dotprod.args[2].bt().is_static());
    let dot_ann = &analysis.annotated[&"dotprod".into()];
    let ppe::offline::AnnKind::If { static_cond, .. } = &dot_ann.body.kind else {
        panic!("dotprod body is an if");
    };
    assert!(static_cond);

    // Rows 5–6: vref(A, n), vref(B, n) = ⟨Dyn⟩ — elements stay dynamic.
    let report = analysis.report(&program);
    assert!(report.contains("if-test [static]"), "{report}");
    // At least one vref row with a Dynamic product.
    assert!(report.contains("(vref …)"), "{report}");
}

/// "This contrasts with the online parameterized partial evaluation …
/// where the size facet computation was performed for each function"
/// (Section 6.2): in the offline pipeline, the size facet's open operator
/// fires exactly once (for `Vecf` in iprod), while the online evaluator
/// consults it at every primitive.
#[test]
fn offline_specializer_performs_fewer_facet_consultations() {
    let program = parse_program(FIGURE_7).unwrap();
    let f = facets();
    let s = AbsVal::new(AbstractSizeVal::StaticSize);
    let analysis = analyze(
        &program,
        &f,
        &[
            AbstractInput::dynamic().with_facet("size", s.clone()),
            AbstractInput::dynamic().with_facet("size", s),
        ],
    )
    .unwrap();
    let inputs = sized_inputs(6);
    let online = OnlinePe::new(&program, &f)
        .specialize_main(&inputs)
        .unwrap();
    let offline = OfflinePe::new(&program, &f, &analysis)
        .specialize(&inputs)
        .unwrap();
    // Same residual, and the offline walk visits no more nodes than the
    // online one (it skips all decision making).
    assert_eq!(
        pretty_program(&online.program),
        pretty_program(&offline.program)
    );
    assert!(
        offline.stats.steps <= online.stats.steps,
        "offline {} vs online {}",
        offline.stats.steps,
        online.stats.steps
    );
}
