//! Budget and limit behaviour: every unbounded process in the system
//! (specialization, unfolding, evaluation, analysis) is governed by an
//! explicit budget that fails loudly instead of hanging.

use ppe::core::facets::RangeFacet;
use ppe::core::FacetSet;
use ppe::lang::{parse_program, EvalError, Evaluator, Value};
use ppe::online::{OnlinePe, PeConfig, PeError, PeInput};

#[test]
fn specializer_fuel_is_respected() {
    let p = parse_program("(define (f n) (if (= n 0) 1 (* n (f (- n 1)))))").unwrap();
    let facets = FacetSet::new();
    let config = PeConfig {
        fuel: 50,
        ..PeConfig::default()
    };
    let err = OnlinePe::with_config(&p, &facets, config)
        .specialize_main(&[PeInput::known(Value::Int(100))])
        .unwrap_err();
    assert_eq!(err, PeError::OutOfFuel);
}

#[test]
fn specialization_cache_limit_is_respected() {
    // The Range facet mints a fresh interval per recursion level, so
    // facet-keyed specialization would grow forever; the cap reports it.
    let p = parse_program(
        "(define (f x n) (if (< n 0) x (f (+ x 1) n)))",
    )
    .unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
    let config = PeConfig {
        max_unfold_depth: 0, // force folding immediately
        max_specializations: 8,
        ..PeConfig::default()
    };
    let result = OnlinePe::with_config(&p, &facets, config).specialize_main(&[
        PeInput::known(Value::Int(0)),
        PeInput::dynamic(),
    ]);
    match result {
        // Either the interval family exhausts the cache...
        Err(PeError::SpecializationLimit(8)) => {}
        // ...or generalization saved the day with few entries; both are
        // acceptable terminations, never a hang.
        Ok(r) => assert!(r.stats.specializations <= 8),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn unfold_budget_zero_still_terminates_and_is_correct() {
    let p = parse_program("(define (f x n) (if (= n 0) x (+ x (f x (- n 1)))))").unwrap();
    let facets = FacetSet::new();
    let config = PeConfig {
        max_unfold_depth: 0,
        ..PeConfig::default()
    };
    let r = OnlinePe::with_config(&p, &facets, config)
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(3))])
        .unwrap();
    // Everything folded: the residual is essentially the source plus the
    // instantiated entry.
    assert!(r.stats.unfolds == 0);
    let args: Vec<Value> = r
        .program
        .main()
        .params
        .iter()
        .map(|_| Value::Int(5))
        .collect();
    let got = Evaluator::new(&r.program).run_main(&args).unwrap();
    let expected = Evaluator::new(&p)
        .run_main(&[Value::Int(5), Value::Int(3)])
        .unwrap();
    assert_eq!(got, expected);
}

#[test]
fn evaluator_budgets_are_independent() {
    let p = parse_program("(define (f n) (if (= n 0) 0 (f (- n 1))))").unwrap();
    // Tight fuel, generous depth.
    let mut ev = Evaluator::with_fuel(&p, 5);
    ev.set_max_depth(10_000);
    assert_eq!(ev.run_main(&[Value::Int(100)]).unwrap_err(), EvalError::OutOfFuel);
    // Generous fuel, tight depth.
    let mut ev = Evaluator::with_fuel(&p, 1_000_000);
    ev.set_max_depth(5);
    assert_eq!(
        ev.run_main(&[Value::Int(100)]).unwrap_err(),
        EvalError::DepthExceeded
    );
    // Both generous: success.
    let mut ev = Evaluator::with_fuel(&p, 1_000_000);
    ev.set_max_depth(200);
    assert_eq!(ev.run_main(&[Value::Int(100)]).unwrap(), Value::Int(0));
}

#[test]
fn stats_are_internally_consistent() {
    let p = parse_program("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))").unwrap();
    let facets = FacetSet::new();
    let r = OnlinePe::new(&p, &facets)
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(6))])
        .unwrap();
    let s = r.stats;
    // Work happened, and every decision is accounted somewhere.
    assert!(s.steps > 0);
    assert!(s.steps >= s.reductions + s.residual_prims);
    assert_eq!(s.static_branches + s.dynamic_branches, 7); // 6 unfolds + base
    assert_eq!(s.unfolds, 6);
    assert_eq!(s.specializations, 0);
}
