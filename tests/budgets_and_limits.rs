//! Budget and limit behaviour: every unbounded process in the system
//! (specialization, unfolding, evaluation, analysis) is governed by an
//! explicit budget that fails loudly instead of hanging — and, under
//! [`ExhaustionPolicy::Degrade`], degrades to a correct residual instead
//! of failing at all.
//!
//! For every budget there is a strict-mode case that trips it and a
//! degrade-mode case on the same program whose residual is then verified
//! against the source on sampled dynamic inputs.

use std::time::{Duration, Instant};

use ppe::core::facets::RangeFacet;
use ppe::core::FacetSet;
use ppe::lang::{parse_program, EvalError, Evaluator, Program, Value};
use ppe::offline::{analyze, AbstractInput, OfflineError, OfflinePe};
use ppe::online::{Budget, ExhaustionPolicy, OnlinePe, PeConfig, PeError, PeInput};

#[test]
fn specializer_fuel_is_respected() {
    let p = parse_program("(define (f n) (if (= n 0) 1 (* n (f (- n 1)))))").unwrap();
    let facets = FacetSet::new();
    let config = PeConfig {
        fuel: 50,
        ..PeConfig::default()
    };
    let err = OnlinePe::with_config(&p, &facets, config)
        .specialize_main(&[PeInput::known(Value::Int(100))])
        .unwrap_err();
    assert_eq!(err, PeError::OutOfFuel);
}

#[test]
fn specialization_cache_limit_is_respected() {
    // The Range facet mints a fresh interval per recursion level, so
    // facet-keyed specialization would grow forever; the cap reports it.
    let p = parse_program("(define (f x n) (if (< n 0) x (f (+ x 1) n)))").unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
    let config = PeConfig {
        max_unfold_depth: 0, // force folding immediately
        max_specializations: 8,
        ..PeConfig::default()
    };
    let result = OnlinePe::with_config(&p, &facets, config)
        .specialize_main(&[PeInput::known(Value::Int(0)), PeInput::dynamic()]);
    match result {
        // Either the interval family exhausts the cache...
        Err(PeError::SpecializationLimit(8)) => {}
        // ...or generalization saved the day with few entries; both are
        // acceptable terminations, never a hang.
        Ok(r) => assert!(r.stats.specializations <= 8),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn unfold_budget_zero_still_terminates_and_is_correct() {
    let p = parse_program("(define (f x n) (if (= n 0) x (+ x (f x (- n 1)))))").unwrap();
    let facets = FacetSet::new();
    let config = PeConfig {
        max_unfold_depth: 0,
        ..PeConfig::default()
    };
    let r = OnlinePe::with_config(&p, &facets, config)
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(3))])
        .unwrap();
    // Everything folded: the residual is essentially the source plus the
    // instantiated entry.
    assert!(r.stats.unfolds == 0);
    let args: Vec<Value> = r
        .program
        .main()
        .params
        .iter()
        .map(|_| Value::Int(5))
        .collect();
    let got = Evaluator::new(&r.program).run_main(&args).unwrap();
    let expected = Evaluator::new(&p)
        .run_main(&[Value::Int(5), Value::Int(3)])
        .unwrap();
    assert_eq!(got, expected);
}

#[test]
fn evaluator_budgets_are_independent() {
    let p = parse_program("(define (f n) (if (= n 0) 0 (f (- n 1))))").unwrap();
    // Tight fuel, generous depth.
    let mut ev = Evaluator::with_fuel(&p, 5);
    ev.set_max_depth(10_000);
    assert_eq!(
        ev.run_main(&[Value::Int(100)]).unwrap_err(),
        EvalError::OutOfFuel
    );
    // Generous fuel, tight depth.
    let mut ev = Evaluator::with_fuel(&p, 1_000_000);
    ev.set_max_depth(5);
    assert_eq!(
        ev.run_main(&[Value::Int(100)]).unwrap_err(),
        EvalError::DepthExceeded
    );
    // Both generous: success.
    let mut ev = Evaluator::with_fuel(&p, 1_000_000);
    ev.set_max_depth(200);
    assert_eq!(ev.run_main(&[Value::Int(100)]).unwrap(), Value::Int(0));
}

// ---------------------------------------------------------------------------
// Degrade-mode pairs: one strict failure + one degrade-to-residual per budget.
// ---------------------------------------------------------------------------

/// Evaluates a program with a generous budget (shared with
/// `residual_correctness.rs`'s harness).
fn run(program: &Program, args: &[Value]) -> Result<Value, EvalError> {
    let mut ev = Evaluator::with_fuel(program, 200_000);
    ev.run_main(args)
}

/// Binds a residual entry point's (possibly pruned) parameter list against
/// named values.
fn residual_args(program: &Program, bindings: &[(&str, Value)]) -> Vec<Value> {
    program
        .main()
        .params
        .iter()
        .map(|p| {
            bindings
                .iter()
                .find(|(n, _)| *n == p.as_str())
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("unexpected residual parameter `{p}`"))
        })
        .collect()
}

/// Asserts that the residual computes the same value as `source` applied to
/// `(x, n)` for at least three sampled dynamic `x`.
fn assert_residual_matches(source: &Program, residual: &Program, n: i64, samples: &[i64]) {
    assert!(samples.len() >= 3, "need at least three sampled inputs");
    for &x in samples {
        let expected = run(source, &[Value::Int(x), Value::Int(n)]).unwrap();
        let got = run(
            residual,
            &residual_args(residual, &[("x", Value::Int(x)), ("n", Value::Int(n))]),
        )
        .unwrap();
        assert_eq!(expected, got, "residual diverges from source at x={x}");
    }
}

/// Fuel: strict mode fails with `OutOfFuel`; degrade mode generalizes the
/// remaining work into a correct residual.
#[test]
fn fuel_exhaustion_degrades_to_correct_residual() {
    let src = "(define (f x n) (if (= n 0) x (+ x (f x (- n 1)))))";
    let p = parse_program(src).unwrap();
    let facets = FacetSet::new();
    let strict = PeConfig {
        fuel: 50,
        ..PeConfig::default()
    };
    let err = OnlinePe::with_config(&p, &facets, strict.clone())
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(100))])
        .unwrap_err();
    assert_eq!(err, PeError::OutOfFuel);

    let degrade = PeConfig {
        on_exhaustion: ExhaustionPolicy::Degrade,
        ..strict
    };
    let r = OnlinePe::with_config(&p, &facets, degrade)
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(100))])
        .unwrap();
    assert!(r.report.tripped(Budget::Fuel), "report: {}", r.report);
    assert_residual_matches(&p, &r.program, 100, &[-3, 0, 5, 11]);
}

/// Unfold depth: the *offline* engine fails strictly when the analysis
/// mandates more unfolding than the budget allows; degrade mode folds the
/// rest into a generalized specialization. (The online engine generalizes
/// at the unfold horizon by construction and never fails on this budget.)
#[test]
fn offline_unfold_exhaustion_degrades_to_correct_residual() {
    let src = "(define (g x n) (if (= n 0) x (+ x (g x (- n 1)))))";
    let p = parse_program(src).unwrap();
    let facets = FacetSet::new();
    let inputs = [AbstractInput::dynamic(), AbstractInput::static_()];
    let analysis = analyze(&p, &facets, &inputs).unwrap();
    let strict = PeConfig {
        max_unfold_depth: 4,
        ..PeConfig::default()
    };
    let pe_inputs = [PeInput::dynamic(), PeInput::known(Value::Int(10))];
    let err = OfflinePe::with_config(&p, &facets, &analysis, strict.clone())
        .specialize(&pe_inputs)
        .unwrap_err();
    assert_eq!(err, OfflineError::OutOfFuel);

    let degrade = PeConfig {
        on_exhaustion: ExhaustionPolicy::Degrade,
        ..strict
    };
    let r = OfflinePe::with_config(&p, &facets, &analysis, degrade)
        .specialize(&pe_inputs)
        .unwrap();
    assert!(
        r.report.tripped(Budget::UnfoldDepth),
        "report: {}",
        r.report
    );
    for &x in &[-3i64, 0, 5] {
        let expected = run(&p, &[Value::Int(x), Value::Int(10)]).unwrap();
        let got = run(
            &r.program,
            &residual_args(&r.program, &[("x", Value::Int(x)), ("n", Value::Int(10))]),
        )
        .unwrap();
        assert_eq!(expected, got, "offline degrade residual wrong at x={x}");
    }
}

/// Specialization cache: a range-refined argument mints a fresh pattern per
/// recursion level, overflowing the cache strictly; degrade mode retries
/// the call at the fully-generalized pattern and terminates.
#[test]
fn cache_exhaustion_degrades_to_correct_residual() {
    let src = "(define (f x n) (if (= n 0) x (f (+ x 1) (- n 1))))";
    let p = parse_program(src).unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
    // Both arguments are PE-dynamic so every call folds, but the range
    // refinement shifts by one per recursion level: a fresh pattern each
    // time, far below the unfold horizon where generalization would kick
    // in.
    let strict = PeConfig {
        max_specializations: 8,
        ..PeConfig::default()
    };
    let inputs = [
        PeInput::dynamic().with_facet(
            "range",
            ppe::core::AbsVal::new(ppe::core::facets::RangeVal::Range {
                lo: Some(0),
                hi: Some(0),
            }),
        ),
        PeInput::dynamic(),
    ];
    let err = OnlinePe::with_config(&p, &facets, strict.clone())
        .specialize_main(&inputs)
        .unwrap_err();
    assert_eq!(err, PeError::SpecializationLimit(8));

    let degrade = PeConfig {
        on_exhaustion: ExhaustionPolicy::Degrade,
        ..strict
    };
    let r = OnlinePe::with_config(&p, &facets, degrade)
        .specialize_main(&inputs)
        .unwrap();
    assert!(
        r.report.tripped(Budget::SpecializationCache),
        "report: {}",
        r.report
    );
    // The range refinement promises x ∈ [0, 0]; sample n instead.
    for &n in &[1i64, 3, 7] {
        let expected = run(&p, &[Value::Int(0), Value::Int(n)]).unwrap();
        let got = run(
            &r.program,
            &residual_args(&r.program, &[("x", Value::Int(0)), ("n", Value::Int(n))]),
        )
        .unwrap();
        assert_eq!(expected, got, "cache degrade residual wrong at n={n}");
    }
}

/// Residual size: a small cap fails strictly once unfolding inflates the
/// entry body; degrade mode completes (the cap becomes a soft trigger that
/// stops further unfolding) and the residual stays correct.
#[test]
fn residual_size_exhaustion_degrades_to_correct_residual() {
    let src = "(define (f x n) (if (= n 0) 1 (* x (f x (- n 1)))))";
    let p = parse_program(src).unwrap();
    let facets = FacetSet::new();
    let strict = PeConfig {
        max_residual_size: 10,
        ..PeConfig::default()
    };
    let err = OnlinePe::with_config(&p, &facets, strict.clone())
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(20))])
        .unwrap_err();
    assert_eq!(err, PeError::ResidualSizeLimit(10));

    let degrade = PeConfig {
        on_exhaustion: ExhaustionPolicy::Degrade,
        ..strict
    };
    let r = OnlinePe::with_config(&p, &facets, degrade)
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(20))])
        .unwrap();
    assert!(
        r.report.tripped(Budget::ResidualSize),
        "report: {}",
        r.report
    );
    assert_residual_matches(&p, &r.program, 20, &[-2, 0, 1, 3]);
}

/// Builds a divergent program whose body is fat enough that the deadline
/// check (every 256 ticks) fires long before the recursion guard. The
/// ballast sums a deep chain of zeros so values stay bounded — overflow
/// would residualize the recursion and terminate it spuriously.
fn fat_divergent_program() -> Program {
    let mut ballast = "0".to_owned();
    for _ in 0..1_000 {
        ballast = format!("(+ 0 {ballast})");
    }
    parse_program(&format!("(define (f n) (+ {ballast} (f (+ n 1))))")).unwrap()
}

/// Deadline: a 10 ms deadline on a divergent unfolding returns promptly in
/// both policies — a structured error under `Fail`, a residual plus report
/// under `Degrade`. Never a hang, never a stack overflow.
#[test]
fn deadline_on_divergent_program_returns_promptly() {
    let p = fat_divergent_program();
    let facets = FacetSet::new();
    let strict = PeConfig {
        max_unfold_depth: 1 << 20, // deadline, not the unfold horizon, binds
        fuel: u64::MAX,            // nor fuel
        deadline: Some(Duration::from_millis(10)),
        ..PeConfig::default()
    };
    let start = Instant::now();
    let err = OnlinePe::with_config(&p, &facets, strict.clone())
        .specialize_main(&[PeInput::known(Value::Int(0))])
        .unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        matches!(err, PeError::DeadlineExceeded | PeError::DepthLimit(_)),
        "unexpected error: {err}"
    );
    assert!(elapsed < Duration::from_secs(2), "took {elapsed:?}");

    let degrade = PeConfig {
        on_exhaustion: ExhaustionPolicy::Degrade,
        ..strict
    };
    let start = Instant::now();
    let r = OnlinePe::with_config(&p, &facets, degrade)
        .specialize_main(&[PeInput::known(Value::Int(0))])
        .unwrap();
    let elapsed = start.elapsed();
    assert!(elapsed < Duration::from_secs(2), "took {elapsed:?}");
    assert!(!r.report.is_empty(), "degrade run must report what tripped");
}

/// The recursion guard turns deeply nested *source syntax* into a
/// structured error rather than a native stack overflow — under both
/// policies, since no amount of generalization shrinks source nesting.
#[test]
fn deep_source_nesting_is_a_structured_error() {
    let depth = 20_000;
    let mut body = "x".to_owned();
    for _ in 0..depth {
        body = format!("(+ 1 {body})");
    }
    let p = parse_program(&format!("(define (f x) {body})")).unwrap();
    let facets = FacetSet::new();
    for policy in [ExhaustionPolicy::Fail, ExhaustionPolicy::Degrade] {
        let config = PeConfig {
            on_exhaustion: policy,
            ..PeConfig::default()
        };
        let err = OnlinePe::with_config(&p, &facets, config)
            .specialize_main(&[PeInput::dynamic()])
            .unwrap_err();
        assert!(
            matches!(err, PeError::DepthLimit(_)),
            "{policy:?}: unexpected error {err}"
        );
    }
}

/// The evaluator honours a wall-clock deadline independently of fuel and
/// call depth.
#[test]
fn evaluator_deadline_is_respected() {
    let p =
        parse_program("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))").unwrap();
    let mut ev = Evaluator::with_fuel(&p, u64::MAX);
    ev.set_max_depth(100);
    ev.set_deadline(Some(Duration::from_millis(10)));
    let start = Instant::now();
    let err = ev.run_main(&[Value::Int(40)]).unwrap_err();
    assert_eq!(err, EvalError::DeadlineExceeded);
    assert!(start.elapsed() < Duration::from_secs(2));
}

#[test]
fn stats_are_internally_consistent() {
    let p = parse_program("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))").unwrap();
    let facets = FacetSet::new();
    let r = OnlinePe::new(&p, &facets)
        .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(6))])
        .unwrap();
    let s = r.stats;
    // Work happened, and every decision is accounted somewhere.
    assert!(s.steps > 0);
    assert!(s.steps >= s.reductions + s.residual_prims);
    assert_eq!(s.static_branches + s.dynamic_branches, 7); // 6 unfolds + base
    assert_eq!(s.unfolds, 6);
    assert_eq!(s.specializations, 0);
}
