//! Differential suite for the VM-backed static-evaluation path
//! (`--spec-engine vm` vs `ast`).
//!
//! The shortcut's contract (see `ppe_online::spec_eval`) is that firing it
//! is observationally invisible: same residual bytes, same statistics,
//! same budget accounting, same error classification. These tests pin that
//! contract on three fronts:
//!
//! 1. **Corpus byte-identity** — every corpus program and the bench
//!    workloads (inner product, power, sign kernel, the first-projection
//!    interpreter) produce `pretty_program`-identical residuals and equal
//!    [`PeStats`] under both engines, across all three specializers.
//! 2. **Random programs** — a property test drives randomly generated
//!    bodies through a static-count loop long enough to clear the warmup
//!    gate, so the shortcut genuinely fires on arbitrary shapes.
//! 3. **Budget parity** — fuel and deadline exhaustion *inside* a run
//!    whose static evaluation went through the VM classifies identically
//!    to the tree walk, in both strict and degrade modes.
//!
//! [`PeStats`]: ppe::online::PeStats

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{int_expr, program_of, small_const, CORPUS};
use ppe::core::facets::ContentsFacet;
use ppe::core::FacetSet;
use ppe::lang::{parse_program, pretty_program, Const, Expr, FunDef, Prim, Program, Symbol, Value};
use ppe::offline::{analyze, AbstractInput, OfflinePe};
use ppe::online::{
    Budget, ExhaustionPolicy, OnlinePe, PeConfig, PeError, PeInput, SimpleInput, SimplePe,
};
use ppe::vm::VmStaticEval;
use proptest::prelude::*;

/// `config` with the requested static-evaluation engine installed.
fn with_engine(config: &PeConfig, vm: bool) -> PeConfig {
    let mut config = config.clone();
    config.spec_eval = vm.then(|| Arc::new(VmStaticEval) as _);
    config
}

/// Asserts one workload produces byte-identical residuals and equal stats
/// under both engines; returns the shared pretty-printed residual.
fn assert_identical(what: &str, mut run: impl FnMut(bool) -> ppe::online::Residual) -> String {
    let ast = run(false);
    let vm = run(true);
    let ast_text = pretty_program(&ast.program);
    let vm_text = pretty_program(&vm.program);
    assert_eq!(ast_text, vm_text, "{what}: residual drift between engines");
    assert_eq!(ast.stats, vm.stats, "{what}: stats drift between engines");
    ast_text
}

/// Tail-static inputs: first parameter dynamic, the rest known as `k`.
fn tail_statics(arity: usize) -> Vec<bool> {
    let mut statics = vec![true; arity];
    if arity > 0 {
        statics[0] = false;
    }
    statics
}

#[test]
fn corpus_residuals_identical_across_engines() {
    // A known count high enough that unfolding outruns the warmup gate,
    // so the shortcut actually fires on the recursive corpus programs.
    let known = Value::Int(40);
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            // Integer knowns don't fit its vector inputs; the bench
            // workloads below cover it with proper size facets.
            continue;
        }
        let program = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let statics = tail_statics(*arity);
        let config = PeConfig::default();

        let inputs: Vec<PeInput> = statics
            .iter()
            .map(|&s| {
                if s {
                    PeInput::known(known.clone())
                } else {
                    PeInput::dynamic()
                }
            })
            .collect();
        assert_identical(&format!("online/{name}"), |vm| {
            OnlinePe::with_config(&program, &facets, with_engine(&config, vm))
                .specialize_main(&inputs)
                .unwrap_or_else(|e| panic!("online/{name}: {e}"))
        });

        let simple_inputs: Vec<SimpleInput> = statics
            .iter()
            .map(|&s| {
                if s {
                    SimpleInput::Known(Const::Int(40))
                } else {
                    SimpleInput::Dynamic
                }
            })
            .collect();
        assert_identical(&format!("simple/{name}"), |vm| {
            SimplePe::with_config(&program, with_engine(&config, vm))
                .specialize_main(&simple_inputs)
                .unwrap_or_else(|e| panic!("simple/{name}: {e}"))
        });

        let abs: Vec<AbstractInput> = statics
            .iter()
            .map(|&s| {
                if s {
                    AbstractInput::static_()
                } else {
                    AbstractInput::dynamic()
                }
            })
            .collect();
        let analysis = analyze(&program, &facets, &abs).unwrap();
        assert_identical(&format!("offline/{name}"), |vm| {
            OfflinePe::with_config(&program, &facets, &analysis, with_engine(&config, vm))
                .specialize(&inputs)
                .unwrap_or_else(|e| panic!("offline/{name}: {e}"))
        });
    }
}

#[test]
fn bench_workloads_identical_across_engines() {
    // The E1/E6 inner product over size facets, online and offline.
    let iprod = ppe_bench::program(ppe_bench::INNER_PRODUCT);
    let sfacets = ppe_bench::size_facets();
    let analysis = ppe_bench::iprod_analysis(&iprod, &sfacets);
    for n in [16i64, 64] {
        let config = ppe_bench::deep_config(n as u32);
        let inputs = ppe_bench::sized_inputs(n);
        assert_identical(&format!("online/iprod_n{n}"), |vm| {
            OnlinePe::with_config(&iprod, &sfacets, with_engine(&config, vm))
                .specialize_main(&inputs)
                .unwrap()
        });
        assert_identical(&format!("offline/iprod_n{n}"), |vm| {
            OfflinePe::with_config(&iprod, &sfacets, &analysis, with_engine(&config, vm))
                .specialize(&inputs)
                .unwrap()
        });
    }

    // The E4 Figure-2 specializer on power and the sign kernel.
    for (name, src) in [
        ("power", ppe_bench::POWER),
        ("kernel", ppe_bench::SIGN_KERNEL),
    ] {
        let program = ppe_bench::program(src);
        let config = ppe_bench::deep_config(64);
        let inputs = [SimpleInput::Dynamic, SimpleInput::Known(Const::Int(64))];
        assert_identical(&format!("simple/{name}"), |vm| {
            SimplePe::with_config(&program, with_engine(&config, vm))
                .specialize_main(&inputs)
                .unwrap()
        });
    }

    // The E5 sign kernel under a wide facet product.
    {
        let program = ppe_bench::program(ppe_bench::SIGN_KERNEL);
        let facets = ppe_bench::facet_set_of_width(4);
        let config = ppe_bench::deep_config(48);
        let inputs = [PeInput::dynamic(), PeInput::known(Value::Int(48))];
        assert_identical("online/kernel_w4", |vm| {
            OnlinePe::with_config(&program, &facets, with_engine(&config, vm))
                .specialize_main(&inputs)
                .unwrap()
        });
    }

    // The E8 first Futamura projection: specializing the bytecode
    // interpreter to a static program — the shortcut's home turf. Assert
    // the VM engine actually fired, so this test cannot pass vacuously.
    {
        let program = ppe_bench::interpreter_program();
        let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
        let code = ppe_bench::linear_bytecode(64);
        let config = ppe_bench::deep_config(4 * 64 + 32);
        let before = ppe::vm::vm_stats();
        assert_identical("online/interpreter", |vm| {
            OnlinePe::with_config(&program, &facets, with_engine(&config, vm))
                .specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])
                .unwrap()
        });
        let after = ppe::vm::vm_stats();
        assert!(
            after.spec_vm_evals > before.spec_vm_evals,
            "interpreter specialization never reached the VM backend"
        );
    }
}

/// Wraps a random body in a static-count accumulation loop:
///
/// ```text
/// (define (g x y n) (if (= n 0) 0 (+ (f x y) (g x y (- n 1)))))
/// (define (f x y) <body>)
/// ```
///
/// Specializing `g` with `n = 24` unfolds the body two dozen times, which
/// clears the warmup gate and re-walks the same subterms per unfolding —
/// exactly the access pattern the shortcut memoizes.
fn looped_program(body: &Expr) -> Program {
    let f = program_of(body).main().clone();
    let x = || Expr::var("x");
    let y = || Expr::var("y");
    let n = || Expr::var("n");
    let g_body = Expr::If(
        Box::new(Expr::prim(Prim::Eq, vec![n(), Expr::int(0)])),
        Box::new(Expr::int(0)),
        Box::new(Expr::prim(
            Prim::Add,
            vec![
                Expr::call("f", vec![x(), y()]),
                Expr::call(
                    "g",
                    vec![x(), y(), Expr::prim(Prim::Sub, vec![n(), Expr::int(1)])],
                ),
            ],
        )),
    );
    let g = FunDef::new(
        Symbol::intern("g"),
        vec![
            Symbol::intern("x"),
            Symbol::intern("y"),
            Symbol::intern("n"),
        ],
        g_body,
    );
    Program::new(vec![g, f]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random bodies, unfolded past the warmup gate: both engines emit
    /// byte-identical residuals with identical statistics, online and
    /// simple. Exhaustion (fuel/residual caps on a pathological draw) must
    /// classify identically too, so errors are compared rather than
    /// unwrapped.
    #[test]
    fn random_programs_identical_across_engines(body in int_expr(), y in small_const()) {
        let program = looped_program(&body);
        let facets = FacetSet::new();
        let config = PeConfig::default();

        let inputs = [
            PeInput::dynamic(),
            PeInput::known(Value::from_const(y)),
            PeInput::known(Value::Int(24)),
        ];
        let run = |vm: bool| {
            OnlinePe::with_config(&program, &facets, with_engine(&config, vm))
                .specialize_main(&inputs)
        };
        match (run(false), run(true)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(pretty_program(&a.program), pretty_program(&b.program));
                prop_assert_eq!(a.stats, b.stats);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "online engines diverged: {:?} vs {:?}", a, b),
        }

        let simple_inputs = [
            SimpleInput::Dynamic,
            SimpleInput::Known(y),
            SimpleInput::Known(Const::Int(24)),
        ];
        let run = |vm: bool| {
            SimplePe::with_config(&program, with_engine(&config, vm))
                .specialize_main(&simple_inputs)
        };
        match (run(false), run(true)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(pretty_program(&a.program), pretty_program(&b.program));
                prop_assert_eq!(a.stats, b.stats);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "simple engines diverged: {:?} vs {:?}", a, b),
        }
    }
}

/// A workload that clears the warmup gate and then keeps going: `gauss`
/// on a large static count, whose every subterm is static.
fn gauss_workload() -> (Program, Vec<PeInput>) {
    let p =
        parse_program("(define (gauss n acc) (if (= n 0) acc (gauss (- n 1) (+ acc n))))").unwrap();
    let inputs = vec![
        PeInput::known(Value::Int(100_000)),
        PeInput::known(Value::Int(0)),
    ];
    (p, inputs)
}

#[test]
fn fuel_exhaustion_classifies_identically_under_vm_engine() {
    let (p, inputs) = gauss_workload();
    let facets = FacetSet::new();
    // Enough fuel to clear the warmup gate (96 ticks) and let the VM path
    // fire, nowhere near enough to finish 100k iterations — and an unfold
    // horizon past the fuel budget, so fuel is the budget that trips.
    let strict = PeConfig {
        fuel: 2_000,
        max_unfold_depth: 1_000_000,
        ..PeConfig::default()
    };
    let run = |config: &PeConfig, vm: bool| {
        OnlinePe::with_config(&p, &facets, with_engine(config, vm)).specialize_main(&inputs)
    };
    let before = ppe::vm::vm_stats();
    let vm_err = run(&strict, true).unwrap_err();
    let after = ppe::vm::vm_stats();
    assert!(
        after.spec_vm_evals > before.spec_vm_evals,
        "VM path never fired before the fuel trip"
    );
    assert_eq!(run(&strict, false).unwrap_err(), PeError::OutOfFuel);
    assert_eq!(vm_err, PeError::OutOfFuel);

    // Degrade mode: both engines finish with the same degradation report
    // and byte-identical residuals.
    let degrade = PeConfig {
        on_exhaustion: ExhaustionPolicy::Degrade,
        ..strict
    };
    let ast = run(&degrade, false).unwrap();
    let vm = run(&degrade, true).unwrap();
    assert!(ast.report.tripped(Budget::Fuel));
    assert!(vm.report.tripped(Budget::Fuel));
    assert_eq!(
        pretty_program(&ast.program),
        pretty_program(&vm.program),
        "degraded residuals drifted between engines"
    );
    assert_eq!(ast.stats, vm.stats);
}

#[test]
fn deadline_exhaustion_classifies_identically_under_vm_engine() {
    let (p, inputs) = gauss_workload();
    let facets = FacetSet::new();
    // An already-expired deadline trips at the first probe (tick 256) —
    // after the warmup gate, so the VM path fires in between. The trip
    // tick is identical on both engines because the VM path charges its
    // ticks through the same governor, preserving probe boundaries.
    let strict = PeConfig {
        deadline: Some(Duration::ZERO),
        ..PeConfig::default()
    };
    let run = |config: &PeConfig, vm: bool| {
        OnlinePe::with_config(&p, &facets, with_engine(config, vm)).specialize_main(&inputs)
    };
    assert_eq!(run(&strict, false).unwrap_err(), PeError::DeadlineExceeded);
    assert_eq!(run(&strict, true).unwrap_err(), PeError::DeadlineExceeded);

    let degrade = PeConfig {
        on_exhaustion: ExhaustionPolicy::Degrade,
        ..strict
    };
    let ast = run(&degrade, false).unwrap();
    let vm = run(&degrade, true).unwrap();
    assert!(ast.report.tripped(Budget::Deadline));
    assert!(vm.report.tripped(Budget::Deadline));
    assert_eq!(
        pretty_program(&ast.program),
        pretty_program(&vm.program),
        "degraded residuals drifted between engines"
    );
    assert_eq!(ast.stats, vm.stats);
}
