//! Standard-semantics conformance tests beyond the in-crate unit tests:
//! evaluation order, strictness, the vector ADT as used by whole programs,
//! and determinism.

use ppe::lang::{parse_program, EvalError, Evaluator, Value};

fn run(src: &str, args: &[Value]) -> Result<Value, EvalError> {
    let p = parse_program(src).unwrap();
    let mut ev = Evaluator::with_fuel(&p, 500_000);
    ev.set_max_depth(2_000);
    ev.run_main(args)
}

#[test]
fn arguments_evaluate_left_to_right() {
    // The first failing argument determines the error.
    let src = "(define (f x) (g (/ 1 0) (vref x 99)))
               (define (g a b) 0)";
    let v = Value::vector(vec![Value::Int(1)]);
    assert_eq!(run(src, &[v]).unwrap_err(), EvalError::DivByZero);

    let src2 = "(define (f x) (g (vref x 99) (/ 1 0)))
                (define (g a b) 0)";
    let v = Value::vector(vec![Value::Int(1)]);
    assert!(matches!(
        run(src2, &[v]).unwrap_err(),
        EvalError::VectorIndex { index: 99, .. }
    ));
}

#[test]
fn let_is_strict() {
    let src = "(define (f x) (let ((dead (/ x 0))) 42))";
    assert_eq!(
        run(src, &[Value::Int(1)]).unwrap_err(),
        EvalError::DivByZero
    );
}

#[test]
fn if_evaluates_only_the_taken_branch() {
    let src = "(define (f b) (if b 1 (/ 1 0)))";
    assert_eq!(run(src, &[Value::Bool(true)]).unwrap(), Value::Int(1));
    assert_eq!(
        run(src, &[Value::Bool(false)]).unwrap_err(),
        EvalError::DivByZero
    );
}

#[test]
fn vectors_are_values_not_references() {
    // updvec is functional: the original vector is unchanged.
    let src = "(define (f v)
           (let ((w (updvec v 1 99.0)))
             (+ (vref v 1) (vref w 1))))";
    let v = Value::vector(vec![Value::Float(1.0)]);
    assert_eq!(run(src, &[v]).unwrap(), Value::Float(100.0));
}

#[test]
fn whole_program_vector_pipeline() {
    // Build a vector of squares 1..n, then sum it: exercises mkvec,
    // updvec, vsize, vref together.
    let src = "(define (main n) (sum (build (mkvec n) n) n))
         (define (build v i)
           (if (= i 0) v (build (updvec v i (* i i)) (- i 1))))
         (define (sum v i)
           (if (= i 0) 0 (+ (vref v i) (sum v (- i 1)))))";
    assert_eq!(run(src, &[Value::Int(5)]).unwrap(), Value::Int(55));
    assert_eq!(run(src, &[Value::Int(0)]).unwrap(), Value::Int(0));
}

#[test]
fn evaluation_is_deterministic() {
    let src = "(define (f n) (if (= n 0) 1 (* n (f (- n 1)))))";
    let a = run(src, &[Value::Int(10)]).unwrap();
    let b = run(src, &[Value::Int(10)]).unwrap();
    assert_eq!(a, b);
    assert_eq!(a, Value::Int(3_628_800));
}

#[test]
fn shadowing_in_nested_lets_and_calls() {
    let src = "(define (f x)
           (let ((x (+ x 1)))
             (let ((y (g x)))
               (let ((x (* x 10)))
                 (+ x y)))))
         (define (g x) (* x 2))";
    // x=3 → x=4 → y=8 → x=40 → 48.
    assert_eq!(run(src, &[Value::Int(3)]).unwrap(), Value::Int(48));
}

#[test]
fn float_and_int_arithmetic_do_not_mix() {
    let src = "(define (f x) (+ x 1))";
    assert!(matches!(
        run(src, &[Value::Float(1.0)]).unwrap_err(),
        EvalError::PrimType { .. }
    ));
}

#[test]
fn booleans_in_arithmetic_are_type_errors() {
    let src = "(define (f b) (+ b 1))";
    assert!(matches!(
        run(src, &[Value::Bool(true)]).unwrap_err(),
        EvalError::PrimType { .. }
    ));
}

#[test]
fn deep_but_bounded_recursion_succeeds() {
    let src = "(define (count n) (if (= n 0) 0 (+ 1 (count (- n 1)))))";
    assert_eq!(run(src, &[Value::Int(1_500)]).unwrap(), Value::Int(1_500));
}
