//! Call-by-need substrate tests (the paper's Section 7 future direction):
//! agreement with the strict semantics where both converge, the deliberate
//! differences where they don't, and residual correctness under the lazy
//! semantics.

mod common;

use common::{int_expr, program_of, small_const, CORPUS};
use ppe::core::FacetSet;
use ppe::lang::{parse_program, EvalError, Evaluator, LazyEvaluator, Value};
use ppe::online::{OnlinePe, PeInput};
use proptest::prelude::*;

fn run_strict(p: &ppe::lang::Program, args: &[Value]) -> Result<Value, EvalError> {
    Evaluator::with_fuel(p, 200_000).run_main(args)
}

fn run_lazy(p: &ppe::lang::Program, args: &[Value]) -> Result<Value, EvalError> {
    LazyEvaluator::with_fuel(p, 200_000).run_main(args)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// When the strict evaluator converges, call-by-need computes the same
    /// value (lazy is "less strict": it can only turn ⊥ into an answer,
    /// never an answer into a different answer).
    #[test]
    fn lazy_agrees_with_strict_where_strict_converges(
        body in int_expr(), y in small_const(), x in -6i64..=6
    ) {
        let program = program_of(&body);
        let args = [Value::Int(x), Value::from_const(y)];
        if let Ok(expected) = run_strict(&program, &args) {
            prop_assert_eq!(run_lazy(&program, &args).unwrap(), expected);
        }
    }

    /// Residuals of the strict online specializer are also correct under
    /// the lazy semantics (the specializer's let-insertion never *adds*
    /// strictness the source didn't have at these convergent points).
    #[test]
    fn residuals_are_lazy_correct(
        body in int_expr(), y in small_const(), x in -6i64..=6
    ) {
        let program = program_of(&body);
        let facets = FacetSet::new();
        let residual = OnlinePe::new(&program, &facets)
            .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::from_const(y))])
            .expect("specialization succeeds");
        let args = [Value::Int(x), Value::from_const(y)];
        if let Ok(expected) = run_lazy(&program, &args) {
            let res_args: Vec<Value> = residual
                .program
                .main()
                .params
                .iter()
                .map(|_| Value::Int(x))
                .collect();
            prop_assert_eq!(run_lazy(&residual.program, &res_args).unwrap(), expected);
        }
    }
}

#[test]
fn corpus_agrees_under_both_semantics() {
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue;
        }
        let program = parse_program(src).unwrap();
        for x in [0i64, 3] {
            let args = vec![Value::Int(x); *arity];
            let strict = run_strict(&program, &args);
            let lazy = run_lazy(&program, &args);
            match (&strict, &lazy) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{name} at {x}"),
                // Lazy may converge where strict does not, never the
                // reverse for these corpus programs.
                (Err(_), _) => {}
                (Ok(_), Err(e)) => panic!("{name} at {x}: lazy failed with {e}"),
            }
        }
    }
}

#[test]
fn laziness_is_observable() {
    // The documented motivating difference: an unused diverging argument.
    let src = "(define (main x) (const-fn x (boom x)))
               (define (const-fn a b) a)
               (define (boom n) (boom n))";
    let p = parse_program(src).unwrap();
    assert!(run_strict(&p, &[Value::Int(1)]).is_err());
    assert_eq!(run_lazy(&p, &[Value::Int(1)]).unwrap(), Value::Int(1));
}
