//! Differential testing of the bytecode VM against the AST evaluator.
//!
//! The AST evaluator is the semantic oracle: on every program and input,
//! the VM must produce the identical value *or* the identical error — and
//! the resource meters must agree too, because both engines advertise the
//! same fuel/depth/deadline contract to the Governor. Any divergence here
//! is a VM bug by definition.

mod common;

use common::{int_expr, program_of, small_const, CORPUS};
use ppe::lang::{parse_program, EvalError, Evaluator, Program, Value};
use ppe::online::{OnlinePe, PeInput};
use ppe::vm::{compile, Vm, VmOptions};
use proptest::prelude::*;

/// Runs both engines on the same program and inputs with the same fuel.
fn differential(
    program: &Program,
    args: &[Value],
    fuel: u64,
) -> (Result<Value, EvalError>, Result<Value, EvalError>, u64, u64) {
    let mut ast = Evaluator::with_fuel(program, fuel);
    let a = ast.run_main(args);
    let compiled = compile(program).expect("program compiles");
    let mut vm = Vm::with_options(VmOptions {
        fuel,
        ..VmOptions::default()
    });
    let v = vm.run_main(&compiled, args);
    (a, v, ast.fuel_used(), vm.fuel_used())
}

/// Per-corpus-entry concrete inputs: iprod wants vectors, the integer
/// programs get a small grid of ints (including values that drive
/// recursion depth and ones that error).
fn corpus_inputs(name: &str, arity: usize) -> Vec<Vec<Value>> {
    if name == "iprod" {
        let v3 = Value::vector(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(3.0),
        ]);
        let w3 = Value::vector(vec![
            Value::Float(4.0),
            Value::Float(5.0),
            Value::Float(6.0),
        ]);
        let v1 = Value::vector(vec![Value::Float(7.0)]);
        return vec![
            vec![v3.clone(), w3.clone()],
            vec![v3.clone(), v1.clone()], // length mismatch → VectorIndex
            vec![v1.clone(), v1],
            vec![Value::Int(1), v3], // type error
        ];
    }
    let grid = [-3i64, 0, 1, 7, 12];
    match arity {
        1 => grid.iter().map(|&a| vec![Value::Int(a)]).collect(),
        2 => grid
            .iter()
            .flat_map(|&a| {
                grid.iter()
                    .map(move |&b| vec![Value::Int(a), Value::Int(b)])
            })
            .collect(),
        n => vec![vec![Value::Int(2); n]],
    }
}

#[test]
fn vm_agrees_with_oracle_on_the_corpus() {
    for &(name, src, arity) in CORPUS {
        let program = parse_program(src).unwrap();
        for args in corpus_inputs(name, arity) {
            let (a, v, af, vf) = differential(&program, &args, 1_000_000);
            assert_eq!(a, v, "{name} on {args:?}");
            assert_eq!(af, vf, "{name} fuel on {args:?}");
        }
    }
}

/// Fuel exhaustion must bite at the *same application* on both engines:
/// sweep fuel from zero past the program's actual consumption and require
/// identical outcomes and identical fuel accounting at every step.
#[test]
fn fuel_exhaustion_parity_across_the_whole_range() {
    let program =
        parse_program("(define (gauss n acc) (if (= n 0) acc (gauss (- n 1) (+ acc n))))").unwrap();
    let args = [Value::Int(9), Value::Int(0)];
    let (full, _, used, _) = differential(&program, &args, 1_000_000);
    assert!(full.is_ok());
    for fuel in 0..=used + 1 {
        let (a, v, af, vf) = differential(&program, &args, fuel);
        assert_eq!(a, v, "fuel={fuel}");
        assert_eq!(af, vf, "fuel accounting at fuel={fuel}");
        if fuel < used {
            assert_eq!(a.unwrap_err(), EvalError::OutOfFuel, "fuel={fuel}");
        } else {
            assert!(a.is_ok(), "fuel={fuel} should suffice (needs {used})");
        }
    }
}

/// Depth limits bite at the same call on both engines, across the whole
/// range from "entry call already too deep" to "plenty".
#[test]
fn depth_limit_parity_across_the_whole_range() {
    let program = parse_program("(define (down n) (if (= n 0) 0 (+ 1 (down (- n 1)))))").unwrap();
    let args = [Value::Int(8)];
    for max_depth in 1..=12u32 {
        let mut ast = Evaluator::new(&program);
        ast.set_max_depth(max_depth);
        let a = ast.run_main(&args);
        let compiled = compile(&program).unwrap();
        let mut vm = Vm::with_options(VmOptions {
            max_depth,
            ..VmOptions::default()
        });
        let v = vm.run_main(&compiled, &args);
        assert_eq!(a, v, "max_depth={max_depth}");
        if max_depth <= 8 {
            assert_eq!(
                v.unwrap_err(),
                EvalError::DepthExceeded,
                "max_depth={max_depth}"
            );
        } else {
            assert_eq!(v.unwrap(), Value::Int(8));
        }
    }
}

/// End to end through the specializer: residuals produced by online PE
/// run identically on both engines, and both agree with the source
/// program on the full inputs (the paper's Theorem 1, now with the VM in
/// the loop).
#[test]
fn residuals_of_the_corpus_agree_on_both_engines() {
    for &(name, src, arity) in CORPUS {
        if name == "iprod" {
            continue; // vector inputs; covered by the golden sweep
        }
        let program = parse_program(src).unwrap();
        // Tail-static shape: first input dynamic, the rest known 3.
        let mut inputs = vec![PeInput::known(Value::Int(3)); arity];
        inputs[0] = PeInput::dynamic();
        let facets = ppe::core::FacetSet::new();
        let residual = OnlinePe::new(&program, &facets)
            .specialize_main(&inputs)
            .expect("specialization succeeds");
        for x in [-2i64, 0, 5] {
            let full: Vec<Value> = (0..arity)
                .map(|i| if i == 0 { Value::Int(x) } else { Value::Int(3) })
                .collect();
            let source = Evaluator::with_fuel(&program, 200_000).run_main(&full);
            let res_args: Vec<Value> = residual
                .program
                .main()
                .params
                .iter()
                .map(|_| Value::Int(x))
                .collect();
            let (a, v, _, _) = differential(&residual.program, &res_args, 200_000);
            assert_eq!(a, v, "{name} residual engines diverge at x={x}");
            match (&source, &v) {
                (Ok(s), Ok(r)) => assert_eq!(s, r, "{name} residual wrong at x={x}"),
                (Err(_), Err(_)) => {}
                (s, r) => panic!("{name} at x={x}: source {s:?}, residual-on-vm {r:?}"),
            }
        }
    }
}

/// Right-nested same-operator spines lower to the FoldChain
/// superinstruction; every case here must agree with the oracle on value,
/// error classification, *and* the point in evaluation order where the
/// error fires. Non-associative operators (`-`) pin the fold direction.
#[test]
fn fold_chain_parity() {
    let deep_sub = {
        // (- 1 (- 2 (- 3 … (- 19 20)))) — 20 elements, one fold.
        let mut s = String::new();
        for i in 1..20 {
            s.push_str(&format!("(- {i} "));
        }
        s.push_str("20");
        for _ in 1..20 {
            s.push(')');
        }
        s
    };
    let cases: &[(&str, &str)] = &[
        // Non-associative spine: the fold order is observable in the value.
        ("sub chain", "(define (f x y) (- x (- 1 (- y (- 2 x)))))"),
        ("deep sub chain", &format!("(define (f x y) {deep_sub})")),
        // Mixed leaves and duplicate variables.
        ("dup vars", "(define (f x y) (+ x (+ x (+ y (+ x y)))))"),
        // Mid-chain overflow: which application overflows is order-dependent.
        (
            "overflow mid-chain",
            "(define (f x y) (* x (* 4611686018427387904 (* x (* y 2)))))",
        ),
        // Element evaluation errors fire before any application.
        (
            "type error mid-chain",
            "(define (f x y) (+ x (+ (< x y) (+ y (+ x 1)))))",
        ),
        // Chain under a conditional, on the jump-landing path.
        (
            "chain after branch",
            "(define (f x y) (if (< x y) (+ x (+ y (+ x (+ y 1)))) (- x (- y (- x (- y 1))))))",
        ),
        // Elements with calls: fuel is charged during element evaluation.
        (
            "calls in chain",
            "(define (f x y) (+ (g x) (+ (g y) (+ (g x) (+ x y)))))
             (define (g n) (* n n))",
        ),
    ];
    for (name, src) in cases {
        let program = parse_program(src).unwrap();
        for args in corpus_inputs(name, 2) {
            for fuel in [0u64, 2, 100_000] {
                let (a, v, af, vf) = differential(&program, &args, fuel);
                assert_eq!(a, v, "{name} on {args:?} fuel={fuel}");
                assert_eq!(af, vf, "{name} fuel meters on {args:?} fuel={fuel}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random typed expressions: identical value-or-error on both engines,
    /// with identical fuel consumption.
    #[test]
    fn vm_agrees_on_random_programs(body in int_expr(), x in -6i64..=6, y in small_const()) {
        let program = program_of(&body);
        let args = [Value::Int(x), Value::from_const(y)];
        let (a, v, af, vf) = differential(&program, &args, 100_000);
        prop_assert_eq!(&a, &v, "engines diverge");
        prop_assert_eq!(af, vf, "fuel meters diverge");
    }

    /// Random programs under *starvation*: whatever fuel the oracle needs,
    /// giving both engines less must fail identically.
    #[test]
    fn vm_agrees_on_random_programs_when_starved(body in int_expr(), x in -6i64..=6) {
        let program = program_of(&body);
        let args = [Value::Int(x), Value::Int(2)];
        let (_, _, used, _) = differential(&program, &args, 100_000);
        for fuel in [0, used / 2, used.saturating_sub(1)] {
            let (a, v, af, vf) = differential(&program, &args, fuel);
            prop_assert_eq!(&a, &v, "starved engines diverge at fuel={}", fuel);
            prop_assert_eq!(af, vf, "starved fuel meters diverge at fuel={}", fuel);
        }
    }

    /// Specialize-then-execute on random programs: the residual runs
    /// identically on both engines.
    #[test]
    fn vm_agrees_on_random_residuals(body in int_expr(), x in -6i64..=6, y in small_const()) {
        let program = program_of(&body);
        let facets = ppe::core::FacetSet::new();
        let residual = OnlinePe::new(&program, &facets)
            .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::from_const(y))])
            .expect("specialization succeeds");
        let args: Vec<Value> = residual
            .program
            .main()
            .params
            .iter()
            .map(|_| Value::Int(x))
            .collect();
        let (a, v, af, vf) = differential(&residual.program, &args, 100_000);
        prop_assert_eq!(&a, &v, "engines diverge on residual");
        prop_assert_eq!(af, vf, "fuel meters diverge on residual");
    }
}
