//! The Type facet end to end: guaranteed type errors surface as `⊥`
//! products during specialization, and type knowledge learned from
//! conditionals flows into branches.

use ppe::core::facets::{TypeFacet, TypeVal};
use ppe::core::{AbsVal, FacetSet, PrimOutcome, ProductVal};
use ppe::lang::{parse_program, pretty_program, Evaluator, Prim, Value};
use ppe::online::{OnlinePe, PeConfig, PeInput};

#[test]
fn product_detects_guaranteed_type_errors() {
    let set = FacetSet::with_facets(vec![Box::new(TypeFacet)]);
    let int = ProductVal::dynamic(&set).with_facet(0, AbsVal::new(TypeVal::Int));
    let boolean = ProductVal::dynamic(&set).with_facet(0, AbsVal::new(TypeVal::Bool));
    assert_eq!(
        set.prim_product(Prim::Add, &[int.clone(), boolean.clone()]),
        PrimOutcome::Bottom
    );
    assert_eq!(
        set.prim_product(Prim::Lt, &[int, boolean]),
        PrimOutcome::Bottom
    );
}

#[test]
fn typed_inputs_propagate_through_specialization() {
    // With x known to be an int, (+ x 1) types as int, and the residual
    // is still semantically the source.
    let src = "(define (f x) (* (+ x 1) 2))";
    let program = parse_program(src).unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(TypeFacet)]);
    let r = OnlinePe::new(&program, &facets)
        .specialize_main(&[PeInput::dynamic().with_facet("type", AbsVal::new(TypeVal::Int))])
        .unwrap();
    for x in [-3i64, 0, 7] {
        let a = Evaluator::new(&program).run_main(&[Value::Int(x)]).unwrap();
        let b = Evaluator::new(&r.program)
            .run_main(&[Value::Int(x)])
            .unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn comparison_outcomes_teach_types_to_branches() {
    // x starts with unknown type. Inside either branch of (< x 0) it must
    // be an int (the comparison would otherwise have errored), so the
    // bool-flavored dead check (= x #t) in the then-branch is a
    // *guaranteed* type error there — its product is ⊥ and the inner
    // conditional survives residually but is statically marked dead.
    let src = "(define (f x) (if (< x 0) (g x) x))
               (define (g x) (+ x 1))";
    let program = parse_program(src).unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(TypeFacet)]);
    let config = PeConfig {
        propagate_constraints: true,
        ..PeConfig::default()
    };
    let r = OnlinePe::with_config(&program, &facets, config)
        .specialize_main(&[PeInput::dynamic()])
        .unwrap();
    // g was specialized with x : int (learned from the test), so the
    // residual is well-typed and semantically faithful.
    let printed = pretty_program(&r.program);
    assert!(printed.contains("(+ x 1)"), "{printed}");
    for x in [-2i64, 5] {
        let a = Evaluator::new(&program).run_main(&[Value::Int(x)]).unwrap();
        let b = Evaluator::new(&r.program)
            .run_main(&[Value::Int(x)])
            .unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn type_facet_composes_with_sign() {
    use ppe::core::facets::{SignFacet, SignVal};
    let set = FacetSet::with_facets(vec![Box::new(TypeFacet), Box::new(SignFacet)]);
    let v = ProductVal::from_value(&Value::Int(-4), &set);
    assert_eq!(v.facet(0).downcast_ref::<TypeVal>(), Some(&TypeVal::Int));
    assert_eq!(v.facet(1).downcast_ref::<SignVal>(), Some(&SignVal::Neg));
    // Both agree through a closed operator.
    match set.prim_product(Prim::Mul, &[v.clone(), v]) {
        PrimOutcome::Const(c) => assert_eq!(c, ppe::lang::Const::Int(16)),
        other => panic!("expected constant, got {other:?}"),
    }
}
