//! Online partial evaluation of higher-order programs (Section 5.5 says
//! "the techniques for higher order online partial evaluation are now
//! known"): β-reduction of manifest lambdas, inlining of known function
//! references, residualization of genuinely unknown applications — and
//! semantic correctness throughout.

use ppe::core::facets::{SignFacet, SignVal};
use ppe::core::{AbsVal, FacetSet};
use ppe::lang::{parse_program, pretty_program, Evaluator, Expr, Value};
use ppe::online::{OnlinePe, PeInput};

fn specialize(src: &str, inputs: &[PeInput]) -> (ppe::lang::Program, ppe::online::Residual) {
    let program = parse_program(src).unwrap();
    let facets = FacetSet::new();
    let residual = OnlinePe::new(&program, &facets)
        .specialize_main(inputs)
        .unwrap();
    (program, residual)
}

#[test]
fn manifest_lambdas_beta_reduce() {
    let (_, r) = specialize(
        "(define (main x) ((lambda (y) (+ y y)) x))",
        &[PeInput::known(Value::Int(21))],
    );
    assert_eq!(r.program.main().body, Expr::int(42));
}

#[test]
fn known_function_references_inline_through_combinators() {
    let (_, r) = specialize(
        "(define (main x) (compose2 inc dbl x))
         (define (compose2 f g v) (f (g v)))
         (define (inc v) (+ v 1))
         (define (dbl v) (* v 2))",
        &[PeInput::known(Value::Int(5))],
    );
    assert_eq!(r.program.main().body, Expr::int(11));
}

#[test]
fn higher_order_with_dynamic_data_still_unfolds_structure() {
    // The combinator structure is static even though x is dynamic: the
    // residual is first-order arithmetic.
    let (program, r) = specialize(
        "(define (main x) (twice square x))
         (define (twice f v) (f (f v)))
         (define (square v) (* v v))",
        &[PeInput::dynamic()],
    );
    let printed = pretty_program(&r.program);
    assert!(!printed.contains("twice"), "{printed}");
    assert!(!printed.contains("lambda"), "{printed}");
    for x in [-3i64, 0, 2] {
        let a = Evaluator::new(&program).run_main(&[Value::Int(x)]).unwrap();
        let b = Evaluator::new(&r.program)
            .run_main(&[Value::Int(x)])
            .unwrap();
        assert_eq!(a, b, "x = {x}");
    }
}

#[test]
fn lambdas_over_dynamic_captures_stay_residual_but_correct() {
    let (program, r) = specialize(
        "(define (main x k) (apply1 (lambda (v) (+ v k)) x))
         (define (apply1 f v) (f v))",
        &[PeInput::dynamic(), PeInput::dynamic()],
    );
    for (x, k) in [(1i64, 2i64), (-4, 9)] {
        let a = Evaluator::new(&program)
            .run_main(&[Value::Int(x), Value::Int(k)])
            .unwrap();
        let b = Evaluator::new(&r.program)
            .run_main(&[Value::Int(x), Value::Int(k)])
            .unwrap();
        assert_eq!(a, b, "({x}, {k})");
    }
}

#[test]
fn facets_flow_through_beta_reduction() {
    // x is negative; the lambda squares it; the guard on the square dies.
    let program =
        parse_program("(define (main x) ((lambda (v) (if (< (* v v) 0) 0 1)) x))").unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
    let r = OnlinePe::new(&program, &facets)
        .specialize_main(&[PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg))])
        .unwrap();
    assert_eq!(r.program.main().body, Expr::int(1));
}

#[test]
fn residual_function_values_remain_applicable() {
    // A function value escapes into the residual through a dynamic
    // conditional; the residual program must still run it.
    let (program, r) = specialize(
        "(define (main d x) ((pick d) x))
         (define (pick d) (if (< d 0) inc dec))
         (define (inc v) (+ v 1))
         (define (dec v) (- v 1))",
        &[PeInput::dynamic(), PeInput::dynamic()],
    );
    for (d, x) in [(-1i64, 10i64), (1, 10)] {
        let a = Evaluator::new(&program)
            .run_main(&[Value::Int(d), Value::Int(x)])
            .unwrap();
        let b = Evaluator::new(&r.program)
            .run_main(&[Value::Int(d), Value::Int(x)])
            .unwrap();
        assert_eq!(a, b, "({d}, {x})");
    }
}

#[test]
fn church_style_iteration_specializes_to_straight_line() {
    // n-fold application with a static n: the whole tower collapses.
    let (_, r) = specialize(
        "(define (main x n) (iter n inc x))
         (define (iter n f v) (if (= n 0) v (f (iter (- n 1) f v))))
         (define (inc v) (+ v 1))",
        &[PeInput::dynamic(), PeInput::known(Value::Int(4))],
    );
    let printed = pretty_program(&r.program);
    assert!(!printed.contains("iter"), "{printed}");
    // The iteration is gone; four applications of the (residualized)
    // increment remain, nested directly.
    assert!(
        printed.contains("(inc_1 (inc_1 (inc_1 (inc_1 x))))"),
        "{printed}"
    );
}
