//! End-to-end tests of the `ppe` command-line tool, driving the real
//! binary (`CARGO_BIN_EXE_ppe`).

use std::io::Write as _;
use std::process::Command;

fn ppe(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ppe"))
        .args(args)
        .output()
        .expect("ppe binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_program(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ppe-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
(define (dotprod a b n)
  (if (= n 0) 0.0
      (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

#[test]
fn run_evaluates_programs() {
    let path = write_program("iprod-run.sexp", IPROD);
    let (ok, stdout, stderr) = ppe(&[
        "run",
        path.to_str().unwrap(),
        "vec:1.0,2.0,3.0",
        "vec:4.0,5.0,6.0",
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(stdout.trim(), "32.0");
}

#[test]
fn specialize_produces_figure_8() {
    let path = write_program("iprod-spec.sexp", IPROD);
    let (ok, stdout, stderr) = ppe(&[
        "specialize",
        path.to_str().unwrap(),
        "_:size=3",
        "_:size=3",
        "--facets",
        "size",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("(vref a 3)"), "{stdout}");
    assert!(!stdout.contains("dotprod"), "{stdout}");
    // Stats go to stderr, keeping stdout pipeable.
    assert!(stderr.contains("reductions"), "{stderr}");
}

#[test]
fn specialize_offline_matches_online() {
    let path = write_program("iprod-off.sexp", IPROD);
    let (ok1, online, _) = ppe(&[
        "specialize",
        path.to_str().unwrap(),
        "_:size=2",
        "_:size=2",
        "--facets",
        "size",
    ]);
    let (ok2, offline, _) = ppe(&[
        "specialize",
        path.to_str().unwrap(),
        "_:size=2",
        "_:size=2",
        "--facets",
        "size",
        "--offline",
    ]);
    assert!(ok1 && ok2);
    assert_eq!(online, offline);
}

#[test]
fn analyze_prints_figure_9_rows() {
    let path = write_program("iprod-an.sexp", IPROD);
    let (ok, stdout, stderr) = ppe(&[
        "analyze",
        path.to_str().unwrap(),
        "_:size=3",
        "_:size=3",
        "--facets",
        "size",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("⟨Dyn, s⟩"), "{stdout}");
    assert!(stdout.contains("if-test [static]"), "{stdout}");
    assert!(stdout.contains("signatures:"), "{stdout}");
}

#[test]
fn constraints_and_optimize_flags_work() {
    let src = "(define (f x) (if (< x 0) (if (< x 0) (let ((dead 1)) 10) 20) 30))";
    let path = write_program("flags.sexp", src);
    let (ok, stdout, stderr) = ppe(&[
        "specialize",
        path.to_str().unwrap(),
        "_",
        "--facets",
        "range",
        "--constraints",
        "--optimize",
    ]);
    assert!(ok, "{stderr}");
    // The nested identical test and the dead let are gone.
    assert_eq!(stdout.matches("(if").count(), 1, "{stdout}");
    assert!(!stdout.contains("dead"), "{stdout}");
}

#[test]
fn bad_inputs_produce_helpful_errors() {
    let path = write_program("err.sexp", "(define (f x) x)");
    let (ok, _, stderr) = ppe(&["specialize", path.to_str().unwrap(), "_:sign=sideways"]);
    assert!(!ok);
    assert!(stderr.contains("sign must be pos|neg|zero"), "{stderr}");

    let (ok, _, stderr) = ppe(&["specialize", path.to_str().unwrap(), "_", "_"]);
    assert!(!ok);
    assert!(stderr.contains("expects 1 inputs"), "{stderr}");

    let (ok, _, stderr) = ppe(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = ppe(&["run", "/nonexistent/file.sexp"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn parse_errors_carry_positions() {
    let path = write_program("parse-err.sexp", "(define (f x)\n  (+ x)\n)");
    let (ok, _, stderr) = ppe(&["run", path.to_str().unwrap(), "1"]);
    assert!(!ok);
    assert!(stderr.contains("2:"), "position missing: {stderr}");
}

#[test]
fn analyze_polyvariant_prints_variants() {
    let path = write_program(
        "poly.sexp",
        "(define (main a b) (+ (scale a) (scale b)))
         (define (scale x) (* x x))",
    );
    let (ok, stdout, stderr) = ppe(&[
        "analyze",
        path.to_str().unwrap(),
        "_:sign=neg",
        "_:sign=pos",
        "--facets",
        "sign",
        "--polyvariant",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("polyvariant variants:"), "{stdout}");
    assert!(stdout.contains("⟨Dyn, neg⟩"), "{stdout}");
    assert!(stdout.contains("⟨Dyn, pos⟩"), "{stdout}");
}

#[test]
fn type_facet_is_available_from_the_cli() {
    let path = write_program("typed.sexp", "(define (f x) (* (+ x 1) 2))");
    let (ok, stdout, stderr) = ppe(&["analyze", path.to_str().unwrap(), "_", "--facets", "type"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("f:"), "{stdout}");
}
