//! Property tests for the facet framework: the paper's safety conditions
//! (Definition 2, Properties 1–8) and the product laws (Definitions 5–6,
//! Lemma 3) over randomly drawn concrete values.

use ppe::core::facets::{ParityFacet, RangeFacet, RangeVal, SignFacet, SizeFacet};
use ppe::core::{
    bt_op, pe_op, AbsVal, BtVal, Facet, FacetSet, Lattice, PeVal, PrimOutcome, ProductVal,
};
use ppe::lang::{Const, Prim, Value, ALL_PRIMS};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1000i64..1000).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (-100.0f64..100.0).prop_map(Value::Float),
        (0usize..5).prop_map(|n| Value::vector(vec![Value::Float(1.0); n])),
    ]
}

fn arb_pe_val() -> impl Strategy<Value = PeVal> {
    prop_oneof![
        Just(PeVal::Bottom),
        Just(PeVal::Top),
        (-50i64..50).prop_map(|n| PeVal::Const(Const::Int(n))),
        any::<bool>().prop_map(|b| PeVal::Const(Const::Bool(b))),
    ]
}

fn facets() -> Vec<Box<dyn Facet>> {
    vec![
        Box::new(SignFacet),
        Box::new(ParityFacet),
        Box::new(RangeFacet),
        Box::new(SizeFacet),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Definition 2 condition 5 for every shipped facet, on random values:
    /// closed `α(p(d⃗)) ⊑ p̂(α(d⃗))`, open `τ̂(p(d⃗)) ⊑ p̂(α(d⃗))`.
    #[test]
    fn all_shipped_facets_approximate_soundly(a in arb_value(), b in arb_value()) {
        for facet in facets() {
            ppe::core::safety::check_facet_safety(
                facet.as_ref(),
                &[a.clone(), b.clone()],
                &ALL_PRIMS,
            ).unwrap();
        }
    }

    /// `v ∈ γ(α(v))` for every facet and random value.
    #[test]
    fn alpha_gamma_adjunction(v in arb_value()) {
        for facet in facets() {
            prop_assert!(facet.concretizes(&facet.alpha(&v), &v), "{:?} {v:?}", facet.name());
        }
    }

    /// The PE facet's operator (Definition 7) is monotone.
    #[test]
    fn pe_op_is_monotone(a in arb_pe_val(), b in arb_pe_val(), c in arb_pe_val()) {
        for p in [Prim::Add, Prim::Mul, Prim::Lt, Prim::Eq, Prim::Div] {
            if a.leq(&b) {
                let r1 = pe_op(p, &[a, c]);
                let r2 = pe_op(p, &[b, c]);
                prop_assert!(r1.leq(&r2), "{p}: {a:?}⊑{b:?} but {r1:?}⋢{r2:?}");
            }
        }
    }

    /// Property 8: the binding-time facet abstracts the PE facet —
    /// `τ̄(p̂(v⃗)) ⊑ p̄(τ̄(v⃗))`.
    #[test]
    fn bt_facet_abstracts_pe_facet(a in arb_pe_val(), b in arb_pe_val()) {
        for p in [Prim::Add, Prim::Sub, Prim::Mul, Prim::Lt, Prim::Eq, Prim::Div] {
            let online = pe_op(p, &[a, b]);
            let offline = bt_op(p, &[BtVal::from_pe(&a), BtVal::from_pe(&b)]);
            prop_assert!(
                BtVal::from_pe(&online).leq(&offline),
                "{p}({a:?},{b:?}): {online:?} vs {offline:?}"
            );
        }
    }

    /// Theorem 1 at the product level: a constant produced by the product
    /// operator equals the concrete result, for consistent products built
    /// by abstraction from actual values.
    #[test]
    fn products_built_from_values_reduce_correctly(a in -50i64..50, b in -50i64..50) {
        let set = FacetSet::with_facets(facets());
        let va = ProductVal::from_value(&Value::Int(a), &set);
        let vb = ProductVal::from_value(&Value::Int(b), &set);
        for p in [Prim::Add, Prim::Mul, Prim::Lt, Prim::Eq, Prim::Le] {
            match set.prim_product(p, &[va.clone(), vb.clone()]) {
                PrimOutcome::Const(c) => {
                    let concrete = p.eval(&[Value::Int(a), Value::Int(b)]).unwrap();
                    prop_assert_eq!(Some(c), concrete.to_const(), "{}", p);
                }
                other => prop_assert!(false, "constants must reduce: {p} gave {other:?}"),
            }
        }
    }

    /// Lemma 3 at work: when values are dynamic but *both* the Sign and
    /// Range facets can decide a comparison, they agree (the product
    /// operator asserts this in debug builds; here it is observed).
    #[test]
    fn facets_that_decide_agree(a in 1i64..50, b in -50i64..0) {
        // a is pos and in [1, 50); b is neg and in [-50, 0): both facets
        // decide (< b a) = true.
        let set = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(RangeFacet)]);
        let pa = ProductVal::dynamic(&set)
            .with_facet(0, SignFacet.alpha(&Value::Int(a)))
            .with_facet(1, AbsVal::new(RangeVal::between(1, 49)));
        let pb = ProductVal::dynamic(&set)
            .with_facet(0, SignFacet.alpha(&Value::Int(b)))
            .with_facet(1, AbsVal::new(RangeVal::between(-50, -1)));
        let out = set.prim_product(Prim::Lt, &[pb, pa]);
        prop_assert_eq!(out, PrimOutcome::Const(Const::Bool(true)));
    }

    /// Product join is an upper bound and products of constants are
    /// consistent (Definition 6).
    #[test]
    fn product_lattice_and_consistency(a in -20i64..20, b in -20i64..20) {
        let set = FacetSet::with_facets(facets());
        let va = ProductVal::from_const(Const::Int(a), &set);
        let vb = ProductVal::from_const(Const::Int(b), &set);
        let j = va.join(&vb, &set);
        prop_assert!(va.leq(&j, &set));
        prop_assert!(vb.leq(&j, &set));
        let candidates = ppe::core::consistency::default_candidates();
        ppe::core::consistency::check_consistent(&va, &set, &candidates).unwrap();
        // The join of two consistent products stays consistent here
        // (witnessed by either constant).
        let extra = [Value::Int(a), Value::Int(b)];
        let witness =
            ppe::core::consistency::find_witness(&j, &set, candidates.iter().chain(extra.iter()));
        prop_assert!(witness.is_some());
    }

    /// Widening jumps are sound: `a ⊑ widen(a, b)` and `b ⊑ widen(a, b)`
    /// for the Range facet.
    #[test]
    fn range_widening_is_an_upper_bound(
        lo1 in -50i64..50, len1 in 0i64..20,
        lo2 in -50i64..50, len2 in 0i64..20,
    ) {
        let f = RangeFacet;
        let a = AbsVal::new(RangeVal::between(lo1, lo1 + len1));
        let b = AbsVal::new(RangeVal::between(lo2, lo2 + len2));
        let w = f.widen(&a, &b);
        prop_assert!(f.leq(&a, &w), "{a:?} ⋢ widen = {w:?}");
        prop_assert!(f.leq(&b, &w), "{b:?} ⋢ widen = {w:?}");
    }
}

/// Exhaustive (non-random) checks: every shipped facet passes the whole
/// Definition 2 battery over its enumerated domain.
#[test]
fn exhaustive_safety_battery() {
    let candidates = ppe::core::consistency::default_candidates();
    for facet in facets() {
        ppe::core::safety::validate_facet(facet.as_ref(), &candidates)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The PE facet and binding-time facet lattices obey the lattice laws.
#[test]
fn value_domain_lattice_laws() {
    ppe::core::check_lattice_laws(&[
        PeVal::Bottom,
        PeVal::Const(Const::Int(0)),
        PeVal::Const(Const::Int(1)),
        PeVal::Const(Const::Bool(true)),
        PeVal::Top,
    ])
    .unwrap();
    ppe::core::check_lattice_laws(&[BtVal::Bottom, BtVal::Static, BtVal::Dynamic]).unwrap();
}

/// Strategy: a random sign-facet product value (over [Sign]).
fn arb_sign_product(set: &FacetSet) -> Vec<ProductVal> {
    let mut out = vec![
        ProductVal::bottom(set),
        ProductVal::dynamic(set),
        ProductVal::from_const(Const::Int(2), set),
        ProductVal::from_const(Const::Int(-3), set),
        ProductVal::from_const(Const::Int(0), set),
    ];
    use ppe::core::facets::SignVal;
    for s in [SignVal::Pos, SignVal::Zero, SignVal::Neg, SignVal::Top] {
        out.push(ProductVal::dynamic(set).with_facet(0, AbsVal::new(s)));
    }
    out
}

/// Property 4: the product operators of `[D̂; Ω̂]` are monotone — checked
/// exhaustively over a representative element set for unary/binary prims.
#[test]
fn product_operators_are_monotone() {
    let set = FacetSet::with_facets(vec![Box::new(SignFacet)]);
    let elems = arb_sign_product(&set);
    // Order PrimOutcome by the information it stands for.
    let outcome_leq = |a: &PrimOutcome, b: &PrimOutcome, set: &FacetSet| -> bool {
        use PrimOutcome::*;
        match (a, b) {
            (Bottom, _) => true,
            (Const(x), Const(y)) => x == y,
            (Const(_), Unknown) | (Const(_), Closed(_)) => true,
            (Closed(x), Closed(y)) => x.leq(y, set),
            (Closed(x), Unknown) => {
                // Unknown stands for the all-top product.
                x.leq(&ProductVal::dynamic(set), set)
            }
            (Unknown, Unknown) => true,
            (Unknown, Closed(y)) => ProductVal::dynamic(set).leq(y, set),
            _ => false,
        }
    };
    for p in [Prim::Add, Prim::Mul, Prim::Neg, Prim::Lt, Prim::Eq] {
        for a in &elems {
            for b in &elems {
                if !a.leq(b, &set) {
                    continue;
                }
                for c in &elems {
                    let args_lo: Vec<ProductVal> = if p.arity() == 1 {
                        vec![a.clone()]
                    } else {
                        vec![a.clone(), c.clone()]
                    };
                    let args_hi: Vec<ProductVal> = if p.arity() == 1 {
                        vec![b.clone()]
                    } else {
                        vec![b.clone(), c.clone()]
                    };
                    let lo = set.prim_product(p, &args_lo);
                    let hi = set.prim_product(p, &args_hi);
                    assert!(
                        outcome_leq(&lo, &hi, &set),
                        "{p}: {} ⊑ {} but {lo:?} ⋢ {hi:?}",
                        a.display(),
                        b.display()
                    );
                    if p.arity() == 1 {
                        break;
                    }
                }
            }
        }
    }
}

/// Property 7: the product operators of `[D̄; Ω̄]` are monotone.
#[test]
fn abstract_product_operators_are_monotone() {
    use ppe::core::facets::SignVal;
    use ppe::core::AbstractProductVal;
    let set = FacetSet::with_facets(vec![Box::new(SignFacet)]);
    let aset = set.abstract_set();
    let mut elems = vec![
        AbstractProductVal::bottom(&aset),
        AbstractProductVal::dynamic(&aset),
        AbstractProductVal::static_top(&aset),
        AbstractProductVal::from_const(Const::Int(4), &aset),
        AbstractProductVal::from_const(Const::Int(-4), &aset),
    ];
    for s in [SignVal::Pos, SignVal::Zero, SignVal::Neg] {
        elems.push(AbstractProductVal::dynamic(&aset).with_facet(0, AbsVal::new(s)));
        elems.push(AbstractProductVal::static_top(&aset).with_facet(0, AbsVal::new(s)));
    }
    for p in [Prim::Add, Prim::Mul, Prim::Lt, Prim::Eq] {
        for a in &elems {
            for b in &elems {
                if !a.leq(b, &aset) {
                    continue;
                }
                for c in &elems {
                    let lo = aset.abstract_prim(p, &[a.clone(), c.clone()]).value;
                    let hi = aset.abstract_prim(p, &[b.clone(), c.clone()]).value;
                    assert!(
                        lo.leq(&hi, &aset),
                        "{p}: {} ⊑ {} (other {}) but {} ⋢ {}",
                        a.display(),
                        b.display(),
                        c.display(),
                        lo.display(),
                        hi.display()
                    );
                }
            }
        }
    }
}
