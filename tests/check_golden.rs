//! Golden-diagnostic tests for `ppe check` and `ppe verify-facets`:
//! drive the real binary over the shipped example corpora and pin the
//! exact diagnostic codes, messages, exit statuses, and the JSON shape.

use std::path::{Path, PathBuf};
use std::process::Command;

fn ppe(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ppe"))
        .args(args)
        .output()
        .expect("ppe binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn corpus(dir: &str) -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(dir);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", root.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sexp"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus at {}", root.display());
    files
}

/// The `; expect: CODE` header every ill-formed example carries.
fn expected_code(path: &Path) -> String {
    let src = std::fs::read_to_string(path).unwrap();
    let first = src.lines().next().unwrap_or_default();
    first
        .strip_prefix("; expect: ")
        .unwrap_or_else(|| panic!("{}: missing `; expect: CODE` header", path.display()))
        .trim()
        .to_owned()
}

#[test]
fn clean_corpus_is_diagnostic_free() {
    for path in corpus("programs") {
        let (ok, stdout, stderr) = ppe(&["check", path.to_str().unwrap()]);
        assert!(ok, "{}: {stderr}", path.display());
        assert!(
            stdout.contains("0 error(s), 0 warning(s)"),
            "{}: {stdout}",
            path.display()
        );
    }
}

#[test]
fn ill_formed_corpus_produces_its_expected_codes() {
    for path in corpus("ill-formed") {
        let code = expected_code(&path);
        let (ok, stdout, stderr) = ppe(&["check", path.to_str().unwrap()]);
        let is_error = code.starts_with('E');
        // incongruent-annotation.sexp is well-formed source; its E0101
        // only appears once an annotation is corrupted (covered below).
        if path
            .file_stem()
            .is_some_and(|s| s == "incongruent-annotation")
        {
            assert!(ok, "{}: {stderr}", path.display());
            continue;
        }
        assert_eq!(!ok, is_error, "{}: {stdout}{stderr}", path.display());
        assert!(
            stdout.contains(&format!("[{code}]")),
            "{}: expected {code} in:\n{stdout}",
            path.display()
        );
    }
}

#[test]
fn unbound_var_message_is_exact() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/ill-formed/unbound-var.sexp");
    let (ok, stdout, _) = ppe(&["check", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(
        stdout.contains("error[E0004] scale:body.arg1: unbound variable `y`"),
        "{stdout}"
    );
}

#[test]
fn bad_arity_message_is_exact() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/ill-formed/bad-arity.sexp");
    let (ok, stdout, _) = ppe(&["check", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(
        stdout.contains("`twice` expects 1 arguments but is called with 2"),
        "{stdout}"
    );
}

#[test]
fn json_output_is_deterministic_and_machine_readable() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/ill-formed/unbound-var.sexp");
    let (ok1, run1, _) = ppe(&["check", path.to_str().unwrap(), "--format", "json"]);
    let (ok2, run2, _) = ppe(&["check", path.to_str().unwrap(), "--format", "json"]);
    assert!(!ok1 && !ok2);
    assert_eq!(run1, run2, "two runs must be byte-identical");
    let v = ppe::server::Json::parse(run1.trim()).expect("output parses as JSON");
    assert_eq!(v.get("errors").and_then(ppe::server::Json::as_u64), Some(1));
    assert_eq!(
        v.get("warnings").and_then(ppe::server::Json::as_u64),
        Some(0)
    );
    let diags = match v.get("diagnostics") {
        Some(ppe::server::Json::Arr(items)) => items,
        other => panic!("diagnostics should be an array, got {other:?}"),
    };
    assert_eq!(
        diags[0].get("code").and_then(ppe::server::Json::as_str),
        Some("E0004")
    );
}

#[test]
fn static_recursion_with_inputs_warns_w0002_but_passes() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/programs/power.sexp");
    // Without inputs: clean. With a static exponent: the BTA-aware
    // unfold-safety pass warns, but warnings don't fail the check.
    let (ok, stdout, _) = ppe(&["check", path.to_str().unwrap()]);
    assert!(ok);
    assert!(!stdout.contains("W0002"), "{stdout}");
    let (ok, stdout, stderr) = ppe(&["check", path.to_str().unwrap(), "_", "5"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("warning[W0002]"), "{stdout}");
    assert!(stdout.contains("purely static"), "{stdout}");
}

#[test]
fn rejected_input_specs_are_e0008() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/programs/power.sexp");
    // Wrong input count.
    let (ok, stdout, _) = ppe(&["check", path.to_str().unwrap(), "_"]);
    assert!(!ok);
    assert!(stdout.contains("[E0008]"), "{stdout}");
    assert!(
        stdout.contains("takes 2 inputs but 1 were given"),
        "{stdout}"
    );
    // Malformed refinement syntax.
    let (ok, stdout, _) = ppe(&["check", path.to_str().unwrap(), "_:sign=sideways", "5"]);
    assert!(!ok);
    assert!(stdout.contains("[E0008]"), "{stdout}");
}

#[test]
fn certificate_of_shipped_program_round_trips_and_rejects_corruption() {
    use ppe::analyze::check_certificate;
    use ppe::core::FacetSet;
    use ppe::offline::{analyze, AbstractInput, AnnKind, PrimAction};

    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/ill-formed/incongruent-annotation.sexp");
    let src = std::fs::read_to_string(path).unwrap();
    let program = ppe::lang::parse_program(&src).unwrap();
    let mut analysis = analyze(
        &program,
        &FacetSet::new(),
        &[AbstractInput::dynamic(), AbstractInput::static_()],
    )
    .unwrap();
    // Honest analysis: zero certificate diagnostics.
    assert!(check_certificate(&analysis).is_empty());
    // Corrupt one annotation: claim the dynamic `(* x ...)` reduces.
    let def = analysis
        .annotated
        .get_mut(&ppe::lang::Symbol::intern("power"))
        .unwrap();
    let AnnKind::If { else_branch, .. } = &mut def.body.kind else {
        panic!("power's body should be an if");
    };
    let AnnKind::Prim { action, .. } = &mut else_branch.kind else {
        panic!("else branch should be the `*` primitive");
    };
    *action = PrimAction::Reduce { source: 0 };
    let diags = check_certificate(&analysis);
    assert!(
        diags.iter().any(|d| d.code == "E0101"),
        "corrupted annotation must be rejected: {diags:?}"
    );
}

#[test]
fn verify_facets_passes_over_all_shipped_facets() {
    let (ok, stdout, stderr) = ppe(&["verify-facets"]);
    assert!(ok, "{stderr}");
    for facet in [
        "sign",
        "parity",
        "range",
        "size",
        "contents",
        "const-set",
        "type",
    ] {
        assert!(stdout.contains(&format!("facet `{facet}`: ok")), "{stdout}");
    }
    assert!(stdout.contains("all 7 facet(s)"), "{stdout}");
    // Selecting a subset works too.
    let (ok, stdout, _) = ppe(&["verify-facets", "--facets", "sign,size"]);
    assert!(ok);
    assert!(stdout.contains("all 2 facet(s)"), "{stdout}");
}
