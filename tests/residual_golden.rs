//! Residual-output goldens over the `examples/programs/` corpus.
//!
//! All three engines (online parameterized, offline, and the Figure-2
//! simple specializer) are run on every example under two input shapes —
//! all-dynamic and tail-static — and their pretty-printed residuals are
//! pinned byte-for-byte against committed golden files. Representation
//! changes inside the pipeline (interning, cache layout) must not move
//! these outputs at all.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test residual_golden`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ppe_core::facets::{ParityFacet, SignFacet};
use ppe_core::FacetSet;
use ppe_lang::{parse_program, pretty_program, Program, Value};
use ppe_offline::{analyze, AbstractInput, OfflinePe};
use ppe_online::{OnlinePe, PeInput, SimpleInput, SimplePe};

fn corpus() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join("programs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", root.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sexp"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus at {}", root.display());
    files
}

fn facet_set() -> FacetSet {
    FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(ParityFacet)])
}

/// The two input shapes exercised per program: every parameter dynamic,
/// and every parameter but the first known (`3`).
fn shapes(arity: usize) -> Vec<(&'static str, Vec<bool>)> {
    let mut shapes = vec![("dynamic", vec![false; arity])];
    if arity > 0 {
        let mut tail = vec![true; arity];
        tail[0] = false;
        shapes.push(("tail-static", tail));
    }
    shapes
}

fn online_section(program: &Program, statics: &[bool]) -> String {
    let inputs: Vec<PeInput> = statics
        .iter()
        .map(|&s| {
            if s {
                PeInput::known(Value::Int(3))
            } else {
                PeInput::dynamic()
            }
        })
        .collect();
    match OnlinePe::new(program, &facet_set()).specialize_main(&inputs) {
        Ok(r) => pretty_program(&r.program),
        Err(e) => format!("ERROR: {e}"),
    }
}

fn simple_section(program: &Program, statics: &[bool]) -> String {
    let inputs: Vec<SimpleInput> = statics
        .iter()
        .map(|&s| {
            if s {
                SimpleInput::Known(ppe_lang::Const::Int(3))
            } else {
                SimpleInput::Dynamic
            }
        })
        .collect();
    match SimplePe::new(program).specialize_main(&inputs) {
        Ok(r) => pretty_program(&r.program),
        Err(e) => format!("ERROR: {e}"),
    }
}

fn offline_section(program: &Program, statics: &[bool]) -> String {
    let facets = facet_set();
    let abs: Vec<AbstractInput> = statics
        .iter()
        .map(|&s| {
            if s {
                AbstractInput::static_()
            } else {
                AbstractInput::dynamic()
            }
        })
        .collect();
    let analysis = match analyze(program, &facets, &abs) {
        Ok(a) => a,
        Err(e) => return format!("ANALYSIS ERROR: {e}"),
    };
    let inputs: Vec<PeInput> = statics
        .iter()
        .map(|&s| {
            if s {
                PeInput::known(Value::Int(3))
            } else {
                PeInput::dynamic()
            }
        })
        .collect();
    match OfflinePe::new(program, &facets, &analysis).specialize(&inputs) {
        Ok(r) => pretty_program(&r.program),
        Err(e) => format!("ERROR: {e}"),
    }
}

fn render(path: &Path) -> String {
    let src = std::fs::read_to_string(path).unwrap();
    let program = parse_program(&src).unwrap();
    let arity = program.main().arity();
    let mut out = String::new();
    for (shape_name, statics) in shapes(arity) {
        for (engine, section) in [
            ("online", online_section(&program, &statics)),
            ("simple", simple_section(&program, &statics)),
            ("offline", offline_section(&program, &statics)),
        ] {
            writeln!(out, "=== {engine} / {shape_name} ===").unwrap();
            out.push_str(section.trim_end());
            out.push('\n');
        }
    }
    out
}

#[test]
fn residuals_match_goldens() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_residuals");
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        std::fs::create_dir_all(&golden_dir).unwrap();
    }
    for path in corpus() {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let golden_path = golden_dir.join(format!("{stem}.txt"));
        let actual = render(&path);
        if update {
            std::fs::write(&golden_path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} (run with UPDATE_GOLDEN=1 to create): {e}",
                golden_path.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "residual drift for {} — outputs must stay byte-identical",
            path.display()
        );
    }
}
