//! Adversarial validation of the executable safety conditions: for each
//! clause of the paper's Definition 2 (and the derived properties), a
//! facet that violates exactly that clause — and the checker that must
//! catch it. This is the test of the *checker*, complementing the
//! per-facet tests which show the shipped facets pass it.

use std::fmt;
use std::rc::Rc;

use ppe::core::facets::{MimicAbstractFacet, SignFacet, SignVal};
use ppe::core::safety::{
    check_abstract_facet_safety, check_facet_lattice, check_facet_monotone, check_facet_safety,
    test_elements,
};
use ppe::core::{AbsVal, AbstractFacet, Facet, FacetArg, PeVal};
use ppe::lang::{Prim, Value, ALL_PRIMS};

/// Boilerplate: a facet delegating everything to Sign, with chosen pieces
/// overridden per test.
macro_rules! sign_like {
    ($name:ident $(, $method:item)*) => {
        #[derive(Debug)]
        struct $name;
        impl Facet for $name {
            fn name(&self) -> &'static str { stringify!($name) }
            fn bottom(&self) -> AbsVal { SignFacet.bottom() }
            fn top(&self) -> AbsVal { SignFacet.top() }
            fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal { SignFacet.join(a, b) }
            fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool { SignFacet.leq(a, b) }
            fn alpha(&self, v: &Value) -> AbsVal { SignFacet.alpha(v) }
            fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
                SignFacet.concretizes(abs, v)
            }
            fn enumerate(&self) -> Option<Vec<AbsVal>> { SignFacet.enumerate() }
            fn abstract_facet(&self) -> Rc<dyn AbstractFacet> { SignFacet.abstract_facet() }
            $($method)*
        }
    };
}

fn samples() -> Vec<Value> {
    (-4..=4).map(Value::Int).collect()
}

/// Condition 1 (lattice laws): a facet whose join is not commutative.
#[test]
fn broken_lattice_is_caught() {
    #[derive(PartialEq, Eq, Hash, Debug)]
    struct Lop(u8);
    impl fmt::Display for Lop {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "lop{}", self.0)
        }
    }
    #[derive(Debug)]
    struct LopsidedJoin;
    impl Facet for LopsidedJoin {
        fn name(&self) -> &'static str {
            "lopsided"
        }
        fn bottom(&self) -> AbsVal {
            AbsVal::new(Lop(0))
        }
        fn top(&self) -> AbsVal {
            AbsVal::new(Lop(9))
        }
        fn join(&self, a: &AbsVal, _b: &AbsVal) -> AbsVal {
            a.clone() // bug: ignores b
        }
        fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
            a.expect_ref::<Lop>("lopsided").0 <= b.expect_ref::<Lop>("lopsided").0
        }
        fn alpha(&self, _v: &Value) -> AbsVal {
            AbsVal::new(Lop(5))
        }
        fn concretizes(&self, _abs: &AbsVal, _v: &Value) -> bool {
            true
        }
        fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
            unreachable!()
        }
    }
    let elems = vec![
        AbsVal::new(Lop(0)),
        AbsVal::new(Lop(5)),
        AbsVal::new(Lop(9)),
    ];
    // Caught by whichever law trips first ("top absorbing" here: the
    // join discards its right operand, so ⊥ ⊔ ⊤ ≠ ⊤).
    let err = check_facet_lattice(&LopsidedJoin, &elems).unwrap_err();
    assert_eq!(err.facet, "lopsided");
}

/// Condition 2 (monotonicity): a closed operator that answers more
/// precisely on coarser inputs.
#[test]
fn non_monotone_closed_op_is_caught() {
    sign_like!(
        AntiMonotone,
        fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
            if p == Prim::Add && args[0].abs.downcast_ref::<SignVal>() == Some(&SignVal::Top) {
                // bug: ⊤ + x claims `zero` while pos + pos says pos.
                return AbsVal::new(SignVal::Zero);
            }
            SignFacet.closed_op(p, args)
        }
    );
    let elems = test_elements(&AntiMonotone, &samples());
    let err = check_facet_monotone(&AntiMonotone, &elems, &[Prim::Add]).unwrap_err();
    assert!(err.condition.contains("monotonicity"), "{err}");
}

/// Condition 5, closed case: `α(p(d)) ⋢ p̂(α(d))` — a facet claiming sums
/// of positives are negative.
#[test]
fn unsound_closed_approximation_is_caught() {
    sign_like!(
        WrongAdd,
        fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
            let out = SignFacet.closed_op(p, args);
            if p == Prim::Add && out.downcast_ref::<SignVal>() == Some(&SignVal::Pos) {
                return AbsVal::new(SignVal::Neg); // bug
            }
            out
        }
    );
    let err = check_facet_safety(&WrongAdd, &samples(), &[Prim::Add]).unwrap_err();
    assert!(err.condition.contains("closed approximation"), "{err}");
}

/// Condition 5, open case / Property 2: an open operator answering a
/// constant that differs from the concrete result.
#[test]
fn unsound_open_constant_is_caught() {
    sign_like!(
        LyingLess,
        fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
            if p == Prim::Le {
                return PeVal::constant(false.into()); // bug: 1 ≤ 2 is true
            }
            SignFacet.open_op(p, args)
        }
    );
    let err = check_facet_safety(&LyingLess, &samples(), &[Prim::Le]).unwrap_err();
    assert!(err.condition.contains("Property 2"), "{err}");
}

/// The `γ∘α` sanity condition: an abstraction whose concretization does
/// not contain the value it came from.
#[test]
fn broken_concretization_is_caught() {
    #[derive(Debug)]
    struct Gappy;
    impl Facet for Gappy {
        fn name(&self) -> &'static str {
            "gappy"
        }
        fn bottom(&self) -> AbsVal {
            SignFacet.bottom()
        }
        fn top(&self) -> AbsVal {
            SignFacet.top()
        }
        fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
            SignFacet.join(a, b)
        }
        fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
            SignFacet.leq(a, b)
        }
        fn alpha(&self, v: &Value) -> AbsVal {
            SignFacet.alpha(v)
        }
        fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
            // bug: claims `pos` contains nothing.
            if abs.downcast_ref::<SignVal>() == Some(&SignVal::Pos) {
                return false;
            }
            SignFacet.concretizes(abs, v)
        }
        fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
            SignFacet.abstract_facet()
        }
    }
    let err = ppe::core::safety::check_alpha_gamma(&Gappy, &samples()).unwrap_err();
    assert!(err.condition.contains("γ(α(v))"), "{err}");
}

/// Property 6: an abstract facet claiming Static where the facet cannot
/// deliver a constant.
#[test]
fn unsound_abstract_facet_is_caught() {
    #[derive(Debug)]
    struct OverpromisingAbstract;
    impl AbstractFacet for OverpromisingAbstract {
        fn name(&self) -> &'static str {
            "overpromising"
        }
        fn bottom(&self) -> AbsVal {
            SignFacet.bottom()
        }
        fn top(&self) -> AbsVal {
            SignFacet.top()
        }
        fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
            SignFacet.join(a, b)
        }
        fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
            SignFacet.leq(a, b)
        }
        fn alpha_facet(&self, online: &AbsVal) -> AbsVal {
            online.clone()
        }
        fn open_op(&self, p: Prim, _args: &[ppe::core::AbstractArg<'_>]) -> ppe::core::BtVal {
            if p == Prim::Lt {
                ppe::core::BtVal::Static // bug: pos < pos is not decidable
            } else {
                ppe::core::BtVal::Dynamic
            }
        }
    }
    let elems = test_elements(&SignFacet, &samples());
    let err = check_abstract_facet_safety(&SignFacet, &OverpromisingAbstract, &elems, &[Prim::Lt])
        .unwrap_err();
    assert!(err.condition.contains("Property 6"), "{err}");
}

/// A fault-injected "chaos" facet that violates several safety conditions
/// at once — a lopsided join, an unsound and non-monotone closed operator,
/// and an open operator that answers wrong constants. The checker must
/// flag it, and the *specializer* must survive running with it: facet
/// disagreement residualizes (Lemma 3's premise fails, so the product
/// conservatively answers ⊤) and every failure mode is a structured
/// error, never a panic.
#[test]
fn chaos_facet_is_flagged_and_cannot_crash_the_specializer() {
    #[derive(Debug)]
    struct ChaosFacet;
    impl Facet for ChaosFacet {
        fn name(&self) -> &'static str {
            "chaos"
        }
        fn bottom(&self) -> AbsVal {
            SignFacet.bottom()
        }
        fn top(&self) -> AbsVal {
            SignFacet.top()
        }
        fn join(&self, a: &AbsVal, _b: &AbsVal) -> AbsVal {
            a.clone() // bug: ignores its right operand
        }
        fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
            SignFacet.leq(a, b)
        }
        fn alpha(&self, v: &Value) -> AbsVal {
            SignFacet.alpha(v)
        }
        fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
            if args[0].abs.downcast_ref::<SignVal>() == Some(&SignVal::Top) {
                // bug: answers *more* precisely on the coarser input.
                return AbsVal::new(SignVal::Zero);
            }
            SignFacet.closed_op(p, args)
        }
        fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
            if p == Prim::Lt {
                return PeVal::constant(true.into()); // bug: lies about <
            }
            SignFacet.open_op(p, args)
        }
        fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
            SignFacet.concretizes(abs, v)
        }
        fn enumerate(&self) -> Option<Vec<AbsVal>> {
            SignFacet.enumerate()
        }
        fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
            SignFacet.abstract_facet()
        }
    }

    // The safety battery rejects it (the lattice check trips first), and
    // the targeted checkers catch the other injected faults.
    let err = ppe::core::safety::validate_facet(&ChaosFacet, &samples()).unwrap_err();
    assert_eq!(err.facet, "chaos");
    let elems = test_elements(&ChaosFacet, &samples());
    check_facet_monotone(&ChaosFacet, &elems, &[Prim::Add]).unwrap_err();
    check_facet_safety(&ChaosFacet, &samples(), &[Prim::Lt]).unwrap_err();

    // Running the specializer with the chaos facet next to the (correct)
    // sign facet forces a Lemma 3 violation: on `(< x 0)` with x refined
    // to `pos`, sign answers `#f` while chaos answers `#t`. The product
    // must residualize the disagreement, not assert on it.
    use ppe::core::FacetSet;
    use ppe::lang::parse_program;
    use ppe::online::{OnlinePe, PeConfig, PeInput};

    let program =
        parse_program("(define (f x n) (if (< x 0) (- 0 n) (if (= n 0) 0 (f x (- n 1)))))")
            .unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(ChaosFacet)]);
    let input = PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos));
    for check_consistency in [false, true] {
        let config = PeConfig {
            check_consistency,
            ..PeConfig::default()
        };
        let result = OnlinePe::with_config(&program, &facets, config)
            .specialize_main(&[input.clone(), PeInput::known(Value::Int(3))]);
        match result {
            // Disagreement residualized: the branch on `(< x 0)` survives
            // into the residual and the program is still well-formed.
            Ok(r) => assert!(!r.program.defs().is_empty()),
            // Or the inconsistency was detected: still a structured error.
            Err(e) => {
                let rendered = e.to_string();
                assert!(!rendered.is_empty());
            }
        }
    }
}

/// The full battery passes for a *correct* hand-rolled facet built on the
/// mimic adapter — the path a library user takes.
#[test]
fn correct_custom_facet_passes_everything() {
    // Delegate abstract facet through the mimic construction, as a user
    // would.
    #[derive(Debug, Clone, Copy)]
    struct UserSign;
    impl Facet for UserSign {
        fn name(&self) -> &'static str {
            "user-sign"
        }
        fn bottom(&self) -> AbsVal {
            SignFacet.bottom()
        }
        fn top(&self) -> AbsVal {
            SignFacet.top()
        }
        fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
            SignFacet.join(a, b)
        }
        fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
            SignFacet.leq(a, b)
        }
        fn alpha(&self, v: &Value) -> AbsVal {
            SignFacet.alpha(v)
        }
        fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
            SignFacet.closed_op(p, args)
        }
        fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
            SignFacet.open_op(p, args)
        }
        fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
            SignFacet.concretizes(abs, v)
        }
        fn enumerate(&self) -> Option<Vec<AbsVal>> {
            SignFacet.enumerate()
        }
        fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
            Rc::new(MimicAbstractFacet::new(*self))
        }
    }
    ppe::core::safety::validate_facet(&UserSign, &samples()).unwrap();
    // The checker also covers every shipped primitive without panicking.
    let elems = test_elements(&UserSign, &samples());
    check_facet_monotone(&UserSign, &elems, &ALL_PRIMS).unwrap();
}
