//! Observational identity of interned terms: routing an expression
//! through the hash-consing interner (`Expr → Term → Expr`) must be
//! invisible to every downstream consumer — the pretty-printer, the
//! evaluator, and all three specialization engines. Together with
//! `residual_golden.rs` (which pins residual bytes against committed
//! files), these tests are the license for sharing subtrees behind the
//! engines' backs.

mod common;

use common::{int_expr, program_of, small_const, CORPUS};
use ppe::core::facets::{ParityFacet, SignFacet};
use ppe::core::FacetSet;
use ppe::lang::{
    parse_program, pretty_expr, pretty_program, Evaluator, Program, Symbol, Term, Value,
};
use ppe::offline::{analyze, AbstractInput, OfflinePe};
use ppe::online::{OnlinePe, PeInput, SimpleInput, SimplePe};
use proptest::prelude::*;

/// Rebuilds a program with every definition body routed through the
/// interner. If interning is observationally sound, this is the
/// identity function on program *meaning* (and, structurally, on the
/// program itself — `to_expr` reconstructs the exact tree).
fn reintern(program: &Program) -> Program {
    let mut defs = program.defs().to_vec();
    for def in &mut defs {
        def.body = Term::from_expr(&def.body).to_expr();
    }
    Program::new(defs).expect("re-interned program is well-formed")
}

/// Naive free-occurrence count over the raw tree, the spec for the
/// interner's cached occurrence table.
fn naive_count(e: &ppe::lang::Expr, x: Symbol) -> u32 {
    use ppe::lang::Expr;
    match e {
        Expr::Const(_) | Expr::FnRef(_) => 0,
        Expr::Var(v) => u32::from(*v == x),
        Expr::Prim(_, args) => args.iter().map(|a| naive_count(a, x)).sum(),
        Expr::Call(_, args) => args.iter().map(|a| naive_count(a, x)).sum(),
        Expr::If(c, t, f) => naive_count(c, x) + naive_count(t, x) + naive_count(f, x),
        Expr::Let(v, bound, body) => {
            naive_count(bound, x) + if *v == x { 0 } else { naive_count(body, x) }
        }
        Expr::Lambda(params, body) => {
            if params.contains(&x) {
                0
            } else {
                naive_count(body, x)
            }
        }
        Expr::App(f, args) => {
            naive_count(f, x) + args.iter().map(|a| naive_count(a, x)).sum::<u32>()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `Expr → Term → Expr` is the identity, and the pretty-printer
    /// cannot tell the round-tripped tree from the original.
    #[test]
    fn round_trip_is_identity(body in int_expr()) {
        let term = Term::from_expr(&body);
        let back = term.to_expr();
        prop_assert_eq!(&back, &body);
        prop_assert_eq!(pretty_expr(&back), pretty_expr(&body));
    }

    /// Interning is canonical: building the same structure twice yields
    /// handles that are `==` (pointer-equal inside) with equal
    /// fingerprints, and the cached metadata matches a naive traversal.
    #[test]
    fn interning_is_canonical(body in int_expr()) {
        let a = Term::from_expr(&body);
        let b = Term::from_expr(&body);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        for name in ["x", "y", "k"] {
            let sym = Symbol::intern(name);
            prop_assert_eq!(a.count_free(sym), naive_count(&body, sym));
        }
    }

    /// Evaluation agrees — including on errors — between a program and
    /// its re-interned rebuild.
    #[test]
    fn eval_agrees_after_interning(body in int_expr(), y in small_const(), x in -6i64..=6) {
        let program = program_of(&body);
        let rebuilt = reintern(&program);
        let args = vec![Value::Int(x), Value::from_const(y)];
        let direct = Evaluator::with_fuel(&program, 200_000).run_main(&args);
        let routed = Evaluator::with_fuel(&rebuilt, 200_000).run_main(&args);
        match (direct, routed) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "direct: {:?}, re-interned: {:?}", a, b),
        }
    }
}

/// All three engines produce byte-identical residual text whether the
/// subject program was interned and rebuilt or used as parsed — over the
/// shared test corpus and the `examples/programs/` corpus, under both
/// the all-dynamic and tail-static input shapes of `residual_golden.rs`.
#[test]
fn residuals_are_byte_identical_across_engines_after_interning() {
    let mut sources: Vec<String> = CORPUS.iter().map(|(_, src, _)| (*src).to_owned()).collect();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join("programs");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sexp"))
        .collect();
    files.sort();
    for f in files {
        sources.push(std::fs::read_to_string(&f).unwrap());
    }

    let facets = || FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(ParityFacet)]);
    for src in &sources {
        let program = parse_program(src).unwrap();
        let rebuilt = reintern(&program);
        assert_eq!(pretty_program(&rebuilt), pretty_program(&program));

        let arity = program.main().arity();
        let mut shapes = vec![vec![false; arity]];
        if arity > 0 {
            let mut tail = vec![true; arity];
            tail[0] = false;
            shapes.push(tail);
        }
        for statics in shapes {
            let known = |s: bool| {
                if s {
                    PeInput::known(Value::Int(3))
                } else {
                    PeInput::dynamic()
                }
            };
            let inputs: Vec<PeInput> = statics.iter().map(|&s| known(s)).collect();

            let online = |p: &Program| match OnlinePe::new(p, &facets()).specialize_main(&inputs) {
                Ok(r) => pretty_program(&r.program),
                Err(e) => format!("ERROR: {e}"),
            };
            assert_eq!(
                online(&rebuilt),
                online(&program),
                "online drift on:\n{src}"
            );

            let simple_inputs: Vec<SimpleInput> = statics
                .iter()
                .map(|&s| {
                    if s {
                        SimpleInput::Known(ppe::lang::Const::Int(3))
                    } else {
                        SimpleInput::Dynamic
                    }
                })
                .collect();
            let simple = |p: &Program| match SimplePe::new(p).specialize_main(&simple_inputs) {
                Ok(r) => pretty_program(&r.program),
                Err(e) => format!("ERROR: {e}"),
            };
            assert_eq!(
                simple(&rebuilt),
                simple(&program),
                "simple drift on:\n{src}"
            );

            let abs: Vec<AbstractInput> = statics
                .iter()
                .map(|&s| {
                    if s {
                        AbstractInput::static_()
                    } else {
                        AbstractInput::dynamic()
                    }
                })
                .collect();
            let offline = |p: &Program| {
                let fs = facets();
                let analysis = match analyze(p, &fs, &abs) {
                    Ok(a) => a,
                    Err(e) => return format!("ANALYSIS ERROR: {e}"),
                };
                match OfflinePe::new(p, &fs, &analysis).specialize(&inputs) {
                    Ok(r) => pretty_program(&r.program),
                    Err(e) => format!("ERROR: {e}"),
                }
            };
            assert_eq!(
                offline(&rebuilt),
                offline(&program),
                "offline drift on:\n{src}"
            );
        }
    }
}
