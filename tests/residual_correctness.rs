//! End-to-end residual correctness: for randomly generated programs and
//! for the corpus, `eval(residual, dynamic inputs) = eval(source, all
//! inputs)` — the defining property of a partial evaluator, and the
//! program-level reading of the paper's Theorem 1.

mod common;

use common::{int_expr, program_of, small_const, CORPUS};
use ppe::core::FacetSet;
use ppe::lang::{parse_program, Const, EvalError, Evaluator, Value};
use ppe::online::{OnlinePe, PeInput, SimpleInput, SimplePe};
use proptest::prelude::*;

/// Budgets small enough to keep property tests quick.
fn run(program: &ppe::lang::Program, args: &[Value]) -> Result<Value, EvalError> {
    let mut ev = Evaluator::with_fuel(program, 200_000);
    ev.run_main(args)
}

/// Builds the argument vector for a residual program's entry point by
/// matching its (possibly reduced) parameter list against named values —
/// unused dynamic parameters may have been dropped by the specializer.
fn residual_args(program: &ppe::lang::Program, bindings: &[(&str, Value)]) -> Vec<Value> {
    program
        .main()
        .params
        .iter()
        .map(|p| {
            bindings
                .iter()
                .find(|(n, _)| *n == p.as_str())
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("unexpected residual parameter `{p}`"))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Online PE with a known `y` agrees with direct evaluation on random
    /// programs, including on *errors* (overflow, division) — residuals
    /// neither invent nor lose failures.
    #[test]
    fn online_pe_preserves_semantics(body in int_expr(), y in small_const(), x in -6i64..=6) {
        let program = program_of(&body);
        let facets = FacetSet::new();
        let pe = OnlinePe::new(&program, &facets);
        let residual = pe
            .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::from_const(y))])
            .expect("specialization succeeds");
        let source = run(&program, &[Value::Int(x), Value::from_const(y)]);
        let args = residual_args(&residual.program, &[("x", Value::Int(x))]);
        let spec = run(&residual.program, &args);
        match (source, spec) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {} // both fail: fine (kinds may differ in order)
            (a, b) => prop_assert!(false, "source: {:?}, residual: {:?}", a, b),
        }
    }

    /// The simple partial evaluator (Figure 2) has the same property.
    #[test]
    fn simple_pe_preserves_semantics(body in int_expr(), y in small_const(), x in -6i64..=6) {
        let program = program_of(&body);
        let pe = SimplePe::new(&program);
        let residual = pe
            .specialize_main(&[SimpleInput::Dynamic, SimpleInput::Known(y)])
            .expect("specialization succeeds");
        let source = run(&program, &[Value::Int(x), Value::from_const(y)]);
        let args = residual_args(&residual.program, &[("x", Value::Int(x))]);
        let spec = run(&residual.program, &args);
        match (source, spec) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "source: {:?}, residual: {:?}", a, b),
        }
    }

    /// Residual programs of random expressions parse back from their
    /// pretty-printed form to the same program (round-trip through the
    /// surface syntax).
    #[test]
    fn residuals_round_trip_through_the_printer(body in int_expr(), y in small_const()) {
        let program = program_of(&body);
        let facets = FacetSet::new();
        let residual = OnlinePe::new(&program, &facets)
            .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::from_const(y))])
            .expect("specialization succeeds");
        let printed = ppe::lang::pretty_program(&residual.program);
        let back = parse_program(&printed).expect("residual parses");
        prop_assert_eq!(residual.program.defs(), back.defs());
    }
}

#[test]
fn corpus_residuals_agree_with_sources() {
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue; // vector inputs handled in the paper-example test
        }
        let program = parse_program(src).unwrap();
        let facets = FacetSet::new();
        // Specialize on the *last* argument (the recursion counter in
        // most corpus entries).
        let mut inputs = vec![PeInput::dynamic(); *arity];
        inputs[*arity - 1] = PeInput::known(Value::Int(5));
        let residual = OnlinePe::new(&program, &facets)
            .specialize_main(&inputs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for x in [-3i64, 0, 2, 7] {
            let mut full_args = vec![Value::Int(x); *arity];
            full_args[*arity - 1] = Value::Int(5);
            // Residual params may be a subset of the source's dynamic
            // params; bind all of them to x by name.
            let source_def = program.main();
            let bindings: Vec<(&str, Value)> = source_def
                .params
                .iter()
                .map(|p| (p.as_str(), Value::Int(x)))
                .collect();
            let dyn_args = residual_args(&residual.program, &bindings);
            let expected = run(&program, &full_args);
            let got = run(&residual.program, &dyn_args);
            assert_eq!(expected, got, "{name} at x={x}");
        }
    }
}

#[test]
fn fully_static_corpus_runs_reduce_to_constants() {
    for (name, src, arity) in CORPUS {
        if *name == "iprod" {
            continue;
        }
        let program = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let inputs: Vec<PeInput> = (0..*arity)
            .map(|i| PeInput::known(Value::Int(2 + i as i64)))
            .collect();
        let residual = OnlinePe::new(&program, &facets)
            .specialize_main(&inputs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let concrete: Vec<Value> = (0..*arity).map(|i| Value::Int(2 + i as i64)).collect();
        let expected = run(&program, &concrete).unwrap();
        assert_eq!(
            residual.program.main().body.as_const(),
            expected.to_const(),
            "{name} should reduce to a constant"
        );
        assert!(residual.program.main().params.is_empty());
    }
}

#[test]
fn specializing_then_running_equals_running_with_bool_results() {
    // even/odd returns booleans; exercise the Bool summand end to end.
    let program = parse_program(
        "(define (evn n) (if (= n 0) #t (odd (- n 1))))
         (define (odd n) (if (= n 0) #f (evn (- n 1))))",
    )
    .unwrap();
    let facets = FacetSet::new();
    for n in 0..8i64 {
        let residual = OnlinePe::new(&program, &facets)
            .specialize_main(&[PeInput::known(Value::Int(n))])
            .unwrap();
        assert_eq!(
            residual.program.main().body.as_const(),
            Some(Const::Bool(n % 2 == 0)),
            "evn({n})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The residual cleanup passes preserve semantics, at both levels, on
    /// random programs and inputs.
    #[test]
    fn optimizer_preserves_semantics(body in int_expr(), y in small_const(), x in -6i64..=6) {
        use ppe::lang::{optimize_program, OptLevel};
        let program = program_of(&body);
        for level in [OptLevel::Safe, OptLevel::PureArith] {
            let optimized = optimize_program(&program, level);
            let source = run(&program, &[Value::Int(x), Value::from_const(y)]);
            let opt = run(&optimized, &[Value::Int(x), Value::from_const(y)]);
            match (&source, &opt) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                // PureArith may legitimately turn an erroring program into
                // a defined one by dropping dead failing arithmetic; the
                // reverse is a bug at any level.
                (Err(_), Ok(_)) if level == OptLevel::PureArith => {}
                (a, b) => prop_assert!(false, "{level:?}: source {a:?}, optimized {b:?}"),
            }
        }
    }

    /// Safe-level optimization never changes the error/success status.
    #[test]
    fn safe_optimizer_preserves_errors(body in int_expr(), y in small_const(), x in -6i64..=6) {
        use ppe::lang::{optimize_program, OptLevel};
        let program = program_of(&body);
        let optimized = optimize_program(&program, OptLevel::Safe);
        let source = run(&program, &[Value::Int(x), Value::from_const(y)]);
        let opt = run(&optimized, &[Value::Int(x), Value::from_const(y)]);
        prop_assert_eq!(source.is_ok(), opt.is_ok());
    }
}
