//! VM sweep over the committed golden residuals.
//!
//! Every residual pinned in `tests/golden_residuals/*.txt` — the outputs
//! of all three specialization engines over the example corpus — must run
//! identically on the bytecode VM and the AST oracle, on every candidate
//! input tuple. This closes the loop the differential proptests open:
//! proptests cover random programs, this covers the exact residuals the
//! project promises not to change.

use std::path::{Path, PathBuf};

use ppe::lang::{parse_program, EvalError, Evaluator, Program, Value};
use ppe::vm::{compile, Vm, VmOptions};

fn golden_files() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_residuals");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no goldens in {}", dir.display());
    files
}

/// Splits a golden file into `(header, body)` sections.
fn sections(text: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(header) = line
            .strip_prefix("=== ")
            .and_then(|l| l.strip_suffix(" ==="))
        {
            out.push((header.to_owned(), String::new()));
        } else if let Some((_, body)) = out.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    out
}

/// Candidate argument tuples for an entry of the given arity. Residual
/// parameter types are unknown (ints, floats, vectors, depending on the
/// program), so the sweep tries several homogeneous tuples and a
/// deliberately ill-typed one — *agreement on the error* is as much a
/// requirement as agreement on the value.
fn candidate_inputs(arity: usize) -> Vec<Vec<Value>> {
    let vecf = Value::vector(vec![
        Value::Float(1.5),
        Value::Float(2.5),
        Value::Float(4.0),
    ]);
    let pools: Vec<Value> = vec![
        Value::Int(3),
        Value::Int(0),
        Value::Int(-2),
        Value::Float(1.5),
        vecf,
        Value::Bool(true),
    ];
    pools.iter().map(|v| vec![v.clone(); arity]).collect()
}

fn run_both(
    program: &Program,
    args: &[Value],
) -> (Result<Value, EvalError>, Result<Value, EvalError>, u64, u64) {
    let mut ast = Evaluator::with_fuel(program, 500_000);
    let a = ast.run_main(args);
    let compiled = compile(program).expect("golden residual compiles");
    let mut vm = Vm::with_options(VmOptions {
        fuel: 500_000,
        ..VmOptions::default()
    });
    let v = vm.run_main(&compiled, args);
    (a, v, ast.fuel_used(), vm.fuel_used())
}

#[test]
fn every_golden_residual_agrees_on_both_engines() {
    let mut residuals = 0usize;
    let mut runs = 0usize;
    for path in golden_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        for (header, body) in sections(&text) {
            let body = body.trim();
            if body.is_empty() || body.starts_with("ERROR:") || body.starts_with("ANALYSIS ERROR:")
            {
                continue;
            }
            let program = parse_program(body).unwrap_or_else(|e| {
                panic!("golden {} [{header}] does not parse: {e}", path.display())
            });
            residuals += 1;
            let arity = program.main().arity();
            for args in candidate_inputs(arity) {
                let (a, v, af, vf) = run_both(&program, &args);
                assert_eq!(a, v, "{} [{header}] diverges on {args:?}", path.display());
                assert_eq!(
                    af,
                    vf,
                    "{} [{header}] fuel meters diverge on {args:?}",
                    path.display()
                );
                runs += 1;
            }
        }
    }
    // The corpus has 4 programs × 2 shapes × 3 engines; make sure the
    // sweep actually saw them rather than silently skipping everything.
    assert!(residuals >= 20, "only {residuals} residuals swept");
    assert!(runs >= 100, "only {runs} differential runs");
}
