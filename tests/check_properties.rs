//! Property tests for the static analyzer: `check`-clean programs never
//! fail evaluation with the binding errors the analyzer guards against
//! (unbound variables, unknown functions, call arity), and corrupting a
//! clean program is caught by exactly the matching diagnostic.

mod common;

use common::{int_expr, small_const};
use ppe::analyze::{check_defs, check_source};
use ppe::lang::{EvalError, Evaluator, Expr, FunDef, Prim, Program, Symbol, Value};
use proptest::prelude::*;

/// The error classes `ppe check` promises to rule out statically.
fn is_binding_error(e: &EvalError) -> bool {
    matches!(
        e,
        EvalError::UnboundVar(_) | EvalError::UnknownFunction(_) | EvalError::Arity { .. }
    )
}

fn defs_of(body: &Expr) -> Vec<FunDef> {
    vec![FunDef::new(
        Symbol::intern("f"),
        vec![Symbol::intern("x"), Symbol::intern("y")],
        body.clone(),
    )]
}

proptest! {
    /// Soundness of the well-formedness pass: if `check_defs` reports no
    /// error, evaluation never hits an unbound variable, an unknown
    /// function, or a call-arity mismatch (arithmetic failures like
    /// overflow remain possible and are out of the analyzer's scope).
    #[test]
    fn check_clean_programs_never_hit_binding_errors(
        body in int_expr(),
        x in small_const(),
        y in small_const(),
    ) {
        let defs = defs_of(&body);
        let diags = check_defs(&defs);
        // The generators only produce bound variables, so the analyzer
        // must agree the program is error-free…
        prop_assert!(!diags.iter().any(|d| d.is_error()), "{diags:?}");
        let program = Program::new(defs).expect("check-clean program validates");
        let args = [Value::from_const(x), Value::from_const(y)];
        if let Err(e) = Evaluator::new(&program).run_main(&args) {
            prop_assert!(!is_binding_error(&e), "check-clean program failed with {e}");
        }
    }

    /// The adversarial direction: grafting a reference to an unbound
    /// variable onto any generated body is always caught — as `E0004` by
    /// the analyzer, and (when evaluation reaches it) as `UnboundVar` by
    /// the evaluator. The analyzer sees it even when evaluation wouldn't.
    #[test]
    fn check_catches_grafted_unbound_variable(body in int_expr()) {
        let corrupted = Expr::prim(Prim::Add, vec![body, Expr::var("phantom")]);
        let diags = check_defs(&defs_of(&corrupted));
        prop_assert!(
            diags.iter().any(|d| d.code == "E0004" && d.message.contains("phantom")),
            "analyzer missed the unbound variable: {diags:?}"
        );
    }

    /// Same for call-site corruption: calling `f` with one extra argument
    /// is always an `E0006`.
    #[test]
    fn check_catches_grafted_arity_mismatch(body in int_expr(), extra in small_const()) {
        let call = Expr::Call(
            Symbol::intern("f"),
            vec![Expr::var("x"), Expr::var("y"), Expr::Const(extra)],
        );
        let corrupted = Expr::If(
            Box::new(Expr::prim(Prim::Eq, vec![Expr::var("x"), Expr::var("x")])),
            Box::new(body),
            Box::new(call),
        );
        let diags = check_defs(&defs_of(&corrupted));
        prop_assert!(
            diags.iter().any(|d| d.code == "E0006"),
            "analyzer missed the arity mismatch: {diags:?}"
        );
    }
}

#[test]
fn whole_corpus_is_check_clean() {
    for (name, src, _) in common::CORPUS {
        let report = check_source(src);
        assert!(!report.has_errors(), "{name}: {:?}", report.diagnostics);
    }
}
