//! End-to-end tests of the service subcommands, driving the real binary:
//! `ppe batch` must print byte-identical stdout at any `--jobs`, and
//! `ppe serve` must answer JSON-lines requests in order.

mod common;

use std::io::Write as _;
use std::process::{Command, Stdio};

use common::CORPUS;
use ppe::server::Json;

fn ppe_with_stdin(args: &[&str], stdin_text: &str) -> (bool, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ppe"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ppe binary runs");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin_text.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("ppe binary exits");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn request_line(src: &str, inputs: &str, extra: &[(&str, Json)]) -> String {
    let mut fields = vec![("program", Json::str(src)), ("inputs", Json::str(inputs))];
    fields.extend(extra.iter().cloned());
    Json::obj(fields).render()
}

/// A batch over the whole corpus with repeats (so the parallel run sees
/// cache hits and coalescing) and mixed engines.
fn corpus_batch() -> String {
    let mut lines = Vec::new();
    for (_, src, arity) in CORPUS {
        let inputs = match arity {
            1 => "_".to_owned(),
            n => {
                let mut parts = vec!["_".to_owned()];
                parts.extend((1..*n).map(|k| format!("{}", k + 2)));
                parts.join(" ")
            }
        };
        lines.push(request_line(src, &inputs, &[]));
        lines.push(request_line(
            src,
            &inputs,
            &[("engine", Json::str("simple"))],
        ));
        lines.push(request_line(
            src,
            &inputs,
            &[("engine", Json::str("offline"))],
        ));
        // Exact repeat: answered from the cache (or coalesced) under
        // --jobs 8, recomputed never.
        lines.push(request_line(src, &inputs, &[]));
    }
    lines.join("\n") + "\n"
}

#[test]
fn batch_stdout_is_byte_identical_across_job_counts() {
    let batch = corpus_batch();
    let (ok1, serial, err1) = ppe_with_stdin(&["batch", "-", "--jobs", "1"], &batch);
    assert!(ok1, "{err1}");
    let (ok8, parallel, err8) = ppe_with_stdin(&["batch", "-", "--jobs", "8"], &batch);
    assert!(ok8, "{err8}");
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "batch stdout must not depend on worker count"
    );
    // The run-dependent channel (metrics) is stderr, and the parallel run
    // really did share work: fewer misses than requests.
    let metrics = Json::parse(err8.lines().last().unwrap()).expect("metrics JSON on stderr");
    let requests = metrics.get("requests").and_then(Json::as_u64).unwrap();
    let misses = metrics.get("cache_misses").and_then(Json::as_u64).unwrap();
    assert_eq!(requests as usize, 4 * CORPUS.len());
    assert!(misses < requests, "repeats must not recompute: {metrics:?}");
}

#[test]
fn batch_reports_bad_lines_in_place() {
    let batch = format!(
        "{}\nnot json at all\n{}\n",
        request_line(CORPUS[0].1, "_ 3", &[]),
        request_line(CORPUS[0].1, "_ 4", &[])
    );
    let (ok, stdout, stderr) = ppe_with_stdin(&["batch", "-"], &batch);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].starts_with(";; request 0"), "{stdout}");
    assert!(
        lines.iter().any(|l| l.starts_with(";; request 1 error:")),
        "bad line keeps its slot: {stdout}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with(";; request 2")),
        "{stdout}"
    );
}

#[test]
fn serve_answers_three_requests_in_order_and_shuts_down() {
    let (_, power, _) = CORPUS[0];
    let input = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        request_line(power, "_ 2", &[("id", Json::num(0))]),
        request_line(power, "_ 3", &[("id", Json::num(1))]),
        request_line(power, "_ 2", &[("id", Json::num(2))]),
        r#"{"cmd": "metrics"}"#,
        r#"{"cmd": "shutdown"}"#
    );
    let (ok, stdout, stderr) = ppe_with_stdin(&["serve", "--jobs", "2"], &input);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "{stdout}");
    for (i, line) in lines[..3].iter().enumerate() {
        let v = Json::parse(line).expect("response is JSON");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(i as u64), "{line}");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
        assert!(
            v.get("residual")
                .and_then(Json::as_str)
                .unwrap()
                .contains("power"),
            "{line}"
        );
    }
    // Requests 0 and 2 are identical: same key, and the repeat is a hit
    // (or coalesced), never a second miss.
    let key = |line: &str| {
        Json::parse(line)
            .unwrap()
            .get("key")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned()
    };
    assert_eq!(key(lines[0]), key(lines[2]));
    assert_ne!(key(lines[0]), key(lines[1]));
    let metrics = Json::parse(lines[3]).unwrap();
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)), "{stdout}");
    let shutdown = Json::parse(lines[4]).unwrap();
    assert_eq!(
        shutdown.get("shutdown"),
        Some(&Json::Bool(true)),
        "{stdout}"
    );
}

#[test]
fn serve_survives_malformed_input() {
    let input = "garbage\n{\"program\": \"(define (f x)\", \"inputs\": \"_\"}\n";
    let (ok, stdout, stderr) = ppe_with_stdin(&["serve"], input);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    for line in &lines {
        let v = Json::parse(line).expect("error responses are still JSON");
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line}");
    }
}
