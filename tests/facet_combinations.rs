//! Products of several facets working together (Definition 5, Lemma 3):
//! overlapping facets must agree when both decide, information flows
//! between facets through constants, and wide products behave like their
//! most informative member.

use ppe::core::facets::{
    ConstSetFacet, ConstSetVal, ContentsFacet, ContentsVal, ParityFacet, ParityVal, RangeFacet,
    RangeVal, SignFacet, SignVal, SizeFacet, SizeVal,
};
use ppe::core::{size_of, AbsVal, FacetSet, PrimOutcome, ProductVal};
use ppe::lang::{parse_program, pretty_program, Const, Prim, Value};
use ppe::online::{OnlinePe, PeInput};

/// Lemma 3 in the wild: the Size facet and the Contents facet *both*
/// decide `vsize` — the product must produce their (identical) constant.
#[test]
fn size_and_contents_agree_on_vsize() {
    let set = FacetSet::with_facets(vec![Box::new(SizeFacet), Box::new(ContentsFacet)]);
    let vec3 = Value::vector(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    let v = ProductVal::from_value(&vec3, &set);
    // Both components carry the size.
    assert_eq!(
        v.facet(0).downcast_ref::<SizeVal>(),
        Some(&SizeVal::Known(3))
    );
    assert!(matches!(
        v.facet(1).downcast_ref::<ContentsVal>(),
        Some(ContentsVal::Exact(_))
    ));
    assert_eq!(
        set.prim_product(Prim::VSize, &[v]),
        PrimOutcome::Const(Const::Int(3))
    );
}

/// A facet-produced constant is re-abstracted into *every* facet
/// (Figure 3's `K̂`): the size constant from `vsize` lands in the Sign,
/// Parity and Range components too.
#[test]
fn facet_constants_propagate_to_all_components() {
    let set = FacetSet::with_facets(vec![
        Box::new(SizeFacet),
        Box::new(SignFacet),
        Box::new(ParityFacet),
        Box::new(RangeFacet),
    ]);
    let v = ProductVal::dynamic(&set).with_facet(0, size_of(4));
    let out = set.prim_product(Prim::VSize, &[v]);
    assert_eq!(out, PrimOutcome::Const(Const::Int(4)));
    // The reduced constant re-enters the product via from_const; check
    // the abstractions that the caller will now carry.
    let product = ProductVal::from_const(Const::Int(4), &set);
    assert_eq!(
        product.facet(1).downcast_ref::<SignVal>(),
        Some(&SignVal::Pos)
    );
    assert_eq!(
        product.facet(2).downcast_ref::<ParityVal>(),
        Some(&ParityVal::Even)
    );
    assert_eq!(
        product.facet(3).downcast_ref::<RangeVal>(),
        Some(&RangeVal::exactly(4))
    );
}

/// End to end: a program whose reductions need *different* facets at
/// different points — size for the unrolling, sign for a guard, parity
/// for an equality — specialized in one product.
#[test]
fn heterogeneous_product_drives_mixed_reductions() {
    let src = "(define (main a k)
           (if (< (* k k) 0)
               -1.0
               (if (= (+ k k) 3) -2.0 (total a (vsize a)))))
         (define (total a n)
           (if (= n 0) 0.0 (+ (vref a n) (total a (- n 1)))))";
    let program = parse_program(src).unwrap();
    let set = FacetSet::with_facets(vec![
        Box::new(SizeFacet),
        Box::new(SignFacet),
        Box::new(ParityFacet),
    ]);
    let residual = OnlinePe::new(&program, &set)
        .specialize_main(&[
            PeInput::dynamic().with_facet("size", size_of(2)),
            // k is odd: odd + odd = even, so (= (+ k k) 3) is false.
            PeInput::dynamic().with_facet("parity", AbsVal::new(ParityVal::Odd)),
        ])
        .unwrap();
    let printed = pretty_program(&residual.program);
    // vsize reduced (size facet) and the recursion unrolled.
    assert!(printed.contains("(vref a 2)"), "{printed}");
    assert!(!printed.contains("total"), "{printed}");
    // (+ k k) is even (parity facet), never 3: the second guard died.
    assert!(!printed.contains("-2.0"), "{printed}");
}

/// The same program with the sign of `k` known: the first guard dies too.
#[test]
fn adding_facet_information_only_shrinks_residuals() {
    let src = "(define (main a k)
           (if (< (* k k) 0)
               -1.0
               (if (= (+ k k) 3) -2.0 (total a (vsize a)))))
         (define (total a n)
           (if (= n 0) 0.0 (+ (vref a n) (total a (- n 1)))))";
    let program = parse_program(src).unwrap();
    let set = FacetSet::with_facets(vec![
        Box::new(SizeFacet),
        Box::new(SignFacet),
        Box::new(ParityFacet),
    ]);
    let weak = OnlinePe::new(&program, &set)
        .specialize_main(&[
            PeInput::dynamic().with_facet("size", size_of(2)),
            PeInput::dynamic().with_facet("parity", AbsVal::new(ParityVal::Odd)),
        ])
        .unwrap();
    let strong = OnlinePe::new(&program, &set)
        .specialize_main(&[
            PeInput::dynamic().with_facet("size", size_of(2)),
            PeInput::dynamic()
                .with_facet("parity", AbsVal::new(ParityVal::Odd))
                .with_facet("sign", AbsVal::new(SignVal::Pos)),
        ])
        .unwrap();
    // pos·pos = pos: (< pos 0) is false — the first guard is gone too.
    let strong_printed = pretty_program(&strong.program);
    assert!(!strong_printed.contains("-1.0"), "{strong_printed}");
    assert!(
        strong.program.size() <= weak.program.size(),
        "more information must not grow the residual: {} vs {}",
        strong.program.size(),
        weak.program.size()
    );
}

/// ConstSet and Range both decide a comparison — and agree (Lemma 3).
#[test]
fn const_set_and_range_agree() {
    let set = FacetSet::with_facets(vec![
        Box::new(ConstSetFacet::default()),
        Box::new(RangeFacet),
    ]);
    let x = ProductVal::dynamic(&set)
        .with_facet(
            0,
            AbsVal::new(ConstSetVal::of([Const::Int(2), Const::Int(4)])),
        )
        .with_facet(1, AbsVal::new(RangeVal::between(2, 4)));
    let ten = ProductVal::from_const(Const::Int(10), &set);
    assert_eq!(
        set.prim_product(Prim::Lt, &[x, ten]),
        PrimOutcome::Const(Const::Bool(true))
    );
}

/// Facet information survives closed operators through the whole product:
/// `updvec` keeps size and contents-length in lockstep.
#[test]
fn closed_operators_update_components_consistently() {
    let set = FacetSet::with_facets(vec![Box::new(SizeFacet), Box::new(ContentsFacet)]);
    let vec2 = ProductVal::from_value(&Value::vector(vec![Value::Int(7), Value::Int(8)]), &set);
    let idx = ProductVal::from_const(Const::Int(1), &set);
    let val = ProductVal::dynamic(&set);
    match set.prim_product(Prim::UpdVec, &[vec2, idx, val]) {
        PrimOutcome::Closed(out) => {
            assert_eq!(
                out.facet(0).downcast_ref::<SizeVal>(),
                Some(&SizeVal::Known(2))
            );
            match out.facet(1).downcast_ref::<ContentsVal>() {
                Some(ContentsVal::Exact(elems)) => {
                    assert_eq!(elems.len(), 2);
                    // Slot 1 became unknown; slot 2 kept its constant.
                    assert_eq!(format!("{}", out.facet(1)), "#(? 8)");
                }
                other => panic!("expected Exact contents, got {other:?}"),
            }
        }
        other => panic!("expected Closed, got {other:?}"),
    }
}

/// A five-facet product still reduces exactly like its best member and
/// produces valid residuals.
#[test]
fn five_facet_product_end_to_end() {
    let src = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";
    let program = parse_program(src).unwrap();
    let wide = FacetSet::with_facets(vec![
        Box::new(SizeFacet),
        Box::new(SignFacet),
        Box::new(ParityFacet),
        Box::new(RangeFacet),
        Box::new(ConstSetFacet::default()),
    ]);
    let narrow = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
    let inputs = [
        PeInput::dynamic().with_facet("size", size_of(3)),
        PeInput::dynamic().with_facet("size", size_of(3)),
    ];
    let wide_res = OnlinePe::new(&program, &wide)
        .specialize_main(&inputs)
        .unwrap();
    let narrow_res = OnlinePe::new(&program, &narrow)
        .specialize_main(&inputs)
        .unwrap();
    assert_eq!(
        pretty_program(&wide_res.program),
        pretty_program(&narrow_res.program),
        "irrelevant facets must not change the residual"
    );
}

/// The PE component always wins ties with user facets: a constant input
/// stays a constant even when facet components look coarse.
#[test]
fn pe_component_dominates() {
    let set = FacetSet::with_facets(vec![Box::new(SignFacet)]);
    let five = ProductVal::from_const(Const::Int(5), &set);
    // Replace the sign component with ⊤ — the PE constant still reduces.
    let coarse = five.with_facet(0, SignFacet.top());
    assert_eq!(
        set.prim_product(Prim::Add, &[coarse.clone(), coarse]),
        PrimOutcome::Const(Const::Int(10))
    );
}

use ppe::core::Facet as _; // for SignFacet.top()
