//! Workloads and helpers for the benchmark harness.
//!
//! Each experiment in `benches/` regenerates one of the paper's artifacts
//! or quantifies one of its claims; see `EXPERIMENTS.md` at the workspace
//! root for the experiment index (E1–E7) and recorded results. The
//! `report` binary (`cargo run -p ppe-bench --bin report --release`)
//! prints all the non-Criterion tables in one pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ppe_core::facets::{ParityFacet, RangeFacet, SignFacet, SizeFacet};
use ppe_core::{size_of, Facet, FacetSet};
use ppe_lang::{parse_program, Program, Value};
use ppe_offline::{analyze, AbstractInput, Analysis};
use ppe_online::{PeConfig, PeInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Figure 7 of the paper: the inner-product program.
pub const INNER_PRODUCT: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
     (define (dotprod a b n)
       (if (= n 0) 0.0
           (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

/// The classic `power` program (static exponent).
pub const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";

/// A sign-guarded iteration kernel (piecewise steps).
pub const SIGN_KERNEL: &str = "(define (kernel x steps)
       (if (= steps 0) x (kernel (step x) (- steps 1))))
     (define (step x)
       (if (< x 0) (neg x) (+ x 1)))";

/// Parses one of the fixed workloads.
///
/// # Panics
///
/// Panics if the embedded source is invalid (a bug in this crate).
pub fn program(src: &str) -> Program {
    parse_program(src).expect("embedded workload parses")
}

/// The Size facet set used by E1/E3/E6.
pub fn size_facets() -> FacetSet {
    FacetSet::with_facets(vec![Box::new(SizeFacet)])
}

/// Inputs "two dynamic vectors of static size `n`" (Section 6.1).
pub fn sized_inputs(n: i64) -> Vec<PeInput> {
    vec![
        PeInput::dynamic().with_facet("size", size_of(n)),
        PeInput::dynamic().with_facet("size", size_of(n)),
    ]
}

/// The corresponding abstract inputs (Section 6.2), derived from the
/// online inputs via the facet mappings.
pub fn sized_abstract_inputs(facets: &FacetSet, n: i64) -> Vec<AbstractInput> {
    sized_inputs(n)
        .iter()
        .map(|i| AbstractInput::of_product(i.to_product(facets).expect("facet names are valid")))
        .collect()
}

/// Runs the Section 6.2 facet analysis once for reuse across sizes.
///
/// # Panics
///
/// Panics if analysis fails (a bug for these fixed workloads).
pub fn iprod_analysis(program: &Program, facets: &FacetSet) -> Analysis {
    analyze(program, facets, &sized_abstract_inputs(facets, 3)).expect("iprod analyzes")
}

/// A random float vector of length `n` (deterministic per seed).
pub fn random_vector(n: usize, seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::vector(
        (0..n)
            .map(|_| Value::Float(rng.gen_range(-1.0..1.0)))
            .collect(),
    )
}

/// A [`PeConfig`] with an unfold budget comfortably above `n`, for
/// workloads whose static recursion depth is `n`.
pub fn deep_config(n: u32) -> PeConfig {
    PeConfig {
        max_unfold_depth: n + 64,
        ..PeConfig::default()
    }
}

/// Builds a synthetic chain program of `k` functions
/// `f0 → f1 → … → f(k-1)`, each performing a little arithmetic — used to
/// scale facet analysis (E7).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn chain_program(k: usize) -> Program {
    assert!(k > 0, "chain needs at least one function");
    let mut src = String::new();
    for i in 0..k {
        let next = if i + 1 < k {
            format!("(f{} (+ x 1) (- n 1))", i + 1)
        } else {
            "(* x x)".to_owned()
        };
        src.push_str(&format!("(define (f{i} x n) (if (< n 0) x {next}))\n"));
    }
    parse_program(&src).expect("chain program parses")
}

/// Facet sets of growing width for E5: 0..=4 facets.
///
/// # Panics
///
/// Panics if `width > 4`.
pub fn facet_set_of_width(width: usize) -> FacetSet {
    let all: Vec<Box<dyn Facet>> = vec![
        Box::new(SignFacet),
        Box::new(ParityFacet),
        Box::new(RangeFacet),
        Box::new(SizeFacet),
    ];
    assert!(width <= all.len(), "at most {} facets available", all.len());
    FacetSet::with_facets(all.into_iter().take(width).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_parse() {
        assert_eq!(program(INNER_PRODUCT).defs().len(), 2);
        assert_eq!(program(POWER).defs().len(), 1);
        assert_eq!(program(SIGN_KERNEL).defs().len(), 2);
    }

    #[test]
    fn chain_program_scales() {
        for k in [1, 5, 20] {
            let p = chain_program(k);
            assert_eq!(p.defs().len(), k);
            p.validate().unwrap();
        }
    }

    #[test]
    fn random_vectors_are_deterministic_per_seed() {
        assert_eq!(random_vector(8, 7), random_vector(8, 7));
        assert_ne!(random_vector(8, 7), random_vector(8, 8));
    }

    #[test]
    fn facet_widths() {
        for w in 0..=4 {
            assert_eq!(facet_set_of_width(w).len(), w);
        }
    }
}

/// The bytecode interpreter of `examples/interpreter.rs`, as a workload
/// (E8): opcode 1 = push constant, 2 = add, 3 = mul, 4 = push the input
/// `x`, anything else halts with the top of stack.
pub const INTERPRETER: &str = "(define (run code x) (exec code x (mkvec 8) 0 1))
     (define (exec code x stack sp pc)
       (let ((op (vref code pc)))
         (if (= op 1)
             (exec code x (updvec stack (+ sp 1) (vref code (+ pc 1))) (+ sp 1) (+ pc 2))
         (if (= op 2)
             (exec code x
                   (updvec stack (- sp 1) (+ (vref stack (- sp 1)) (vref stack sp)))
                   (- sp 1) (+ pc 1))
         (if (= op 3)
             (exec code x
                   (updvec stack (- sp 1) (* (vref stack (- sp 1)) (vref stack sp)))
                   (- sp 1) (+ pc 1))
         (if (= op 4)
             (exec code x (updvec stack (+ sp 1) x) (+ sp 1) (+ pc 1))
             (vref stack sp)))))))";

/// Parses the interpreter workload.
pub fn interpreter_program() -> Program {
    program(INTERPRETER)
}

/// Straight-line bytecode of roughly `ops` arithmetic operations over the
/// dynamic input: `LOAD; (PUSH k; ADD | LOAD; MUL)*; HALT`, keeping the
/// stack at depth ≤ 2.
pub fn linear_bytecode(ops: usize) -> Value {
    let mut code = vec![Value::Int(4)]; // LOAD x
    for i in 0..ops {
        if i % 2 == 0 {
            code.push(Value::Int(1)); // PUSH
            code.push(Value::Int((i % 7) as i64 + 1));
            code.push(Value::Int(2)); // ADD
        } else {
            code.push(Value::Int(4)); // LOAD x
            code.push(Value::Int(3)); // MUL
        }
    }
    code.push(Value::Int(5)); // HALT
    Value::vector(code)
}

#[cfg(test)]
mod interpreter_tests {
    use super::*;
    use ppe_lang::Evaluator;

    #[test]
    fn linear_bytecode_runs_and_grows() {
        let p = interpreter_program();
        let mut ev = Evaluator::new(&p);
        ev.set_max_depth(10_000);
        for ops in [0usize, 2, 8] {
            let code = linear_bytecode(ops);
            let out = ev.run_main(&[code, Value::Int(3)]).unwrap();
            assert!(matches!(out, Value::Int(_)), "ops = {ops}: {out:?}");
        }
    }
}
