//! One-shot experiment report: regenerates every figure/table of the
//! paper and prints coarse wall-clock measurements for E1–E7 (Criterion
//! gives the rigorous numbers; this binary gives the overview recorded in
//! `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run -p ppe-bench --bin report --release
//! ```

use std::time::Instant;

use ppe_bench::{
    chain_program, deep_config, facet_set_of_width, iprod_analysis, random_vector, size_facets,
    sized_inputs, INNER_PRODUCT, POWER, SIGN_KERNEL,
};
use ppe_core::FacetSet;
use ppe_lang::{pretty_program, Const, Evaluator, Value};
use ppe_offline::{analyze, AbstractInput, OfflinePe};
use ppe_online::{OnlinePe, PeInput, SimpleInput, SimplePe};

/// Median wall time of `reps` runs of `f`, in microseconds.
fn time_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    println!("# Parameterized Partial Evaluation — experiment report\n");
    e1_e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
}

/// E1 (Figures 7→8) and E2 (Figure 9).
fn e1_e2() {
    let program = ppe_bench::program(INNER_PRODUCT);
    let facets = size_facets();

    println!("## E1 — Figure 8 residual (online, size 3)\n");
    let online = OnlinePe::new(&program, &facets)
        .specialize_main(&sized_inputs(3))
        .unwrap();
    println!("{}", pretty_program(&online.program));

    println!("## E2 — Figure 9 facet-analysis table\n");
    let analysis = iprod_analysis(&program, &facets);
    println!("{}", analysis.report(&program));

    println!("### E1 timings (median of 25, µs)\n");
    println!("| n | online spec | offline spec | facet analysis |");
    println!("|---|---|---|---|");
    let analysis = iprod_analysis(&program, &facets);
    for n in [2i64, 4, 8, 16, 32] {
        let config = deep_config(n as u32);
        let inputs = sized_inputs(n);
        let t_on = time_us(25, || {
            OnlinePe::with_config(&program, &facets, config.clone())
                .specialize_main(&inputs)
                .unwrap()
        });
        let t_off = time_us(25, || {
            OfflinePe::with_config(&program, &facets, &analysis, config.clone())
                .specialize(&inputs)
                .unwrap()
        });
        let t_an = time_us(25, || iprod_analysis(&program, &facets));
        println!("| {n} | {t_on:.1} | {t_off:.1} | {t_an:.1} |");
    }
    println!();
}

/// E3 — amortization sweep.
fn e3() {
    let program = ppe_bench::program(INNER_PRODUCT);
    let facets = size_facets();
    let config = deep_config(64);
    println!("## E3 — online×k vs analysis + offline×k (median of 15, µs)\n");
    println!("| k | online×k | analysis+offline×k |");
    println!("|---|---|---|");
    for k in [1usize, 4, 16, 64] {
        let sizes: Vec<i64> = (0..k).map(|i| 2 + (i as i64 % 31)).collect();
        let t_on = time_us(15, || {
            let pe = OnlinePe::with_config(&program, &facets, config.clone());
            for &n in &sizes {
                std::hint::black_box(pe.specialize_main(&sized_inputs(n)).unwrap());
            }
        });
        let t_off = time_us(15, || {
            let analysis = iprod_analysis(&program, &facets);
            let pe = OfflinePe::with_config(&program, &facets, &analysis, config.clone());
            for &n in &sizes {
                std::hint::black_box(pe.specialize(&sized_inputs(n)).unwrap());
            }
        });
        println!("| {k} | {t_on:.1} | {t_off:.1} |");
    }
    println!();
}

/// E4 — simple PE vs PE-facet-only parameterized PE.
fn e4() {
    println!("## E4 — Figure 2 baseline vs PE-facet-only parameterized PE (median of 25, µs)\n");
    println!("| workload | simple PE | parameterized (PE facet only) | identical residual |");
    println!("|---|---|---|---|");
    for (name, src, n) in [("power", POWER, 64i64), ("kernel", SIGN_KERNEL, 64)] {
        let program = ppe_bench::program(src);
        let facets = FacetSet::new();
        let config = deep_config(n as u32);
        let online_inputs = [PeInput::dynamic(), PeInput::known(Value::Int(n))];
        let simple_inputs = [SimpleInput::Dynamic, SimpleInput::Known(Const::Int(n))];
        let a = OnlinePe::with_config(&program, &facets, config.clone())
            .specialize_main(&online_inputs)
            .unwrap();
        let b = SimplePe::with_config(&program, config.clone())
            .specialize_main(&simple_inputs)
            .unwrap();
        let same = pretty_program(&a.program) == pretty_program(&b.program);
        let t_simple = time_us(25, || {
            SimplePe::with_config(&program, config.clone())
                .specialize_main(&simple_inputs)
                .unwrap()
        });
        let t_param = time_us(25, || {
            OnlinePe::with_config(&program, &facets, config.clone())
                .specialize_main(&online_inputs)
                .unwrap()
        });
        println!("| {name} | {t_simple:.1} | {t_param:.1} | {same} |");
    }
    println!();
}

/// E5 — product width scaling.
fn e5() {
    let program = ppe_bench::program(SIGN_KERNEL);
    let config = deep_config(48);
    println!("## E5 — specialization cost vs number of facets in the product (median of 25, µs)\n");
    println!("| facets in product | online spec |");
    println!("|---|---|");
    for width in 0..=4usize {
        let facets = facet_set_of_width(width);
        let inputs = [PeInput::dynamic(), PeInput::known(Value::Int(48))];
        let t = time_us(25, || {
            OnlinePe::with_config(&program, &facets, config.clone())
                .specialize_main(&inputs)
                .unwrap()
        });
        println!("| {width} | {t:.1} |");
    }
    println!();
}

/// E6 — residual speedups.
fn e6() {
    let program = ppe_bench::program(INNER_PRODUCT);
    let facets = size_facets();
    println!("## E6 — residual vs source evaluation (median of 51, µs)\n");
    println!("| n | source eval | residual eval | speedup |");
    println!("|---|---|---|---|");
    for n in [4usize, 16, 64, 128] {
        let residual = OnlinePe::with_config(&program, &facets, deep_config(n as u32))
            .specialize_main(&sized_inputs(n as i64))
            .unwrap();
        let a = random_vector(n, 1);
        let b = random_vector(n, 2);
        let t_src = time_us(51, || {
            let mut ev = Evaluator::new(&program);
            ev.set_max_depth(10_000);
            ev.run_main(&[a.clone(), b.clone()]).unwrap()
        });
        let t_res = time_us(51, || {
            let mut ev = Evaluator::new(&residual.program);
            ev.set_max_depth(10_000);
            ev.run_main(&[a.clone(), b.clone()]).unwrap()
        });
        println!("| {n} | {t_src:.1} | {t_res:.1} | {:.2}× |", t_src / t_res);
    }
    println!();
}

/// E8 — interpreter specialization (first Futamura projection).
fn e8() {
    use ppe_bench::{interpreter_program, linear_bytecode};
    use ppe_core::facets::ContentsFacet;
    let program = interpreter_program();
    let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
    println!("## E8 — interpreter vs specialized (\"compiled\") bytecode (median of 51, µs)\n");
    println!("| bytecode ops | interpreted | compiled | speedup | specialize once |");
    println!("|---|---|---|---|---|");
    for ops in [4usize, 16, 64] {
        let code = linear_bytecode(ops);
        let config = deep_config(4 * ops as u32 + 32);
        let residual = OnlinePe::with_config(&program, &facets, config.clone())
            .specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])
            .unwrap();
        let t_interp = time_us(51, || {
            let mut ev = Evaluator::new(&program);
            ev.set_max_depth(10_000);
            ev.run_main(&[code.clone(), Value::Int(1)]).unwrap()
        });
        let t_comp = time_us(51, || {
            let mut ev = Evaluator::new(&residual.program);
            ev.set_max_depth(10_000);
            ev.run_main(&[Value::Int(1)]).unwrap()
        });
        let t_spec = time_us(15, || {
            OnlinePe::with_config(&program, &facets, config.clone())
                .specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])
                .unwrap()
        });
        println!(
            "| {ops} | {t_interp:.1} | {t_comp:.1} | {:.2}× | {t_spec:.1} |",
            t_interp / t_comp
        );
    }
    println!();
}

/// E9 — constraint propagation (Section 4.4's future work, implemented).
fn e9() {
    use ppe_core::facets::{RangeFacet, SignFacet};
    use ppe_lang::{parse_program, pretty_program};
    let program = parse_program(
        "(define (clamp x lo hi)
           (if (< x lo)
               (if (< x hi) lo lo)
               (if (< hi x)
                   (if (< lo x) hi hi)
                   (if (< x lo) 0 x))))",
    )
    .unwrap();
    let facets = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(RangeFacet)]);
    let inputs = [
        PeInput::dynamic(),
        PeInput::known(Value::Int(0)),
        PeInput::known(Value::Int(100)),
    ];
    let plain = OnlinePe::new(&program, &facets)
        .specialize_main(&inputs)
        .unwrap();
    let config = ppe_online::PeConfig {
        propagate_constraints: true,
        ..ppe_online::PeConfig::default()
    };
    let refined = OnlinePe::with_config(&program, &facets, config.clone())
        .specialize_main(&inputs)
        .unwrap();
    let plain_ifs = pretty_program(&plain.program).matches("(if").count();
    let refined_ifs = pretty_program(&refined.program).matches("(if").count();
    let t_plain = time_us(25, || {
        OnlinePe::new(&program, &facets)
            .specialize_main(&inputs)
            .unwrap()
    });
    let t_refined = time_us(25, || {
        OnlinePe::with_config(&program, &facets, config.clone())
            .specialize_main(&inputs)
            .unwrap()
    });
    println!("## E9 — constraint propagation on `clamp` (median of 25, µs)\n");
    println!("| | conditionals in residual | residual size | spec time |");
    println!("|---|---|---|---|");
    println!(
        "| without propagation | {plain_ifs} | {} | {t_plain:.1} |",
        plain.program.size()
    );
    println!(
        "| with propagation | {refined_ifs} | {} | {t_refined:.1} |",
        refined.program.size()
    );
    println!();
}

/// E7 — analysis scaling.
fn e7() {
    println!("## E7 — facet-analysis cost vs program size and facet count (median of 15, µs)\n");
    println!("| chain length | 0 facets | 2 facets | 4 facets |");
    println!("|---|---|---|---|");
    for k in [4usize, 16, 64, 128] {
        let program = chain_program(k);
        let mut row = format!("| {k} |");
        for width in [0usize, 2, 4] {
            let facets = facet_set_of_width(width);
            let inputs = [AbstractInput::dynamic(), AbstractInput::static_()];
            let t = time_us(15, || analyze(&program, &facets, &inputs).unwrap());
            row.push_str(&format!(" {t:.1} |"));
        }
        println!("{row}");
    }
    println!();
}
