//! Machine-readable E1–E8 timing suite.
//!
//! Prints one JSON object mapping a stable bench id to its median
//! wall-clock microseconds. `BENCH_specializer.json` is assembled from two
//! runs of this binary (one on the commit before a perf change, one after):
//!
//! ```sh
//! cargo run -p ppe-bench --bin spec_suite --release > after.json
//! ```
//!
//! Flags:
//!
//! - `--quick` cuts repetition counts for CI smoke runs.
//! - `--spec-engine vm|ast` picks the static-evaluation backend the
//!   specialization benches run with (default `vm`, matching the CLI and
//!   server defaults). Execution and analysis benches ignore it.
//! - `--interleaved` switches to before/after re-measurement mode: every
//!   spec-phase bench runs its `ast` and `vm` variants with alternating
//!   samples *in one process*, so allocator state, frequency scaling, and
//!   cache warmth drift hit both sides equally. Output becomes
//!   `{"id": {"before_us": ast, "after_us": vm, "speedup": r}, ...}` plus a
//!   `control_kernel_self` datapoint that times one workload against
//!   itself — its deviation from 1.0 is the measured noise floor, the
//!   yardstick for deciding whether a recorded sub-1.0 speedup is a real
//!   regression or sampling noise (see EXPERIMENTS.md).

use std::sync::Arc;
use std::time::Instant;

use ppe_bench::{
    chain_program, deep_config, facet_set_of_width, interpreter_program, iprod_analysis,
    linear_bytecode, size_facets, sized_inputs, INNER_PRODUCT, POWER, SIGN_KERNEL,
};
use ppe_core::facets::ContentsFacet;
use ppe_core::FacetSet;
use ppe_lang::{Const, Evaluator, Value};
use ppe_offline::{analyze, AbstractInput, OfflinePe};
use ppe_online::{OnlinePe, PeConfig, PeInput, SimpleInput, SimplePe};

/// One timed sample of `f`, in microseconds.
fn sample_us<T>(f: &mut impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64() * 1e6
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Median wall time of `reps` runs of `f`, in microseconds.
fn time_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    median((0..reps).map(|_| sample_us(&mut f)).collect())
}

/// Interleaved A/B medians for one two-sided workload: `f(false)` is the
/// A side, `f(true)` the B side. Samples alternate `a, b, b, a, a, b, …`
/// so slow environmental drift contributes equally to both sides.
///
/// `reps` is a floor: a pilot sample sizes the run so each side gets
/// roughly 20 ms of samples (capped at `25 × reps`). A 10 µs bench at the
/// floor rep count has a median noise of several percent — enough to
/// manufacture a phantom regression — while the same wall-clock budget
/// that the slow benches spend anyway buys it a stable median.
fn time_us_pair<T>(reps: usize, mut f: impl FnMut(bool) -> T) -> (f64, f64) {
    let pilot = sample_us(&mut || f(false)).max(sample_us(&mut || f(true)));
    let reps = ((20_000.0 / pilot.max(1.0)) as usize).clamp(reps, 25 * reps) | 1;
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    for i in 0..reps {
        if i % 2 == 0 {
            sa.push(sample_us(&mut || f(false)));
            sb.push(sample_us(&mut || f(true)));
        } else {
            sb.push(sample_us(&mut || f(true)));
            sa.push(sample_us(&mut || f(false)));
        }
    }
    (median(sa), median(sb))
}

/// `config` with the requested static-evaluation backend installed.
fn with_engine(config: &PeConfig, vm: bool) -> PeConfig {
    let mut config = config.clone();
    config.spec_eval = if vm {
        Some(Arc::new(ppe_vm::VmStaticEval))
    } else {
        None
    };
    config
}

/// How the suite reports spec-phase benches.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Single median per id, on one chosen engine.
    Single { vm: bool },
    /// Interleaved ast/vm pair per id.
    Interleaved,
}

/// One output row.
enum Row {
    Single(&'static str, f64),
    Pair(&'static str, f64, f64),
}

/// Times one spec-phase bench according to `mode`. The closure runs one
/// specialization with the given backend choice.
fn spec_bench<T>(
    out: &mut Vec<Row>,
    mode: Mode,
    reps: usize,
    id: &'static str,
    mut f: impl FnMut(bool) -> T,
) {
    match mode {
        Mode::Single { vm } => out.push(Row::Single(id, time_us(reps, || f(vm)))),
        Mode::Interleaved => {
            let (ast, vm) = time_us_pair(reps, |side| f(side));
            out.push(Row::Pair(id, ast, vm));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let interleaved = args.iter().any(|a| a == "--interleaved");
    let vm_default = match args.iter().position(|a| a == "--spec-engine") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("vm") => true,
            Some("ast") => false,
            other => {
                eprintln!("--spec-engine must be vm or ast, got {other:?}");
                std::process::exit(2);
            }
        },
        None => true,
    };
    let mode = if interleaved {
        Mode::Interleaved
    } else {
        Mode::Single { vm: vm_default }
    };
    let reps = if quick { 5 } else { 41 };
    let reps_slow = if quick { 3 } else { 15 };

    let mut out: Vec<Row> = Vec::new();

    // E1 — inner-product specialization (Figures 7→8), online and offline.
    let iprod = ppe_bench::program(INNER_PRODUCT);
    let sfacets = size_facets();
    let analysis = iprod_analysis(&iprod, &sfacets);
    for n in [4i64, 16] {
        let config = deep_config(n as u32);
        let inputs = sized_inputs(n);
        spec_bench(
            &mut out,
            mode,
            reps,
            if n == 4 {
                "e1_online_iprod_n4"
            } else {
                "e1_online_iprod_n16"
            },
            |vm| {
                OnlinePe::with_config(&iprod, &sfacets, with_engine(&config, vm))
                    .specialize_main(&inputs)
                    .unwrap()
            },
        );
        spec_bench(
            &mut out,
            mode,
            reps,
            if n == 4 {
                "e1_offline_iprod_n4"
            } else {
                "e1_offline_iprod_n16"
            },
            |vm| {
                OfflinePe::with_config(&iprod, &sfacets, &analysis, with_engine(&config, vm))
                    .specialize(&inputs)
                    .unwrap()
            },
        );
    }

    // E2 — the Figure 9 facet analysis itself (no spec phase; skipped in
    // interleaved mode, which only re-measures engine-sensitive benches).
    if !interleaved {
        out.push(Row::Single(
            "e2_analysis_iprod",
            time_us(reps, || iprod_analysis(&iprod, &sfacets)),
        ));
    }

    // E3 — amortization: one analysis plus 16 offline specializations.
    {
        let config = deep_config(64);
        let sizes: Vec<i64> = (0..16).map(|i| 2 + (i % 31)).collect();
        spec_bench(&mut out, mode, reps_slow, "e3_offline_x16", |vm| {
            let analysis = iprod_analysis(&iprod, &sfacets);
            let pe = OfflinePe::with_config(&iprod, &sfacets, &analysis, with_engine(&config, vm));
            for &n in &sizes {
                std::hint::black_box(pe.specialize(&sized_inputs(n)).unwrap());
            }
        });
    }

    // E4 — the Figure 2 baseline specializer on power/kernel.
    for (id, src) in [
        ("e4_simple_power_n64", POWER),
        ("e4_simple_kernel_n64", SIGN_KERNEL),
    ] {
        let program = ppe_bench::program(src);
        let config = deep_config(64);
        let inputs = [SimpleInput::Dynamic, SimpleInput::Known(Const::Int(64))];
        spec_bench(&mut out, mode, reps, id, |vm| {
            SimplePe::with_config(&program, with_engine(&config, vm))
                .specialize_main(&inputs)
                .unwrap()
        });
    }

    // E5 — facet-product width scaling (online, sign kernel).
    {
        let program = ppe_bench::program(SIGN_KERNEL);
        let config = deep_config(48);
        let inputs = [PeInput::dynamic(), PeInput::known(Value::Int(48))];
        for width in [0usize, 2, 4] {
            let facets = facet_set_of_width(width);
            let id = match width {
                0 => "e5_facets_w0",
                2 => "e5_facets_w2",
                _ => "e5_facets_w4",
            };
            spec_bench(&mut out, mode, reps, id, |vm| {
                OnlinePe::with_config(&program, &facets, with_engine(&config, vm))
                    .specialize_main(&inputs)
                    .unwrap()
            });
        }
    }

    // E6 — residual production at a larger size (spec cost, not eval cost).
    {
        let config = deep_config(64);
        spec_bench(&mut out, mode, reps_slow, "e6_online_iprod_n64", |vm| {
            OnlinePe::with_config(&iprod, &sfacets, with_engine(&config, vm))
                .specialize_main(&sized_inputs(64))
                .unwrap()
        });
    }

    // E7 — monovariant facet-analysis scaling over call-chain programs
    // (analysis only — no spec phase, skipped in interleaved mode).
    if !interleaved {
        for (id, k, w) in [
            ("e7_analyze_k64_w2", 64usize, 2usize),
            ("e7_analyze_k64_w4", 64, 4),
            ("e7_analyze_k128_w4", 128, 4),
        ] {
            let program = chain_program(k);
            let facets = facet_set_of_width(w);
            let inputs = [AbstractInput::dynamic(), AbstractInput::static_()];
            let t = time_us(reps_slow, || analyze(&program, &facets, &inputs).unwrap());
            out.push(Row::Single(id, t));
        }
    }

    // E8 — first Futamura projection: specializing the bytecode interpreter.
    {
        let program = interpreter_program();
        let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
        let code = linear_bytecode(64);
        let config = deep_config(4 * 64 + 32);
        spec_bench(&mut out, mode, reps_slow, "e8_spec_interp_ops64", |vm| {
            OnlinePe::with_config(&program, &facets, with_engine(&config, vm))
                .specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])
                .unwrap()
        });
    }

    // Interleaved control: the same workload on both sides. Its measured
    // "speedup" can only differ from 1.0 by noise, which calibrates how
    // much trust the other ratios deserve.
    if interleaved {
        let program = ppe_bench::program(SIGN_KERNEL);
        let config = deep_config(64);
        let inputs = [SimpleInput::Dynamic, SimpleInput::Known(Const::Int(64))];
        let one = |_vm: bool| {
            SimplePe::with_config(&program, with_engine(&config, false))
                .specialize_main(&inputs)
                .unwrap()
        };
        let (a, b) = time_us_pair(reps, |_side| one(false));
        out.push(Row::Pair("control_kernel_self", a, b));
    }

    // E6/E8 executed — compiled vs interpreted residual *execution*: the
    // residuals the specializer produces, run through the AST oracle and
    // through the bytecode VM (`crates/vm`). The `_vm`/`_ast` pair is the
    // compiled-over-interpreted section of BENCH_specializer.json.
    // Residual execution has no spec phase; skipped in interleaved mode.
    if !interleaved {
        {
            let residual = OnlinePe::with_config(&iprod, &sfacets, deep_config(64))
                .specialize_main(&sized_inputs(64))
                .unwrap()
                .program;
            let args = [
                ppe_bench::random_vector(64, 1),
                ppe_bench::random_vector(64, 2),
            ];
            let mut ev = Evaluator::new(&residual);
            let t = time_us(reps, || ev.run_main(&args).unwrap());
            out.push(Row::Single("e6_exec_iprod_n64_ast", t));
            let compiled = ppe_vm::compile(&residual).unwrap();
            let mut vm = ppe_vm::Vm::new();
            let t = time_us(reps, || vm.run_main(&compiled, &args).unwrap());
            out.push(Row::Single("e6_exec_iprod_n64_vm", t));
        }
        {
            let program = interpreter_program();
            let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
            let code = linear_bytecode(64);
            let config = deep_config(4 * 64 + 32);
            let residual = OnlinePe::with_config(&program, &facets, config)
                .specialize_main(&[PeInput::known(code), PeInput::dynamic()])
                .unwrap()
                .program;
            let args = [Value::Int(3)];
            let mut ev = Evaluator::new(&residual);
            let t = time_us(reps, || ev.run_main(&args).unwrap());
            out.push(Row::Single("e8_exec_interp_ops64_ast", t));
            let compiled = ppe_vm::compile(&residual).unwrap();
            let mut vm = ppe_vm::Vm::new();
            let t = time_us(reps, || vm.run_main(&compiled, &args).unwrap());
            out.push(Row::Single("e8_exec_interp_ops64_vm", t));
        }
    }

    let fields: Vec<String> = out
        .iter()
        .map(|row| match row {
            Row::Single(id, t) => format!("\"{id}\": {t:.1}"),
            Row::Pair(id, ast, vm) => format!(
                "\"{id}\": {{\"before_us\": {ast:.1}, \"after_us\": {vm:.1}, \
                 \"speedup\": {:.3}}}",
                ast / vm
            ),
        })
        .collect();
    println!("{{{}}}", fields.join(", "));
}
