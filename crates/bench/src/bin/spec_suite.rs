//! Machine-readable E1–E8 timing suite.
//!
//! Prints one JSON object mapping a stable bench id to its median
//! wall-clock microseconds. `BENCH_specializer.json` is assembled from two
//! runs of this binary (one on the commit before a perf change, one after):
//!
//! ```sh
//! cargo run -p ppe-bench --bin spec_suite --release > after.json
//! ```
//!
//! Pass `--quick` to cut repetition counts for CI smoke runs.

use std::time::Instant;

use ppe_bench::{
    chain_program, deep_config, facet_set_of_width, interpreter_program, iprod_analysis,
    linear_bytecode, size_facets, sized_inputs, INNER_PRODUCT, POWER, SIGN_KERNEL,
};
use ppe_core::facets::ContentsFacet;
use ppe_core::FacetSet;
use ppe_lang::{Const, Evaluator, Value};
use ppe_offline::{analyze, AbstractInput, OfflinePe};
use ppe_online::{OnlinePe, PeInput, SimpleInput, SimplePe};

/// Median wall time of `reps` runs of `f`, in microseconds.
fn time_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 5 } else { 41 };
    let reps_slow = if quick { 3 } else { 15 };

    let mut out: Vec<(&'static str, f64)> = Vec::new();

    // E1 — inner-product specialization (Figures 7→8), online and offline.
    let iprod = ppe_bench::program(INNER_PRODUCT);
    let sfacets = size_facets();
    let analysis = iprod_analysis(&iprod, &sfacets);
    for n in [4i64, 16] {
        let config = deep_config(n as u32);
        let inputs = sized_inputs(n);
        let t = time_us(reps, || {
            OnlinePe::with_config(&iprod, &sfacets, config.clone())
                .specialize_main(&inputs)
                .unwrap()
        });
        out.push((
            if n == 4 {
                "e1_online_iprod_n4"
            } else {
                "e1_online_iprod_n16"
            },
            t,
        ));
        let t = time_us(reps, || {
            OfflinePe::with_config(&iprod, &sfacets, &analysis, config.clone())
                .specialize(&inputs)
                .unwrap()
        });
        out.push((
            if n == 4 {
                "e1_offline_iprod_n4"
            } else {
                "e1_offline_iprod_n16"
            },
            t,
        ));
    }

    // E2 — the Figure 9 facet analysis itself.
    out.push((
        "e2_analysis_iprod",
        time_us(reps, || iprod_analysis(&iprod, &sfacets)),
    ));

    // E3 — amortization: one analysis plus 16 offline specializations.
    {
        let config = deep_config(64);
        let sizes: Vec<i64> = (0..16).map(|i| 2 + (i % 31)).collect();
        let t = time_us(reps_slow, || {
            let analysis = iprod_analysis(&iprod, &sfacets);
            let pe = OfflinePe::with_config(&iprod, &sfacets, &analysis, config.clone());
            for &n in &sizes {
                std::hint::black_box(pe.specialize(&sized_inputs(n)).unwrap());
            }
        });
        out.push(("e3_offline_x16", t));
    }

    // E4 — the Figure 2 baseline specializer on power/kernel.
    for (id, src) in [
        ("e4_simple_power_n64", POWER),
        ("e4_simple_kernel_n64", SIGN_KERNEL),
    ] {
        let program = ppe_bench::program(src);
        let config = deep_config(64);
        let inputs = [SimpleInput::Dynamic, SimpleInput::Known(Const::Int(64))];
        let t = time_us(reps, || {
            SimplePe::with_config(&program, config.clone())
                .specialize_main(&inputs)
                .unwrap()
        });
        out.push((id, t));
    }

    // E5 — facet-product width scaling (online, sign kernel).
    {
        let program = ppe_bench::program(SIGN_KERNEL);
        let config = deep_config(48);
        let inputs = [PeInput::dynamic(), PeInput::known(Value::Int(48))];
        for width in [0usize, 2, 4] {
            let facets = facet_set_of_width(width);
            let t = time_us(reps, || {
                OnlinePe::with_config(&program, &facets, config.clone())
                    .specialize_main(&inputs)
                    .unwrap()
            });
            out.push((
                match width {
                    0 => "e5_facets_w0",
                    2 => "e5_facets_w2",
                    _ => "e5_facets_w4",
                },
                t,
            ));
        }
    }

    // E6 — residual production at a larger size (spec cost, not eval cost).
    {
        let t = time_us(reps_slow, || {
            OnlinePe::with_config(&iprod, &sfacets, deep_config(64))
                .specialize_main(&sized_inputs(64))
                .unwrap()
        });
        out.push(("e6_online_iprod_n64", t));
    }

    // E7 — monovariant facet-analysis scaling over call-chain programs.
    for (id, k, w) in [
        ("e7_analyze_k64_w2", 64usize, 2usize),
        ("e7_analyze_k64_w4", 64, 4),
        ("e7_analyze_k128_w4", 128, 4),
    ] {
        let program = chain_program(k);
        let facets = facet_set_of_width(w);
        let inputs = [AbstractInput::dynamic(), AbstractInput::static_()];
        let t = time_us(reps_slow, || analyze(&program, &facets, &inputs).unwrap());
        out.push((id, t));
    }

    // E8 — first Futamura projection: specializing the bytecode interpreter.
    {
        let program = interpreter_program();
        let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
        let code = linear_bytecode(64);
        let config = deep_config(4 * 64 + 32);
        let t = time_us(reps_slow, || {
            OnlinePe::with_config(&program, &facets, config.clone())
                .specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])
                .unwrap()
        });
        out.push(("e8_spec_interp_ops64", t));
    }

    // E6/E8 executed — compiled vs interpreted residual *execution*: the
    // residuals the specializer produces, run through the AST oracle and
    // through the bytecode VM (`crates/vm`). The `_vm`/`_ast` pair is the
    // compiled-over-interpreted section of BENCH_specializer.json.
    {
        let residual = OnlinePe::with_config(&iprod, &sfacets, deep_config(64))
            .specialize_main(&sized_inputs(64))
            .unwrap()
            .program;
        let args = [
            ppe_bench::random_vector(64, 1),
            ppe_bench::random_vector(64, 2),
        ];
        let mut ev = Evaluator::new(&residual);
        let t = time_us(reps, || ev.run_main(&args).unwrap());
        out.push(("e6_exec_iprod_n64_ast", t));
        let compiled = ppe_vm::compile(&residual).unwrap();
        let mut vm = ppe_vm::Vm::new();
        let t = time_us(reps, || vm.run_main(&compiled, &args).unwrap());
        out.push(("e6_exec_iprod_n64_vm", t));
    }
    {
        let program = interpreter_program();
        let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
        let code = linear_bytecode(64);
        let config = deep_config(4 * 64 + 32);
        let residual = OnlinePe::with_config(&program, &facets, config)
            .specialize_main(&[PeInput::known(code), PeInput::dynamic()])
            .unwrap()
            .program;
        let args = [Value::Int(3)];
        let mut ev = Evaluator::new(&residual);
        let t = time_us(reps, || ev.run_main(&args).unwrap());
        out.push(("e8_exec_interp_ops64_ast", t));
        let compiled = ppe_vm::compile(&residual).unwrap();
        let mut vm = ppe_vm::Vm::new();
        let t = time_us(reps, || vm.run_main(&compiled, &args).unwrap());
        out.push(("e8_exec_interp_ops64_vm", t));
    }

    let fields: Vec<String> = out
        .iter()
        .map(|(id, t)| format!("\"{id}\": {t:.1}"))
        .collect();
    println!("{{{}}}", fields.join(", "));
}
