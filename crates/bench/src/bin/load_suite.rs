//! Sustained-load benchmark for the TCP front-end (`ppe serve --listen`).
//!
//! Drives an in-process [`NetServer`] over loopback with N pipelined
//! client connections and a cold/warm/degrade traffic mix, and records
//! requests/second, *measured* client-side p50/p99 latency (every request
//! is individually timed; no histogram estimation), and the shed rate
//! into the `network` phase of `BENCH_server.json` — merged into the
//! file, so the `results`/`persistence`/`incremental` phases written by
//! `server_throughput` survive.
//!
//! Three measurements:
//!
//! 1. **In-process baseline**: the same warm workload through
//!    [`run_batch`] at jobs=4 — the no-network ceiling (`warm_mem_rps`).
//! 2. **Warm TCP**: 4 pipelined connections, every request a cache hit.
//!    The acceptance target is `warm_tcp_rps` within 2× of the
//!    in-process baseline (`tcp_over_mem ≥ 0.5`).
//! 3. **Mixed sustained load** at ≥2 connection counts (4 and 16): 90%
//!    warm repeats, 5% cold (distinct programs, each a real
//!    specialization), 5% deadline-bound degrade traffic. With
//!    `max_inflight = 4`, the 16-connection run oversubscribes the
//!    governor and the shed rate becomes visible.
//!
//! Latency under pipelining is time-in-pipeline (send to response, with
//! up to `WINDOW-1` requests queued ahead) — the honest client view of a
//! saturated service, which is exactly what a p99 under load should
//! describe. `PPE_BENCH_QUICK=1` shrinks the workload for CI smoke runs.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use ppe_server::{
    run_batch, BatchOptions, Json, NetOptions, NetServer, ServiceConfig, SpecializeRequest,
    SpecializeService,
};

const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
const SUM_TO: &str = "(define (sum-to x n) (if (= n 0) x (+ x (sum-to x (- n 1)))))";
const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
(define (dotprod a b n)
  (if (= n 0) 0.0
      (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

/// Outstanding pipelined requests per connection in the mixed phases —
/// also the pipeline depth bound on reported latency.
const WINDOW: usize = 16;

/// Window for the warm throughput phase: deeper pipelining amortizes
/// the client/server context switches that dominate on a single core.
const WARM_WINDOW: usize = 64;

/// Worker parallelism the governor admits before shedding (the `--jobs`
/// analog; also the baseline's batch parallelism).
const JOBS: u64 = 4;

fn quick() -> bool {
    std::env::var_os("PPE_BENCH_QUICK").is_some()
}

/// The twelve warm request shapes — the same mix `server_throughput`
/// uses, expressed as wire-protocol objects so the TCP phases and the
/// in-process baseline run byte-identical requests.
fn warm_templates() -> Vec<Json> {
    let mut templates = Vec::new();
    for n in [24, 32, 40, 48] {
        templates.push(Json::obj(vec![
            ("program", Json::str(POWER)),
            ("inputs", Json::str(format!("_ {n}"))),
            (
                "facets",
                Json::Arr(vec![Json::str("sign"), Json::str("parity")]),
            ),
        ]));
    }
    for n in [24, 32, 40, 48] {
        templates.push(Json::obj(vec![
            ("program", Json::str(SUM_TO)),
            ("inputs", Json::str(format!("_ {n}"))),
            ("facets", Json::Arr(vec![Json::str("sign")])),
            ("engine", Json::str("offline")),
        ]));
    }
    for n in [8, 12, 16, 20] {
        templates.push(Json::obj(vec![
            ("program", Json::str(IPROD)),
            ("inputs", Json::str(format!("_:size={n} _:size={n}"))),
            ("facets", Json::Arr(vec![Json::str("size")])),
        ]));
    }
    templates
}

/// One request line: a template plus an `id`.
fn with_id(template: &Json, id: u64) -> String {
    let mut v = template.clone();
    if let Json::Obj(map) = &mut v {
        map.insert("id".to_owned(), Json::num(id));
    }
    v.render()
}

/// A cold request: a program no other request ever names, so it is a
/// guaranteed cache miss and a real specialization.
fn cold_line(conn: usize, i: usize, id: u64) -> String {
    let program = format!(
        "(define (cold{conn}x{i} x n) (if (= n 0) {base} (* x (cold{conn}x{i} x (- n 1)))))",
        base = i + 1
    );
    Json::obj(vec![
        ("id", Json::num(id)),
        ("program", Json::str(program)),
        ("inputs", Json::str("_ 16")),
    ])
    .render()
}

/// A degrade request: an infinitely-unfolding program under a tight
/// deadline with `Degrade` — deterministic milliseconds of engine work
/// ending in a correct (generalized) residual. Distinct per call so the
/// cache never short-circuits it.
fn degrade_line(conn: usize, i: usize, id: u64) -> String {
    let program = format!("(define (spin{conn}x{i} x n) (spin{conn}x{i} x (+ n 1)))");
    Json::obj(vec![
        ("id", Json::num(id)),
        ("program", Json::str(program)),
        ("inputs", Json::str("_ 0")),
        ("deadline_ms", Json::num(2)),
        ("fuel", Json::num(1_000_000_000)),
        ("max_unfold_depth", Json::num(1_000_000_000)),
        ("max_specializations", Json::num(1_000_000_000)),
        ("on_exhaustion", Json::str("degrade")),
    ])
    .render()
}

/// What one load phase measured, merged over all client connections.
#[derive(Default)]
struct PhaseStats {
    latencies_us: Vec<u64>,
    shed: u64,
    errors: u64,
    requests: u64,
    elapsed_secs: f64,
}

impl PhaseStats {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed_secs
    }

    /// Exact quantile over the individually-measured latencies.
    fn quantile_us(&self, q: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.requests.max(1) as f64
    }
}

/// Drives `connections` pipelined clients, each sending `per_conn`
/// requests produced by `line(conn, i, id)`.
fn drive(
    addr: SocketAddr,
    connections: usize,
    per_conn: usize,
    window: usize,
    line: impl Fn(usize, usize, u64) -> String + Sync,
) -> PhaseStats {
    // Render every request line before the clock starts: the client
    // shares the single core with the server under test, so per-request
    // JSON-building would be charged against the measured throughput.
    let scripts: Vec<Vec<String>> = (0..connections)
        .map(|conn| {
            (0..per_conn)
                .map(|i| line(conn, i, (conn * per_conn + i) as u64))
                .collect()
        })
        .collect();
    let start = Instant::now();
    let per_thread: Vec<PhaseStats> = thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    // A pipelined window of multi-KB responses overflows the
                    // default 8 KiB buffer ~20 times per drain; size the
                    // reader so draining a burst costs one or two syscalls.
                    let mut reader = BufReader::with_capacity(
                        256 * 1024,
                        stream.try_clone().expect("clone stream"),
                    );
                    let mut writer = BufWriter::with_capacity(64 * 1024, stream);
                    let mut stats = PhaseStats::default();
                    let mut pending: VecDeque<Instant> = VecDeque::with_capacity(window);
                    let mut response = String::new();
                    let mut read_one = |pending: &mut VecDeque<Instant>, stats: &mut PhaseStats| {
                        response.clear();
                        let n = reader.read_line(&mut response).expect("read response");
                        assert!(n > 0, "server closed mid-phase");
                        let sent = pending.pop_front().expect("response without request");
                        stats
                            .latencies_us
                            .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                        // Both markers live in the response's sorted-key
                        // tail (`shed` < `stats` < `wall_us`; `ok:false`
                        // precedes the trailing `wall_us`), so a bounded
                        // suffix scan replaces two full scans of a
                        // multi-KB line.
                        let tail = &response[response.len().saturating_sub(400)..];
                        if tail.contains("\"shed\":true") {
                            stats.shed += 1;
                        }
                        if tail.contains("\"ok\":false") {
                            stats.errors += 1;
                        }
                        stats.requests += 1;
                    };
                    for request in script {
                        // Flush a burst and drain half the window at once:
                        // one send syscall per window/2 requests instead of
                        // one per request. Timestamps are taken at buffered-
                        // write time, so client-side queueing counts toward
                        // (never against) the reported latency.
                        if pending.len() >= window {
                            writer.flush().expect("flush burst");
                            for _ in 0..window / 2 {
                                read_one(&mut pending, &mut stats);
                            }
                        }
                        pending.push_back(Instant::now());
                        writer.write_all(request.as_bytes()).expect("send");
                        writer.write_all(b"\n").expect("send");
                    }
                    writer.flush().expect("flush tail");
                    while !pending.is_empty() {
                        read_one(&mut pending, &mut stats);
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let mut merged = PhaseStats {
        elapsed_secs: start.elapsed().as_secs_f64(),
        ..PhaseStats::default()
    };
    for s in per_thread {
        merged.latencies_us.extend(s.latencies_us);
        merged.shed += s.shed;
        merged.errors += s.errors;
        merged.requests += s.requests;
    }
    merged
}

fn phase_json(
    label: &str,
    connections: usize,
    stats: &PhaseStats,
    extra: Vec<(&str, Json)>,
) -> Json {
    println!(
        "{label:>5} conns={connections:>2}: {:>8.0} rps, p50 {:>5} us, p99 {:>6} us, shed {:>5.1}%, {} errors",
        stats.rps(),
        stats.quantile_us(0.50),
        stats.quantile_us(0.99),
        stats.shed_rate() * 100.0,
        stats.errors,
    );
    let mut fields = vec![
        ("connections", Json::num(connections as u64)),
        ("requests", Json::num(stats.requests)),
        ("rps", Json::Num(stats.rps())),
        ("p50_us", Json::num(stats.quantile_us(0.50))),
        ("p99_us", Json::num(stats.quantile_us(0.99))),
        ("shed_rate", Json::Num(stats.shed_rate())),
        ("errors", Json::num(stats.errors)),
    ];
    fields.extend(extra);
    Json::obj(fields)
}

fn main() {
    let warm = warm_templates();
    let (warm_per_conn, mixed_per_conn) = if quick() { (300, 100) } else { (8000, 2500) };

    // Phase 0 — in-process baseline: the warm workload through the batch
    // driver at jobs=4, service pre-warmed, no network anywhere.
    let baseline_requests: Vec<SpecializeRequest> = (0..warm.len() * 20)
        .map(|i| {
            let parsed = Json::parse(&with_id(&warm[i % warm.len()], i as u64)).expect("warm json");
            SpecializeRequest::from_json(&parsed).expect("warm request")
        })
        .collect();
    let baseline_service = SpecializeService::new(ServiceConfig::default());
    run_batch(
        &baseline_service,
        &baseline_requests,
        BatchOptions {
            jobs: JOBS as usize,
        },
    );
    let reps = if quick() { 5 } else { 50 };
    let start = Instant::now();
    for _ in 0..reps {
        for r in run_batch(
            &baseline_service,
            &baseline_requests,
            BatchOptions {
                jobs: JOBS as usize,
            },
        ) {
            assert!(r.outcome.is_ok(), "baseline request failed");
        }
    }
    let warm_mem_rps = (reps * baseline_requests.len()) as f64 / start.elapsed().as_secs_f64();
    println!("base  jobs={JOBS}: {warm_mem_rps:>8.0} rps in-process warm");

    // The server under test: ephemeral loopback port, governor at
    // max_inflight = JOBS, drained at the end via an admin connection.
    let server = Arc::new(NetServer::bind("127.0.0.1:0").expect("bind loopback"));
    let addr = server.local_addr();
    let server_thread = {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            let service = SpecializeService::new(ServiceConfig::default());
            server
                .run(
                    &service,
                    NetOptions {
                        max_connections: 64,
                        max_inflight: JOBS,
                        ..NetOptions::default()
                    },
                )
                .expect("server run")
        })
    };

    // Pre-warm the server's cache over the wire so the warm phase
    // measures hits, not first-touch specializations.
    let warmup = drive(addr, 1, warm.len(), 1, |_, i, id| with_id(&warm[i], id));
    assert_eq!(warmup.errors, 0, "warm-up requests failed");

    // Phase 1 — warm TCP at jobs-many connections: the 2× target.
    let warm_stats = drive(
        addr,
        JOBS as usize,
        warm_per_conn,
        WARM_WINDOW,
        |_, i, id| with_id(&warm[i % warm.len()], id),
    );
    assert_eq!(warm_stats.errors, 0, "warm phase saw errors");
    let tcp_over_mem = warm_stats.rps() / warm_mem_rps;
    let warm_json = phase_json("warm", JOBS as usize, &warm_stats, vec![]);
    println!(
        "warm TCP vs in-process: {:.2}x (target ≥ 0.5)",
        tcp_over_mem
    );
    if !quick() && tcp_over_mem < 0.5 {
        println!("WARNING: warm TCP throughput fell below half the in-process baseline");
    }

    // Phase 2 — sustained mixed load at two connection counts. Every
    // 20th request is cold (fresh program), every 20th+10 is a
    // deadline-bound degrade; the rest are warm repeats.
    let mixed_line = |conn: usize, i: usize, id: u64| -> String {
        if i.is_multiple_of(20) {
            cold_line(conn, i, id)
        } else if i % 20 == 10 {
            degrade_line(conn, i, id)
        } else {
            with_id(&warm[i % warm.len()], id)
        }
    };
    let mut mixed_json = Vec::new();
    for connections in [4usize, 16] {
        let stats = drive(addr, connections, mixed_per_conn, WINDOW, mixed_line);
        assert_eq!(stats.errors, 0, "mixed phase saw errors");
        mixed_json.push(phase_json(
            "mixed",
            connections,
            &stats,
            vec![
                ("cold_fraction", Json::Num(0.05)),
                ("degrade_fraction", Json::Num(0.05)),
            ],
        ));
    }

    // Graceful shutdown: ack must arrive, then the server thread joins.
    let admin = TcpStream::connect(addr).expect("admin connect");
    admin.set_nodelay(true).expect("nodelay");
    let mut admin_reader = BufReader::new(admin.try_clone().expect("clone admin"));
    let mut admin_writer = admin;
    admin_writer
        .write_all(b"{\"cmd\":\"shutdown\"}\n")
        .expect("send shutdown");
    let mut ack = String::new();
    admin_reader.read_line(&mut ack).expect("shutdown ack");
    assert!(ack.contains("\"shutdown\":true"), "bad shutdown ack: {ack}");
    let summary = server_thread.join().expect("server thread");
    println!(
        "server summary: {} connections ({} refused), {} requests, {} errors",
        summary.connections, summary.refused, summary.requests, summary.errors
    );

    let network = Json::obj(vec![
        ("jobs", Json::num(JOBS)),
        ("warm_mem_rps", Json::Num(warm_mem_rps)),
        ("warm_tcp_rps", Json::Num(warm_stats.rps())),
        ("tcp_over_mem", Json::Num(tcp_over_mem)),
        ("window", Json::num(WARM_WINDOW as u64)),
        ("mixed_window", Json::num(WINDOW as u64)),
        ("warm", warm_json),
        ("mixed", Json::Arr(mixed_json)),
    ]);

    // Merge into BENCH_server.json: replace only the `network` key so the
    // phases written by `server_throughput` survive (and vice versa).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    let mut report = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| Json::parse(text.trim()).ok())
        .unwrap_or_else(|| Json::obj(vec![("benchmark", Json::str("server_throughput"))]));
    if let Json::Obj(map) = &mut report {
        map.insert("network".to_owned(), network);
    }
    std::fs::write(out, report.render() + "\n").expect("write BENCH_server.json");
    println!("wrote {out}");
}
