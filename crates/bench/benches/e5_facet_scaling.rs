//! E5 — Section 4.2 (products of facets): the cost of carrying more
//! facets in the product. The same specialization is run with 0–4 facets
//! installed; every closed/open product operator fans out over all of
//! them, so specialization time grows with the product width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppe_bench::{deep_config, facet_set_of_width, SIGN_KERNEL};
use ppe_lang::Value;
use ppe_online::{OnlinePe, PeInput};
use std::hint::black_box;

fn bench_e5(c: &mut Criterion) {
    let program = ppe_bench::program(SIGN_KERNEL);
    let config = deep_config(48);
    let mut group = c.benchmark_group("e5_facet_scaling");
    for width in 0..=4usize {
        let facets = facet_set_of_width(width);
        let inputs = [PeInput::dynamic(), PeInput::known(Value::Int(48))];
        group.bench_with_input(BenchmarkId::new("facets", width), &width, |b, _| {
            let pe = OnlinePe::with_config(&program, &facets, config.clone());
            b.iter(|| black_box(pe.specialize_main(black_box(&inputs)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
