//! E4 — Definition 7 / Section 2: the parameterized evaluator restricted
//! to the partial evaluation facet computes the same residuals as the
//! conventional simple partial evaluator of Figure 2. This bench
//! quantifies what that generality costs: simple PE vs parameterized PE
//! with an empty facet set, on the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppe_bench::{deep_config, POWER, SIGN_KERNEL};
use ppe_core::FacetSet;
use ppe_lang::{pretty_program, Const, Value};
use ppe_online::{OnlinePe, PeInput, SimpleInput, SimplePe};
use std::hint::black_box;

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_pe_facet_overhead");
    let cases: [(&str, &str, i64); 2] = [("power", POWER, 64), ("kernel", SIGN_KERNEL, 64)];
    for (name, src, n) in cases {
        let program = ppe_bench::program(src);
        let facets = FacetSet::new();
        let config = deep_config(n as u32);
        let online_inputs = [PeInput::dynamic(), PeInput::known(Value::Int(n))];
        let simple_inputs = [SimpleInput::Dynamic, SimpleInput::Known(Const::Int(n))];

        // The two must produce identical residual programs.
        let a = OnlinePe::with_config(&program, &facets, config.clone())
            .specialize_main(&online_inputs)
            .unwrap();
        let b = SimplePe::with_config(&program, config.clone())
            .specialize_main(&simple_inputs)
            .unwrap();
        assert_eq!(pretty_program(&a.program), pretty_program(&b.program));

        group.bench_with_input(BenchmarkId::new("simple_pe", name), &n, |bch, _| {
            let pe = SimplePe::with_config(&program, config.clone());
            bch.iter(|| black_box(pe.specialize_main(black_box(&simple_inputs)).unwrap()));
        });
        group.bench_with_input(
            BenchmarkId::new("parameterized_pe_facet_only", name),
            &n,
            |bch, _| {
                let pe = OnlinePe::with_config(&program, &facets, config.clone());
                bch.iter(|| black_box(pe.specialize_main(black_box(&online_inputs)).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
