//! E9 — hash-consed terms. Measures the interner on deep self-similar
//! programs: a balanced expression whose two halves are identical at every
//! level has `2^d` tree nodes but only `O(d)` distinct subterms, so
//! interning collapses it to a handle chain. Three effects are isolated:
//!
//! - **warm interning**: re-interning an already-canonical structure is a
//!   fingerprint lookup per node actually visited;
//! - **cold interning**: a never-seen structure (every iteration varies a
//!   leaf constant) pays one shard insertion per distinct subterm;
//! - **O(1) equality**: comparing two interned handles of the same deep
//!   structure is a pointer comparison, where tree equality walks `2^d`
//!   nodes — this is what the specialization caches key on.
//!
//! `PPE_BENCH_QUICK=1` shrinks the depth sweep for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppe_lang::{optimize_program, Expr, OptLevel, Prim, Program, Term};
use std::hint::black_box;

/// A balanced self-similar expression of the given depth: each level is
/// `(+ sub sub)` over the *same* subtree, bottoming out at `(* x seed)`.
fn self_similar(depth: usize, seed: i64) -> Expr {
    let mut e = Expr::prim(Prim::Mul, vec![Expr::var("x"), Expr::int(seed)]);
    for _ in 0..depth {
        e = Expr::prim(Prim::Add, vec![e.clone(), e]);
    }
    e
}

/// Wraps the expression in a one-function program for the optimizer pass.
fn self_similar_program(depth: usize, seed: i64) -> Program {
    use ppe_lang::parse_program;
    // Parse a trivial shell, then swap in the deep body so the program
    // carries a real definition table.
    let shell = parse_program("(define (f x) x)").unwrap();
    let mut defs: Vec<_> = shell.defs().to_vec();
    defs[0].body = self_similar(depth, seed);
    Program::new(defs).unwrap()
}

fn depths() -> Vec<usize> {
    if std::env::var_os("PPE_BENCH_QUICK").is_some() {
        vec![10]
    } else {
        vec![10, 14, 18]
    }
}

fn bench_e9(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_hash_consing");
    for depth in depths() {
        let tree = self_similar(depth, 7);

        // Warm: the structure is already canonical; every intern is a hit.
        let _prime = Term::from_expr(&tree);
        group.bench_with_input(BenchmarkId::new("intern_warm", depth), &depth, |b, _| {
            b.iter(|| black_box(Term::from_expr(black_box(&tree))));
        });

        // Cold: a fresh leaf constant every iteration makes every level of
        // the spine a new node (the leaf change propagates to the root).
        let mut seed = 1_000_000i64;
        group.bench_with_input(BenchmarkId::new("intern_cold", depth), &depth, |b, _| {
            b.iter(|| {
                seed += 1;
                black_box(Term::from_expr(black_box(&self_similar(depth, seed))))
            });
        });

        // Handle equality vs tree equality on the same deep structure.
        let a = Term::from_expr(&tree);
        let b2 = Term::from_expr(&tree);
        group.bench_with_input(BenchmarkId::new("eq_interned", depth), &depth, |b, _| {
            b.iter(|| black_box(black_box(&a) == black_box(&b2)));
        });
        let ta = tree.clone();
        let tb = tree.clone();
        group.bench_with_input(BenchmarkId::new("eq_tree", depth), &depth, |b, _| {
            b.iter(|| black_box(black_box(&ta) == black_box(&tb)));
        });

        // The optimizer runs over interned terms: the post-specialization
        // cleanup pass every server/CLI residual goes through.
        let program = self_similar_program(depth, 7);
        group.bench_with_input(BenchmarkId::new("optimize", depth), &depth, |b, _| {
            b.iter(|| black_box(optimize_program(black_box(&program), OptLevel::Safe)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
