//! E3 — the paper's Sections 1/5 claim: online parameterized partial
//! evaluation "is computationally expensive" because every decision is
//! re-made while processing (notably recursive functions), while the
//! offline split pays for facet analysis once and keeps specialization
//! simple.
//!
//! Measured as a sweep over the number of specializations performed with
//! the same binding-time division: `k` specializations of the
//! inner-product program at different sizes, comparing
//!
//! - `online×k` — the online evaluator run `k` times;
//! - `analysis+offline×k` — one facet analysis plus `k` annotation-driven
//!   specializations (the offline architecture);
//!
//! the crossover in favour of offline as `k` grows is the paper's
//! amortization argument made concrete.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppe_bench::{deep_config, iprod_analysis, size_facets, sized_inputs, INNER_PRODUCT};
use ppe_offline::OfflinePe;
use ppe_online::OnlinePe;
use std::hint::black_box;

fn bench_e3(c: &mut Criterion) {
    let program = ppe_bench::program(INNER_PRODUCT);
    let facets = size_facets();
    let config = deep_config(64);

    let mut group = c.benchmark_group("e3_online_vs_offline");
    for k in [1usize, 4, 16, 64] {
        let sizes: Vec<i64> = (0..k).map(|i| 2 + (i as i64 % 31)).collect();

        group.bench_with_input(BenchmarkId::new("online_times_k", k), &k, |b, _| {
            let pe = OnlinePe::with_config(&program, &facets, config.clone());
            b.iter(|| {
                for &n in &sizes {
                    black_box(pe.specialize_main(&sized_inputs(n)).unwrap());
                }
            });
        });

        group.bench_with_input(
            BenchmarkId::new("analysis_plus_offline_times_k", k),
            &k,
            |b, _| {
                b.iter(|| {
                    let analysis = iprod_analysis(&program, &facets);
                    let pe = OfflinePe::with_config(&program, &facets, &analysis, config.clone());
                    for &n in &sizes {
                        black_box(pe.specialize(&sized_inputs(n)).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
