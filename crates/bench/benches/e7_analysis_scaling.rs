//! E7 — Section 5.4: facet analysis is a fixpoint iteration over
//! finite-height signature domains. Measures how it scales with program
//! size (call-chain length) and with the number of facets in the product
//! of abstract facets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppe_bench::{chain_program, facet_set_of_width};
use ppe_offline::{analyze, AbstractInput};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_analysis_scaling");
    for k in [4usize, 16, 64, 128] {
        let program = chain_program(k);
        for width in [0usize, 2, 4] {
            let facets = facet_set_of_width(width);
            let inputs = [AbstractInput::dynamic(), AbstractInput::static_()];
            group.bench_with_input(
                BenchmarkId::new(format!("facets_{width}"), k),
                &k,
                |b, _| {
                    b.iter(|| black_box(analyze(&program, &facets, black_box(&inputs)).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
