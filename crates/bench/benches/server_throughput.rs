//! Server throughput: requests/second through `ppe-server`'s batch
//! driver at 1, 4, and 8 workers, cold cache versus warm.
//!
//! The workload is a batch of 240 requests over 12 distinct cache keys
//! (each key repeated 20×, i.e. 95% repeats — well past the ≥50% mark a
//! specialization service sees in practice when builds re-specialize the
//! same kernels). *Cold* answers the batch on a fresh service, so every
//! distinct key pays one full specialization; *warm* answers the same
//! batch again on the now-populated service, so everything is a cache
//! hit. The gap is the service's reason to exist.
//!
//! Not a criterion bench: the measurement is whole-batch wall time, and
//! the result is written to `BENCH_server.json` at the workspace root for
//! the CI acceptance check (warm ≥ 2× cold).

use std::time::Instant;

use ppe_server::{
    run_batch, BatchOptions, Engine, Json, ServiceConfig, SpecializeRequest, SpecializeService,
};

const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
const SUM_TO: &str = "(define (sum-to x n) (if (= n 0) x (+ x (sum-to x (- n 1)))))";
const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
(define (dotprod a b n)
  (if (= n 0) 0.0
      (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

const REPEATS_PER_KEY: usize = 20;

/// Twelve distinct request shapes: three programs × four parameters,
/// online and offline engines mixed in.
fn distinct_requests() -> Vec<SpecializeRequest> {
    let mut distinct = Vec::new();
    for n in [24, 32, 40, 48] {
        let mut req = SpecializeRequest::new(POWER, vec!["_".into(), n.to_string()]);
        req.facets = vec!["sign".into(), "parity".into()];
        distinct.push(req);
    }
    for n in [24, 32, 40, 48] {
        let mut req = SpecializeRequest::new(SUM_TO, vec!["_".into(), n.to_string()]);
        req.facets = vec!["sign".into()];
        req.engine = Engine::Offline;
        distinct.push(req);
    }
    for n in [8, 12, 16, 20] {
        let mut req =
            SpecializeRequest::new(IPROD, vec![format!("_:size={n}"), format!("_:size={n}")]);
        req.facets = vec!["size".into()];
        distinct.push(req);
    }
    distinct
}

fn workload() -> Vec<SpecializeRequest> {
    let distinct = distinct_requests();
    let total = distinct.len() * REPEATS_PER_KEY;
    (0..total)
        .map(|i| distinct[i % distinct.len()].clone())
        .collect()
}

fn run_once(service: &SpecializeService, requests: &[SpecializeRequest], jobs: usize) -> f64 {
    let start = Instant::now();
    let responses = run_batch(service, requests, BatchOptions { jobs });
    let secs = start.elapsed().as_secs_f64();
    for (i, r) in responses.iter().enumerate() {
        if let Err(e) = &r.outcome {
            panic!("request {i} failed: {e}");
        }
    }
    requests.len() as f64 / secs
}

fn main() {
    let requests = workload();
    let distinct = distinct_requests().len();
    let repeat_fraction = 1.0 - distinct as f64 / requests.len() as f64;

    let mut results = Vec::new();
    for jobs in [1usize, 4, 8] {
        let service = SpecializeService::new(ServiceConfig::default());
        let cold_rps = run_once(&service, &requests, jobs);
        assert_eq!(
            service.metrics().snapshot().cache_misses as usize,
            distinct,
            "cold run computes each distinct key exactly once"
        );
        let warm_rps = run_once(&service, &requests, jobs);
        let speedup = warm_rps / cold_rps;
        println!("jobs={jobs}: cold {cold_rps:>9.0} rps, warm {warm_rps:>9.0} rps ({speedup:.1}x)");
        results.push(Json::obj(vec![
            ("jobs", Json::num(jobs as u64)),
            ("cold_rps", Json::Num(cold_rps)),
            ("warm_rps", Json::Num(warm_rps)),
            ("warm_over_cold", Json::Num(speedup)),
        ]));
    }

    let report = Json::obj(vec![
        ("benchmark", Json::str("server_throughput")),
        ("requests", Json::num(requests.len() as u64)),
        ("distinct_keys", Json::num(distinct as u64)),
        ("repeat_fraction", Json::Num(repeat_fraction)),
        ("results", Json::Arr(results)),
    ]);

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(out, report.render() + "\n").expect("write BENCH_server.json");
    println!("wrote {out}");
}
