//! Server throughput: requests/second through `ppe-server`'s batch
//! driver at 1, 4, and 8 workers, cold cache versus warm.
//!
//! The workload is a batch of 240 requests over 12 distinct cache keys
//! (each key repeated 20×, i.e. 95% repeats — well past the ≥50% mark a
//! specialization service sees in practice when builds re-specialize the
//! same kernels). *Cold* answers the batch on a fresh service, so every
//! distinct key pays one full specialization; *warm* answers the same
//! batch again on the now-populated service, so everything is a cache
//! hit. The gap is the service's reason to exist.
//!
//! A second phase measures the disk persistence tier: the same batch
//! cold (populating a scratch `--cache-dir`), then on a *fresh* service
//! over that directory (every distinct key warm **from disk**), then once
//! more on the now-promoted in-memory cache. Warm-from-disk sits between
//! cold and in-memory-warm: a restart costs a file read per key, not a
//! re-specialization.
//!
//! A third phase measures *incremental re-specialization*: a program
//! with twelve independent entry points is specialized cold (persisting
//! every key), warm from disk on a fresh service, and then — after
//! editing exactly one definition — once more on the same, now
//! memory-warm service. Because cache keys are the entry's *closure*
//! fingerprint (DESIGN.md §17), the edit invalidates one key and leaves
//! the other eleven warm in memory, so the incremental rerun beats even
//! the full warm-from-disk restart.
//!
//! Not a criterion bench: the measurement is whole-batch wall time, and
//! the result is written to `BENCH_server.json` at the workspace root for
//! the CI acceptance check (warm ≥ 2× cold). `PPE_BENCH_QUICK=1` shrinks
//! the workload for CI smoke runs.

use std::time::Instant;

use ppe_server::{
    run_batch, BatchOptions, Engine, Json, PersistConfig, ServiceConfig, SpecializeRequest,
    SpecializeService,
};

const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
const SUM_TO: &str = "(define (sum-to x n) (if (= n 0) x (+ x (sum-to x (- n 1)))))";
const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
(define (dotprod a b n)
  (if (= n 0) 0.0
      (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

const REPEATS_PER_KEY: usize = 20;

fn repeats_per_key() -> usize {
    if std::env::var_os("PPE_BENCH_QUICK").is_some() {
        3
    } else {
        REPEATS_PER_KEY
    }
}

/// Twelve distinct request shapes: three programs × four parameters,
/// online and offline engines mixed in.
fn distinct_requests() -> Vec<SpecializeRequest> {
    let mut distinct = Vec::new();
    for n in [24, 32, 40, 48] {
        let mut req = SpecializeRequest::new(POWER, vec!["_".into(), n.to_string()]);
        req.facets = vec!["sign".into(), "parity".into()];
        distinct.push(req);
    }
    for n in [24, 32, 40, 48] {
        let mut req = SpecializeRequest::new(SUM_TO, vec!["_".into(), n.to_string()]);
        req.facets = vec!["sign".into()];
        req.engine = Engine::Offline;
        distinct.push(req);
    }
    for n in [8, 12, 16, 20] {
        let mut req =
            SpecializeRequest::new(IPROD, vec![format!("_:size={n}"), format!("_:size={n}")]);
        req.facets = vec!["size".into()];
        distinct.push(req);
    }
    distinct
}

fn workload() -> Vec<SpecializeRequest> {
    let distinct = distinct_requests();
    let total = distinct.len() * repeats_per_key();
    (0..total)
        .map(|i| distinct[i % distinct.len()].clone())
        .collect()
}

fn run_once(service: &SpecializeService, requests: &[SpecializeRequest], jobs: usize) -> f64 {
    let start = Instant::now();
    let responses = run_batch(service, requests, BatchOptions { jobs });
    let secs = start.elapsed().as_secs_f64();
    for (i, r) in responses.iter().enumerate() {
        if let Err(e) = &r.outcome {
            panic!("request {i} failed: {e}");
        }
    }
    requests.len() as f64 / secs
}

/// Entry points for the incremental phase: twelve independent,
/// deliberately cheap self-recursive definitions, so that the single
/// recompute after an edit does not swamp the eleven preserved hits.
const INCR_DEFS: usize = 12;

/// The shared source for the incremental phase; `leaf_base` is the base
/// case of `e0` only, so bumping it is the "edit one definition" event.
fn incr_program(leaf_base: i64) -> String {
    (0..INCR_DEFS)
        .map(|k| {
            let base = if k == 0 { leaf_base } else { 1 };
            format!(
                "(define (e{k} x n) (if (= n 0) {base} (* x (e{k} x (- n 1)))))
"
            )
        })
        .collect()
}

/// The incremental workload: each entry requested by name with a small
/// static depth, repeated like the main workload.
fn incr_requests(src: &str) -> Vec<SpecializeRequest> {
    let distinct: Vec<SpecializeRequest> = (0..INCR_DEFS)
        .map(|k| {
            let mut req = SpecializeRequest::new(src, vec!["_".into(), (6 + k).to_string()]);
            req.function = Some(format!("e{k}"));
            req
        })
        .collect();
    let total = INCR_DEFS * repeats_per_key();
    (0..total)
        .map(|i| distinct[i % INCR_DEFS].clone())
        .collect()
}

fn main() {
    let requests = workload();
    let distinct = distinct_requests().len();
    let repeat_fraction = 1.0 - distinct as f64 / requests.len() as f64;

    let mut results = Vec::new();
    for jobs in [1usize, 4, 8] {
        let service = SpecializeService::new(ServiceConfig::default());
        let cold_rps = run_once(&service, &requests, jobs);
        assert_eq!(
            service.metrics().snapshot().cache_misses as usize,
            distinct,
            "cold run computes each distinct key exactly once"
        );
        let warm_rps = run_once(&service, &requests, jobs);
        let speedup = warm_rps / cold_rps;
        println!("jobs={jobs}: cold {cold_rps:>9.0} rps, warm {warm_rps:>9.0} rps ({speedup:.1}x)");
        results.push(Json::obj(vec![
            ("jobs", Json::num(jobs as u64)),
            ("cold_rps", Json::Num(cold_rps)),
            ("warm_rps", Json::Num(warm_rps)),
            ("warm_over_cold", Json::Num(speedup)),
        ]));
    }

    // Persistence phase: cold (populates the disk), warm from disk on a
    // fresh service (empty memory, full directory), then in-memory warm.
    let cache_dir = std::env::temp_dir().join(format!("ppe-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let persisted = || ServiceConfig {
        persist: Some(PersistConfig::new(&cache_dir)),
        ..ServiceConfig::default()
    };
    let jobs = 4usize;
    let service = SpecializeService::new(persisted());
    let cold_rps = run_once(&service, &requests, jobs);
    assert_eq!(
        service.metrics().snapshot().disk_stores as usize,
        distinct,
        "cold run persists each distinct key exactly once"
    );
    let service = SpecializeService::new(persisted());
    let warm_disk_rps = run_once(&service, &requests, jobs);
    assert_eq!(
        service.metrics().snapshot().disk_hits as usize,
        distinct,
        "restart answers every distinct key from disk"
    );
    let warm_mem_rps = run_once(&service, &requests, jobs);
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!(
        "disk  jobs={jobs}: cold {cold_rps:>9.0} rps, warm-from-disk {warm_disk_rps:>9.0} rps \
         ({:.1}x), in-memory-warm {warm_mem_rps:>9.0} rps",
        warm_disk_rps / cold_rps
    );
    let persistence = Json::obj(vec![
        ("cold_rps", Json::Num(cold_rps)),
        ("jobs", Json::num(jobs as u64)),
        ("warm_disk_over_cold", Json::Num(warm_disk_rps / cold_rps)),
        ("warm_disk_rps", Json::Num(warm_disk_rps)),
        ("warm_mem_rps", Json::Num(warm_mem_rps)),
    ]);

    // Incremental phase: cold (persist all twelve entries), warm from
    // disk on a fresh service, then the edited program on that same
    // service — eleven entries stay warm in memory, one recomputes.
    let incr_dir = std::env::temp_dir().join(format!("ppe-bench-incr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&incr_dir);
    let persisted_incr = || ServiceConfig {
        persist: Some(PersistConfig::new(&incr_dir)),
        ..ServiceConfig::default()
    };
    let base_reqs = incr_requests(&incr_program(1));
    let edited_reqs = incr_requests(&incr_program(2));
    let service = SpecializeService::new(persisted_incr());
    let incr_cold_rps = run_once(&service, &base_reqs, jobs);
    assert_eq!(
        service.metrics().snapshot().disk_stores as usize,
        INCR_DEFS,
        "cold run persists each entry point exactly once"
    );
    let service = SpecializeService::new(persisted_incr());
    let incr_warm_disk_rps = run_once(&service, &base_reqs, jobs);
    assert_eq!(
        service.metrics().snapshot().disk_hits as usize,
        INCR_DEFS,
        "restart answers every entry point from disk"
    );
    let before = service.metrics().snapshot();
    let incremental_rps = run_once(&service, &edited_reqs, jobs);
    let after = service.metrics().snapshot();
    let _ = std::fs::remove_dir_all(&incr_dir);
    assert_eq!(
        after.cache_misses - before.cache_misses,
        1,
        "exactly the edited entry recomputes; closure keying preserves the rest"
    );
    assert_eq!(
        after.depgraph_invalidations - before.depgraph_invalidations,
        1,
        "exactly one entry's closure fingerprint changed"
    );
    println!(
        "incr  jobs={jobs}: cold {incr_cold_rps:>9.0} rps, warm-from-disk          {incr_warm_disk_rps:>9.0} rps, incremental {incremental_rps:>9.0} rps          ({:.2}x warm-from-disk)",
        incremental_rps / incr_warm_disk_rps
    );
    let incremental = Json::obj(vec![
        ("cold_rps", Json::Num(incr_cold_rps)),
        (
            "incremental_over_warm_disk",
            Json::Num(incremental_rps / incr_warm_disk_rps),
        ),
        ("incremental_rps", Json::Num(incremental_rps)),
        ("jobs", Json::num(jobs as u64)),
        (
            "untouched_fraction",
            Json::Num((INCR_DEFS - 1) as f64 / INCR_DEFS as f64),
        ),
        ("warm_disk_rps", Json::Num(incr_warm_disk_rps)),
    ]);

    let mut report = Json::obj(vec![
        ("benchmark", Json::str("server_throughput")),
        ("requests", Json::num(requests.len() as u64)),
        ("distinct_keys", Json::num(distinct as u64)),
        ("repeat_fraction", Json::Num(repeat_fraction)),
        ("results", Json::Arr(results)),
        ("persistence", persistence),
        ("incremental", incremental),
    ]);

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    // The `network` phase is owned by the `load_suite` bin; keep it so the
    // two benchmarks can refresh the report independently.
    if let Some(network) = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| Json::parse(text.trim()).ok())
        .and_then(|prev| prev.get("network").cloned())
    {
        if let Json::Obj(map) = &mut report {
            map.insert("network".to_owned(), network);
        }
    }
    std::fs::write(out, report.render() + "\n").expect("write BENCH_server.json");
    println!("wrote {out}");
}
