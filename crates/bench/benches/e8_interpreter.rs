//! E8 — interpreter specialization (first Futamura projection) via the
//! Contents facet: specializing a bytecode interpreter with respect to a
//! statically known program removes all dispatch. Measures interpretation
//! vs the "compiled" residual across bytecode sizes, plus the
//! specialization cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppe_bench::{deep_config, interpreter_program, linear_bytecode};
use ppe_core::facets::ContentsFacet;
use ppe_core::FacetSet;
use ppe_lang::{Evaluator, Value};
use ppe_online::{OnlinePe, PeInput};
use std::hint::black_box;

fn bench_e8(c: &mut Criterion) {
    let program = interpreter_program();
    let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);

    let mut group = c.benchmark_group("e8_interpreter");
    for ops in [4usize, 16, 64] {
        let code = linear_bytecode(ops);
        let config = deep_config(4 * ops as u32 + 32);
        let residual = OnlinePe::with_config(&program, &facets, config.clone())
            .specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])
            .expect("interpreter specializes");
        // Dispatch must be gone.
        assert!(!ppe_lang::pretty_program(&residual.program).contains("exec"));

        group.bench_with_input(BenchmarkId::new("interpreted", ops), &ops, |b, _| {
            let mut ev = Evaluator::new(&program);
            ev.set_max_depth(10_000);
            b.iter(|| black_box(ev.run_main(&[code.clone(), Value::Int(1)]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("compiled", ops), &ops, |b, _| {
            let mut ev = Evaluator::new(&residual.program);
            ev.set_max_depth(10_000);
            b.iter(|| black_box(ev.run_main(&[Value::Int(1)]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("compiled_vm", ops), &ops, |b, _| {
            let compiled = ppe_vm::compile(&residual.program).expect("residual compiles");
            let mut vm = ppe_vm::Vm::new();
            b.iter(|| black_box(vm.run_main(&compiled, &[Value::Int(1)]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("specialize", ops), &ops, |b, _| {
            let pe = OnlinePe::with_config(&program, &facets, config.clone());
            b.iter(|| {
                black_box(
                    pe.specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
