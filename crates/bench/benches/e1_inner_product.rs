//! E1 — Figures 7/8: specializing the inner-product program with respect
//! to vector size, across sizes, online and offline.
//!
//! Regenerates the Figure 8 residual at every size (asserted) and
//! measures what the paper discusses qualitatively: the cost of the
//! online specialization versus the offline specialization (analysis
//! amortized) that produces the same residual.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppe_bench::{deep_config, iprod_analysis, size_facets, sized_inputs, INNER_PRODUCT};
use ppe_lang::pretty_program;
use ppe_offline::OfflinePe;
use ppe_online::OnlinePe;
use std::hint::black_box;

fn bench_e1(c: &mut Criterion) {
    let program = ppe_bench::program(INNER_PRODUCT);
    let facets = size_facets();
    let analysis = iprod_analysis(&program, &facets);

    let mut group = c.benchmark_group("e1_inner_product");
    for n in [2i64, 4, 8, 16, 32] {
        let inputs = sized_inputs(n);
        let config = deep_config(n as u32);

        // Sanity: both pipelines produce the unrolled Figure 8 shape.
        let online = OnlinePe::with_config(&program, &facets, config.clone())
            .specialize_main(&inputs)
            .expect("online specialization");
        let offline = OfflinePe::with_config(&program, &facets, &analysis, config.clone())
            .specialize(&inputs)
            .expect("offline specialization");
        assert_eq!(
            pretty_program(&online.program),
            pretty_program(&offline.program)
        );
        assert_eq!(online.program.defs().len(), 1, "fully unrolled at n={n}");

        group.bench_with_input(BenchmarkId::new("online", n), &n, |b, _| {
            let pe = OnlinePe::with_config(&program, &facets, config.clone());
            b.iter(|| black_box(pe.specialize_main(black_box(&inputs)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("offline_spec", n), &n, |b, _| {
            let pe = OfflinePe::with_config(&program, &facets, &analysis, config.clone());
            b.iter(|| black_box(pe.specialize(black_box(&inputs)).unwrap()));
        });
    }
    // The one-off analysis cost that the offline pipeline amortizes.
    group.bench_function("facet_analysis_once", |b| {
        b.iter(|| black_box(iprod_analysis(&program, &facets)));
    });
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
