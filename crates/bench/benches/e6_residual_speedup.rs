//! E6 — the point of Figure 8: the specialized inner product beats the
//! general one. Measures `eval(iprod, a, b)` against
//! `eval(iprod_n, a, b)` across sizes — the speedup series implied by the
//! paper's example (loop test, recursion, and `vsize` all vanish).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppe_bench::{deep_config, random_vector, size_facets, sized_inputs, INNER_PRODUCT};
use ppe_lang::Evaluator;
use ppe_online::OnlinePe;
use std::hint::black_box;

fn bench_e6(c: &mut Criterion) {
    let program = ppe_bench::program(INNER_PRODUCT);
    let facets = size_facets();
    let mut group = c.benchmark_group("e6_residual_speedup");
    for n in [4usize, 16, 64, 128] {
        let residual = OnlinePe::with_config(&program, &facets, deep_config(n as u32))
            .specialize_main(&sized_inputs(n as i64))
            .expect("specialization");
        let a = random_vector(n, 1);
        let b = random_vector(n, 2);

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("source", n), &n, |bch, _| {
            let mut ev = Evaluator::new(&program);
            ev.set_max_depth(10_000);
            bch.iter(|| black_box(ev.run_main(&[a.clone(), b.clone()]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("residual", n), &n, |bch, _| {
            let mut ev = Evaluator::new(&residual.program);
            ev.set_max_depth(10_000);
            bch.iter(|| black_box(ev.run_main(&[a.clone(), b.clone()]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("residual_vm", n), &n, |bch, _| {
            let compiled = ppe_vm::compile(&residual.program).expect("residual compiles");
            let mut vm = ppe_vm::Vm::new();
            bch.iter(|| black_box(vm.run_main(&compiled, &[a.clone(), b.clone()]).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
