//! Polyvariant facet analysis — computing the abstract function
//! environment `ζ` of Figure 4 precisely.
//!
//! Figure 4's `Ẽ` appeals to `ζ[f]`, the abstract denotation of `f`,
//! but its signature collection `Ã` is monovariant: every call site's
//! arguments are joined into one signature per function, which loses
//! facet information whenever call sites disagree (see
//! `examples/sign_analysis.rs` for a visible case). This module computes
//! `ζ` as a *minimal function graph*: one entry per `(function, abstract
//! argument tuple)` actually demanded, iterated to a local fixpoint —
//! strictly more precise than [`crate::analyze`], at the cost of possibly
//! many variants per function.
//!
//! Termination: variants are bounded per function
//! ([`MAX_VARIANTS_PER_FN`]); past the bound the analysis generalizes the
//! arguments to the fully dynamic tuple (sound, and guaranteed to be a
//! single extra variant).

use std::collections::HashMap;

use ppe_core::{AbstractFacetSet, AbstractProductVal, FacetSet};
use ppe_lang::{Expr, Program, Symbol};
use ppe_online::{DegradationReport, Governor, PeConfig};

use crate::analysis::AbstractInput;
use crate::error::OfflineError;
use crate::signature::FacetSignature;

/// Per-function cap on analyzed argument tuples before generalizing.
pub const MAX_VARIANTS_PER_FN: usize = 64;

/// Iteration cap for each variant's local fixpoint.
const MAX_LOCAL_ITERATIONS: usize = 128;

/// The result of polyvariant facet analysis: every demanded variant of
/// every function, with its result.
#[derive(Debug)]
pub struct PolyAnalysis {
    /// `(function, abstract argument tuple) → abstract result` — the
    /// minimal function graph of `ζ`.
    pub variants: HashMap<(Symbol, Vec<AbstractProductVal>), AbstractProductVal>,
    /// The entry function's result.
    pub result: AbstractProductVal,
    /// Budgets that tripped during the analysis (the wall-clock deadline
    /// under `ExhaustionPolicy::Degrade`, which collapses new demands onto
    /// the fully dynamic variant). Empty on a within-budget run.
    pub degradation: DegradationReport,
}

impl PolyAnalysis {
    /// All variants of one function, as signatures.
    pub fn signatures_of(&self, f: Symbol) -> Vec<FacetSignature> {
        let mut out: Vec<FacetSignature> = self
            .variants
            .iter()
            .filter(|((g, _), _)| *g == f)
            .map(|((_, args), result)| FacetSignature {
                args: args.clone(),
                result: result.clone(),
            })
            .collect();
        out.sort_by_key(|s| format!("{s:?}"));
        out
    }

    /// Number of variants of `f` that were demanded.
    pub fn variant_count(&self, f: Symbol) -> usize {
        self.variants.keys().filter(|(g, _)| *g == f).count()
    }
}

struct Ctx<'a> {
    program: &'a Program,
    aset: &'a AbstractFacetSet,
    memo: HashMap<(Symbol, Vec<AbstractProductVal>), AbstractProductVal>,
    in_progress: Vec<(Symbol, Vec<AbstractProductVal>)>,
    per_fn_counts: HashMap<Symbol, usize>,
    gov: Governor,
    /// Set once the deadline trips under `ExhaustionPolicy::Fail`; `zeta`
    /// then answers ⊤ everywhere (a fast, sound unwind) and the driver
    /// returns the error after the recursion completes.
    deadline_error: Option<OfflineError>,
}

/// Runs polyvariant facet analysis from the main function.
///
/// # Errors
///
/// As for [`crate::analyze`] (arity/facet mismatches; higher-order
/// programs are rejected).
pub fn analyze_polyvariant(
    program: &Program,
    facets: &FacetSet,
    inputs: &[AbstractInput],
) -> Result<PolyAnalysis, OfflineError> {
    analyze_polyvariant_with_config(program, facets, inputs, &PeConfig::default())
}

/// Runs polyvariant facet analysis under an explicit budget/policy
/// configuration. As for [`crate::analyze_with_config`], only the
/// wall-clock budget applies: under `ExhaustionPolicy::Degrade` an expired
/// deadline collapses every further demand onto the fully dynamic variant
/// (sound, and bounded by the number of source functions).
///
/// # Errors
///
/// As for [`analyze_polyvariant`], plus [`OfflineError::DeadlineExceeded`]
/// under `ExhaustionPolicy::Fail`.
pub fn analyze_polyvariant_with_config(
    program: &Program,
    facets: &FacetSet,
    inputs: &[AbstractInput],
    config: &PeConfig,
) -> Result<PolyAnalysis, OfflineError> {
    if program.is_higher_order() {
        return Err(OfflineError::HigherOrder);
    }
    let main = program.main();
    if main.arity() != inputs.len() {
        return Err(OfflineError::InputArity {
            function: main.name,
            expected: main.arity(),
            got: inputs.len(),
        });
    }
    let aset = facets.abstract_set();
    let lowered: Vec<AbstractProductVal> = inputs
        .iter()
        .map(|i| i.lower(facets, &aset))
        .collect::<Result<_, _>>()?;
    let mut ctx = Ctx {
        program,
        aset: &aset,
        memo: HashMap::new(),
        in_progress: Vec::new(),
        per_fn_counts: HashMap::new(),
        gov: Governor::new(config),
        deadline_error: None,
    };
    let result = zeta(&mut ctx, main.name, lowered);
    if let Some(e) = ctx.deadline_error {
        return Err(e);
    }
    Ok(PolyAnalysis {
        variants: ctx.memo,
        result,
        degradation: ctx.gov.into_report(),
    })
}

/// `ζ[f](δ̃⃗)` — the memoized abstract application.
fn zeta(ctx: &mut Ctx<'_>, f: Symbol, mut args: Vec<AbstractProductVal>) -> AbstractProductVal {
    // Wall-clock guard, consulted at every abstract application. `zeta`
    // has no `Result` channel, so a Fail-mode trip is parked in the
    // context and the recursion unwinds on ⊤ (sound) before the driver
    // reports the error.
    if ctx.deadline_error.is_none() {
        if let Err(e) = ctx.gov.check_deadline() {
            ctx.deadline_error = Some(OfflineError::from(e));
        }
    }
    if ctx.deadline_error.is_some() {
        return AbstractProductVal::dynamic(ctx.aset);
    }
    let Some(def) = ctx.program.lookup(f) else {
        return AbstractProductVal::dynamic(ctx.aset);
    };
    // Degrade past the deadline: every further demand collapses onto the
    // fully dynamic variant, so the remaining work is bounded by the
    // number of source functions.
    if ctx.gov.is_exhausted() {
        args = vec![AbstractProductVal::dynamic(ctx.aset); args.len()];
    }
    // Variant budget: new tuples beyond the cap are generalized to the
    // fully dynamic tuple. The key is built once — abstract product values
    // clone by reference count, so the repeated memo probes below cost
    // hashing only, not deep copies.
    let mut key = (f, args);
    let key_exists = ctx.memo.contains_key(&key) || ctx.in_progress.contains(&key);
    if !key_exists {
        let count = ctx.per_fn_counts.entry(f).or_insert(0);
        if *count >= MAX_VARIANTS_PER_FN {
            key.1 = vec![AbstractProductVal::dynamic(ctx.aset); key.1.len()];
        } else {
            *count += 1;
        }
    }
    let key = key;

    if ctx.in_progress.contains(&key) {
        // Recursive re-entry: answer the best estimate so far (⊥ on the
        // first pass), the minimal-function-graph treatment.
        return ctx
            .memo
            .get(&key)
            .cloned()
            .unwrap_or_else(|| AbstractProductVal::bottom(ctx.aset));
    }

    let mut estimate = ctx
        .memo
        .get(&key)
        .cloned()
        .unwrap_or_else(|| AbstractProductVal::bottom(ctx.aset));
    for _ in 0..MAX_LOCAL_ITERATIONS {
        ctx.in_progress.push(key.clone());
        let env: Vec<(Symbol, AbstractProductVal)> = def
            .params
            .iter()
            .copied()
            .zip(key.1.iter().cloned())
            .collect();
        let body_val = eval(ctx, &def.body, &env);
        ctx.in_progress.pop();
        let next = estimate.widen(&body_val, ctx.aset);
        let stable = next == estimate;
        estimate = next;
        ctx.memo.insert(key.clone(), estimate.clone());
        if stable {
            return estimate;
        }
    }
    // Should be unreachable for finite-height facets; stay sound.
    let top = AbstractProductVal::dynamic(ctx.aset);
    ctx.memo.insert(key, top.clone());
    top
}

/// Figure 4's `Ẽ` with the *precise* call rule: every call goes through
/// `ζ` at its own abstract arguments.
fn eval(ctx: &mut Ctx<'_>, e: &Expr, env: &[(Symbol, AbstractProductVal)]) -> AbstractProductVal {
    match e {
        Expr::Const(c) => AbstractProductVal::from_const(*c, ctx.aset),
        Expr::Var(x) => env
            .iter()
            .rev()
            .find(|(n, _)| n == x)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| AbstractProductVal::bottom(ctx.aset)),
        Expr::Prim(p, args) => {
            let vals: Vec<AbstractProductVal> = args.iter().map(|a| eval(ctx, a, env)).collect();
            ctx.aset.abstract_prim(*p, &vals).value
        }
        Expr::If(c, t, f) => {
            let cv = eval(ctx, c, env);
            let tv = eval(ctx, t, env);
            let fv = eval(ctx, f, env);
            if cv.is_bottom(ctx.aset) {
                AbstractProductVal::bottom(ctx.aset)
            } else if cv.bt().is_static() {
                tv.join(&fv, ctx.aset)
            } else {
                tv.join(&fv, ctx.aset).force_dynamic()
            }
        }
        Expr::Let(x, b, body) => {
            let bv = eval(ctx, b, env);
            let mut inner = env.to_vec();
            inner.push((*x, bv));
            eval(ctx, body, &inner)
        }
        Expr::Call(f, args) => {
            let vals: Vec<AbstractProductVal> = args.iter().map(|a| eval(ctx, a, env)).collect();
            zeta(ctx, *f, vals)
        }
        Expr::Lambda(..) | Expr::App(..) | Expr::FnRef(_) => {
            unreachable!("higher-order programs are rejected before analysis")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use ppe_core::facets::{SignFacet, SignVal};
    use ppe_core::AbsVal;
    use ppe_lang::parse_program;

    #[test]
    fn polyvariant_is_more_precise_than_monovariant() {
        // The sign-kernel: monovariantly, `step`'s signature joins the
        // entry's `neg` with the recursion's feedback and loses the sign;
        // polyvariantly each abstract argument tuple keeps its own result.
        let src = "(define (kernel x steps)
               (if (= steps 0) x (kernel (step x) (- steps 1))))
             (define (step x)
               (if (< x 0) (neg x) (+ x 1)))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let inputs = [
            AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg)),
            AbstractInput::static_(),
        ];

        let mono = analyze(&p, &facets, &inputs).unwrap();
        let mono_step = mono.signatures.get("step".into()).unwrap();
        // Monovariant: step's argument sign was joined away.
        assert_eq!(
            mono_step.args[0].facet(0).downcast_ref::<SignVal>(),
            Some(&SignVal::Top)
        );

        let poly = analyze_polyvariant(&p, &facets, &inputs).unwrap();
        // Polyvariant: there is a dedicated `step` variant for the `neg`
        // argument — the per-call-site precision the monovariant
        // signature joined away. (Its *result* still joins both branches,
        // as Figure 4's static-conditional rule demands.)
        let step_variants = poly.signatures_of("step".into());
        assert!(
            step_variants
                .iter()
                .any(|s| { s.args[0].facet(0).downcast_ref::<SignVal>() == Some(&SignVal::Neg) }),
            "a neg variant of step exists: {step_variants:?}"
        );
        assert!(step_variants.len() >= 2, "distinct variants are kept");
    }

    #[test]
    fn entry_result_matches_monovariant_or_is_tighter() {
        let src = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let inputs = [
            AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos)),
            AbstractInput::static_(),
        ];
        let mono = analyze(&p, &facets, &inputs).unwrap();
        let poly = analyze_polyvariant(&p, &facets, &inputs).unwrap();
        let aset = facets.abstract_set();
        let mono_result = &mono.signatures.get("power".into()).unwrap().result;
        // Precision order: poly ⊑ mono.
        assert!(poly.result.leq(mono_result, &aset));
        // And poly proves the power of a positive is positive.
        assert_eq!(
            poly.result.facet(0).downcast_ref::<SignVal>(),
            Some(&SignVal::Pos)
        );
    }

    #[test]
    fn variant_budget_generalizes_instead_of_diverging() {
        use ppe_core::facets::RangeFacet;
        // The recursion demands a fresh interval every call; the budget
        // forces generalization and the analysis still terminates.
        let src = "(define (f n) (if (< n 0) n (f (+ n 1))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
        let poly = analyze_polyvariant(&p, &facets, &[AbstractInput::static_()]).unwrap();
        assert!(poly.variant_count("f".into()) <= MAX_VARIANTS_PER_FN + 1);
    }

    #[test]
    fn fully_static_recursion_stays_static() {
        let src = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let poly = analyze_polyvariant(&p, &facets, &[AbstractInput::static_()]).unwrap();
        assert!(poly.result.bt().is_static());
    }

    #[test]
    fn higher_order_is_rejected() {
        let p = parse_program("(define (f g x) (g x))").unwrap();
        let facets = FacetSet::new();
        let err = analyze_polyvariant(
            &p,
            &facets,
            &[AbstractInput::dynamic(), AbstractInput::dynamic()],
        )
        .unwrap_err();
        assert_eq!(err, OfflineError::HigherOrder);
    }
}
