//! Offline parameterized partial evaluation (Section 5 of Consel & Khoo,
//! *Parameterized Partial Evaluation*, PLDI 1991).
//!
//! The offline strategy splits partial evaluation into:
//!
//! 1. **Facet analysis** ([`analyze`], Figure 4) — a generalization of
//!    binding-time analysis that statically computes, for every function, a
//!    *facet signature* (products of abstract facet values for its
//!    parameters and result), and annotates every expression with the
//!    reduction that will fire at specialization time — including *which
//!    facet's* open operator produces each static value;
//! 2. **Specialization** ([`OfflinePe`]) — a simple walk that follows the
//!    annotations: it no longer searches facets for reductions, it performs
//!    exactly the pre-selected ones.
//!
//! Section 5.5's higher-order facet analysis (Figures 5–6) is implemented
//! in [`higher_order`].
//!
//! # Example: the paper's Section 6.2
//!
//! ```
//! use ppe_core::{facets::{AbstractSizeVal, SizeFacet}, AbsVal, FacetSet};
//! use ppe_lang::parse_program;
//! use ppe_offline::{analyze, AbstractInput};
//!
//! let program = parse_program(
//!     "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
//!      (define (dotprod a b n)
//!        (if (= n 0) 0.0
//!            (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
//! )?;
//! let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
//! // Both vectors dynamic, but their *size* is static: ⟨Dyn, s⟩.
//! let s = AbsVal::new(AbstractSizeVal::StaticSize);
//! let analysis = analyze(&program, &facets, &[
//!     AbstractInput::dynamic().with_facet("size", s.clone()),
//!     AbstractInput::dynamic().with_facet("size", s),
//! ])?;
//! // Figure 9: n is Static in dotprod — the conditional reduces.
//! let sig = analysis.signatures.get("dotprod".into()).unwrap();
//! assert!(sig.args[2].bt().is_static());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod annotate;
pub mod certify;
mod error;
pub mod higher_order;
pub mod polyvariant;
mod signature;
mod specialize;

pub use analysis::{
    analyze, analyze_fn, analyze_fn_with_config, analyze_with_config, AbstractInput, Analysis,
};
pub use annotate::{AnnExpr, AnnFunDef, AnnKind, CallAction, PrimAction};
pub use error::OfflineError;
pub use signature::{FacetSignature, SigEnv};
pub use specialize::OfflinePe;
