//! Higher-order facet analysis — Section 5.5, Figures 5 and 6.
//!
//! The abstract-value domain becomes `Av̄ = SD̃ + (Av̄ → Av̄)`: an abstract
//! value is either a product of abstract facet values or an abstract
//! function. Abstract functions are represented as closures over the
//! abstract environment; the paper's *unknown operator* `⊤_C` — returned
//! when a dynamic conditional selects between functions — "takes an
//! arbitrary number of arguments and always returns the appropriate
//! strongest element".
//!
//! As in the paper, "the analysis as described is not guaranteed to
//! terminate" for functions of arbitrary order; the paper adopts Hudak &
//! Young's depth restriction, which is realized here as an application
//! depth bound: beyond it, an application conservatively answers `⊤_C`.
//! The analysis produces facet signatures ([`SigEnv`]) for every
//! user-defined function reached — including functions only reachable
//! through higher-order application, whose signatures are collected by
//! applying them to the strongest arguments "in advance" when a dynamic
//! conditional hides which function will run (Figure 6's treatment).

use std::collections::HashMap;
use std::rc::Rc;

use ppe_core::{AbstractFacetSet, AbstractProductVal, FacetSet};
use ppe_lang::{Expr, Program, Symbol};

use crate::analysis::AbstractInput;
use crate::error::OfflineError;
use crate::signature::{FacetSignature, SigEnv};

/// Application-depth bound standing in for the paper's order/depth
/// restriction on function types.
const MAX_APPLY_DEPTH: u32 = 64;

/// An element of the higher-order abstract domain
/// `Av̄ = SD̃ + (Av̄ → Av̄)`.
#[derive(Clone, Debug)]
pub enum AbsValue {
    /// A first-order product of abstract facet values (`SD̃`).
    Data(AbstractProductVal),
    /// A join of abstract functions; applying it applies every member and
    /// joins the results (the paper's l.u.b. of functions).
    Funs(Vec<FunVal>),
    /// The unknown operator `⊤_C`.
    TopC,
}

/// One abstract function value.
#[derive(Clone, Debug)]
pub enum FunVal {
    /// A reference to a user-defined top-level function.
    Named(Symbol),
    /// An abstract closure (from `lambda`).
    Closure(Rc<AbsClosure>),
}

/// An abstract closure: parameters, body, and captured abstract
/// environment.
#[derive(Debug)]
pub struct AbsClosure {
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// The body expression.
    pub body: Expr,
    /// Captured abstract environment.
    pub env: HashMap<Symbol, AbsValue>,
}

/// Result of the higher-order facet analysis.
#[derive(Debug)]
pub struct HoAnalysis {
    /// Facet signatures of every user-defined function reached.
    pub signatures: SigEnv,
    /// The abstract value of the program's entry expression.
    pub result: AbsValue,
}

impl HoAnalysis {
    /// Renders the collected signatures (sorted by function name) plus the
    /// entry result, for reports and the CLI.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut sigs: Vec<_> = self.signatures.iter().collect();
        sigs.sort_by_key(|(f, _)| f.as_str());
        for (f, sig) in sigs {
            let _ = writeln!(out, "{f}: {}", sig.display());
        }
        let result = match &self.result {
            AbsValue::Data(d) => d.display(),
            AbsValue::Funs(fs) => format!("a function value ({} member(s))", fs.len()),
            AbsValue::TopC => "⊤_C (unknown operator)".to_owned(),
        };
        let _ = writeln!(out, "result: {result}");
        out
    }
}

struct Ctx<'a> {
    program: &'a Program,
    aset: &'a AbstractFacetSet,
    sig: SigEnv,
    /// Memo of named-function applications: (f, data-coerced args) → best
    /// known result, iterated to a (bounded) fixpoint.
    memo: HashMap<(Symbol, Vec<AbstractProductVal>), AbstractProductVal>,
    in_progress: Vec<(Symbol, Vec<AbstractProductVal>)>,
}

/// Runs the higher-order facet analysis (Figures 5–6) on `program`'s main
/// function.
///
/// # Errors
///
/// [`OfflineError`] variants for arity and facet mismatches.
pub fn analyze_higher_order(
    program: &Program,
    facets: &FacetSet,
    inputs: &[AbstractInput],
) -> Result<HoAnalysis, OfflineError> {
    let main = program.main();
    if main.arity() != inputs.len() {
        return Err(OfflineError::InputArity {
            function: main.name,
            expected: main.arity(),
            got: inputs.len(),
        });
    }
    let aset = facets.abstract_set();
    let lowered: Vec<AbstractProductVal> = inputs
        .iter()
        .map(|i| lower_input(i, facets, &aset))
        .collect::<Result<_, _>>()?;
    let mut ctx = Ctx {
        program,
        aset: &aset,
        sig: SigEnv::new(),
        memo: HashMap::new(),
        in_progress: Vec::new(),
    };
    let args: Vec<AbsValue> = lowered.into_iter().map(AbsValue::Data).collect();
    let result = apply_named(&mut ctx, main.name, &args, 0);
    Ok(HoAnalysis {
        signatures: ctx.sig,
        result,
    })
}

fn lower_input(
    input: &AbstractInput,
    facets: &FacetSet,
    aset: &AbstractFacetSet,
) -> Result<AbstractProductVal, OfflineError> {
    input.lower(facets, aset)
}

/// Coerces an abstract value to first-order data for primitive arguments
/// and signature recording: functions and `⊤_C` become fully dynamic.
fn coerce_data(v: &AbsValue, aset: &AbstractFacetSet) -> AbstractProductVal {
    match v {
        AbsValue::Data(d) => d.clone(),
        AbsValue::Funs(_) | AbsValue::TopC => AbstractProductVal::dynamic(aset),
    }
}

/// The paper's l.u.b. on `Av̄` (Section 5.5): data joins componentwise,
/// functions of equal arity join pointwise (we keep the member list and
/// join at application time), mixed kinds go to `⊤_C`.
fn join_values(a: &AbsValue, b: &AbsValue, aset: &AbstractFacetSet) -> AbsValue {
    match (a, b) {
        (AbsValue::Data(x), AbsValue::Data(y)) => AbsValue::Data(x.join(y, aset)),
        (AbsValue::Funs(x), AbsValue::Funs(y)) => {
            let mut out = x.clone();
            out.extend(y.iter().cloned());
            AbsValue::Funs(out)
        }
        (AbsValue::Data(x), _) if x.is_bottom(aset) => b.clone(),
        (_, AbsValue::Data(y)) if y.is_bottom(aset) => a.clone(),
        _ => AbsValue::TopC,
    }
}

/// The valuation function `Ẽ` of Figure 5.
fn eval(ctx: &mut Ctx<'_>, e: &Expr, env: &HashMap<Symbol, AbsValue>, depth: u32) -> AbsValue {
    match e {
        Expr::Const(c) => AbsValue::Data(AbstractProductVal::from_const(*c, ctx.aset)),
        Expr::Var(x) => env
            .get(x)
            .cloned()
            .unwrap_or(AbsValue::Data(AbstractProductVal::bottom(ctx.aset))),
        Expr::FnRef(f) => AbsValue::Funs(vec![FunVal::Named(*f)]),
        Expr::Lambda(params, body) => AbsValue::Funs(vec![FunVal::Closure(Rc::new(AbsClosure {
            params: params.clone(),
            body: (**body).clone(),
            env: env.clone(),
        }))]),
        Expr::Prim(p, args) => {
            let vals: Vec<AbstractProductVal> = args
                .iter()
                .map(|a| coerce_data(&eval(ctx, a, env, depth), ctx.aset))
                .collect();
            AbsValue::Data(ctx.aset.abstract_prim(*p, &vals).value)
        }
        Expr::If(c, t, f) => {
            let cv = coerce_data(&eval(ctx, c, env, depth), ctx.aset);
            let tv = eval(ctx, t, env, depth);
            let fv = eval(ctx, f, env, depth);
            if cv.is_bottom(ctx.aset) {
                return AbsValue::Data(AbstractProductVal::bottom(ctx.aset));
            }
            if cv.bt().is_static() {
                return join_values(&tv, &fv, ctx.aset);
            }
            // Dynamic test: data results dynamize; functional results are
            // unknown (⊤_C) — and, per Figure 6, the functions that will
            // *not* be applied at specialization time are applied to the
            // strongest arguments now so their signatures are collected.
            match (&tv, &fv) {
                (AbsValue::Data(x), AbsValue::Data(y)) => {
                    AbsValue::Data(x.join(y, ctx.aset).force_dynamic())
                }
                _ => {
                    collect_in_advance(ctx, &tv, depth);
                    collect_in_advance(ctx, &fv, depth);
                    AbsValue::TopC
                }
            }
        }
        Expr::Let(x, b, body) => {
            let bv = eval(ctx, b, env, depth);
            let mut inner = env.clone();
            inner.insert(*x, bv);
            eval(ctx, body, &inner, depth)
        }
        Expr::Call(f, args) => {
            let vals: Vec<AbsValue> = args.iter().map(|a| eval(ctx, a, env, depth)).collect();
            apply_named(ctx, *f, &vals, depth)
        }
        Expr::App(f, args) => {
            let fv = eval(ctx, f, env, depth);
            let vals: Vec<AbsValue> = args.iter().map(|a| eval(ctx, a, env, depth)).collect();
            apply_value(ctx, &fv, &vals, depth)
        }
    }
}

/// Applies an abstract value (Figure 6's application rule).
fn apply_value(ctx: &mut Ctx<'_>, f: &AbsValue, args: &[AbsValue], depth: u32) -> AbsValue {
    if depth >= MAX_APPLY_DEPTH {
        return AbsValue::TopC;
    }
    match f {
        AbsValue::TopC => {
            // ⊤_F: unknown function. Its arguments' functional values may
            // still be applied at run time; collect their signatures.
            for a in args {
                collect_in_advance(ctx, a, depth);
            }
            AbsValue::TopC
        }
        AbsValue::Data(_) => AbsValue::TopC, // applying data: type error ⇒ ⊤_C
        AbsValue::Funs(members) => {
            let mut out = AbsValue::Data(AbstractProductVal::bottom(ctx.aset));
            for m in members {
                let r = match m {
                    FunVal::Named(g) => apply_named(ctx, *g, args, depth + 1),
                    FunVal::Closure(c) => {
                        if c.params.len() != args.len() {
                            AbsValue::TopC
                        } else {
                            let mut env = c.env.clone();
                            for (p, a) in c.params.iter().zip(args) {
                                env.insert(*p, a.clone());
                            }
                            eval(ctx, &c.body, &env, depth + 1)
                        }
                    }
                };
                out = join_values(&out, &r, ctx.aset);
            }
            out
        }
    }
}

/// Applies a user-defined function, recording its facet signature and
/// memoizing on the data projection of the arguments.
fn apply_named(ctx: &mut Ctx<'_>, f: Symbol, args: &[AbsValue], depth: u32) -> AbsValue {
    let Some(def) = ctx.program.lookup(f) else {
        return AbsValue::TopC;
    };
    if def.arity() != args.len() {
        return AbsValue::TopC;
    }
    if depth >= MAX_APPLY_DEPTH {
        return AbsValue::TopC;
    }
    let data_args: Vec<AbstractProductVal> =
        args.iter().map(|a| coerce_data(a, ctx.aset)).collect();
    let key = (f, data_args.clone());

    // Recursive re-entry at the same abstract arguments: answer with the
    // best known estimate (⊥ initially) — the usual minimal-function-graph
    // fixpoint treatment.
    if ctx.in_progress.contains(&key) {
        let estimate = ctx
            .memo
            .get(&key)
            .cloned()
            .unwrap_or_else(|| AbstractProductVal::bottom(ctx.aset));
        return AbsValue::Data(estimate);
    }

    let mut env: HashMap<Symbol, AbsValue> = HashMap::new();
    for (p, a) in def.params.iter().zip(args) {
        env.insert(*p, a.clone());
    }

    // Iterate this application to a local fixpoint (bounded; the domain
    // has finite height for well-behaved facets).
    let mut result = ctx
        .memo
        .get(&key)
        .cloned()
        .unwrap_or_else(|| AbstractProductVal::bottom(ctx.aset));
    for _ in 0..64 {
        ctx.in_progress.push(key.clone());
        let body_val = eval(ctx, &def.body, &env, depth + 1);
        ctx.in_progress.pop();
        let next = result.widen(&coerce_data(&body_val, ctx.aset), ctx.aset);
        let stable = next == result;
        result = next;
        ctx.memo.insert(key.clone(), result.clone());
        if stable {
            // Record the signature and propagate a functional result
            // as-is when the body is first-order-stable.
            ctx.sig.absorb(
                f,
                &FacetSignature {
                    args: data_args,
                    result: result.clone(),
                },
                ctx.aset,
            );
            // If the body denotes a function (not data), return it
            // directly so callers can apply it.
            if let AbsValue::Funs(_) | AbsValue::TopC = body_val {
                return body_val;
            }
            return AbsValue::Data(result);
        }
    }
    ctx.sig.absorb(
        f,
        &FacetSignature {
            args: data_args,
            result: AbstractProductVal::dynamic(ctx.aset),
        },
        ctx.aset,
    );
    AbsValue::Data(AbstractProductVal::dynamic(ctx.aset))
}

/// Figure 6's "in advance" collection: functions whose application site is
/// unknowable are applied to the strongest (fully dynamic) arguments so
/// their bodies still contribute signatures.
fn collect_in_advance(ctx: &mut Ctx<'_>, v: &AbsValue, depth: u32) {
    if let AbsValue::Funs(members) = v {
        for m in members.clone() {
            let arity = match &m {
                FunVal::Named(g) => match ctx.program.lookup(*g) {
                    Some(d) => d.arity(),
                    None => continue,
                },
                FunVal::Closure(c) => c.params.len(),
            };
            let tops: Vec<AbsValue> = (0..arity)
                .map(|_| AbsValue::Data(AbstractProductVal::dynamic(ctx.aset)))
                .collect();
            let _ = apply_value(ctx, &AbsValue::Funs(vec![m]), &tops, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_core::facets::{SignFacet, SignVal};
    use ppe_core::{AbsVal, BtVal};
    use ppe_lang::parse_program;

    fn run(src: &str, inputs: &[AbstractInput]) -> HoAnalysis {
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        analyze_higher_order(&p, &facets, inputs).unwrap()
    }

    #[test]
    fn first_order_programs_still_analyze() {
        let a = run(
            "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        );
        let sig = a.signatures.get("power".into()).unwrap();
        assert!(sig.args[0].bt().is_dynamic());
        assert!(sig.args[1].bt().is_static());
    }

    #[test]
    fn higher_order_application_collects_callee_signatures() {
        let a = run(
            "(define (main x) (twice inc x))
             (define (twice f x) (f (f x)))
             (define (inc x) (+ x 1))",
            &[AbstractInput::static_()],
        );
        // `inc` is only reached through the functional parameter `f`, yet
        // it has a signature with a static argument.
        let inc = a.signatures.get("inc".into()).unwrap();
        assert!(inc.args[0].bt().is_static());
        let twice = a.signatures.get("twice".into()).unwrap();
        assert!(twice.result.bt().is_static());
    }

    #[test]
    fn lambdas_flow_through_lets() {
        let a = run(
            "(define (main x) (let ((add1 (lambda (y) (+ y 1)))) (add1 x)))",
            &[AbstractInput::static_()],
        );
        let main = a.signatures.get("main".into()).unwrap();
        assert_eq!(*main.result.bt(), BtVal::Static);
    }

    #[test]
    fn dynamic_conditional_between_functions_yields_top_c() {
        let a = run(
            "(define (main d x) ((if (< d 0) inc dec) x))
             (define (inc y) (+ y 1))
             (define (dec y) (- y 1))",
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        );
        // The chosen function is unknown (⊤_C applied ⇒ ⊤_C result), but
        // both inc and dec still received signatures "in advance" with the
        // strongest (dynamic) arguments.
        assert!(matches!(a.result, AbsValue::TopC));
        for f in ["inc", "dec"] {
            let sig = a.signatures.get(f.into()).unwrap();
            assert!(sig.args[0].bt().is_dynamic(), "{f}");
        }
    }

    #[test]
    fn static_conditional_between_functions_applies_both_branches() {
        let a = run(
            "(define (main x) ((if (< 0 1) inc dec) x))
             (define (inc y) (+ y 1))
             (define (dec y) (- y 1))",
            &[AbstractInput::static_()],
        );
        // Static test: the joined function value is applied; the result
        // stays static.
        let main = a.signatures.get("main".into()).unwrap();
        assert!(main.result.bt().is_static());
    }

    #[test]
    fn facet_information_flows_through_higher_order_calls() {
        let p = parse_program(
            "(define (main x) (applyit square x))
             (define (applyit f x) (f x))
             (define (square y) (* y y))",
        )
        .unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let a = analyze_higher_order(
            &p,
            &facets,
            &[AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg))],
        )
        .unwrap();
        // square receives a neg argument; its result is pos.
        let sq = a.signatures.get("square".into()).unwrap();
        assert_eq!(
            sq.result.facet(0).downcast_ref::<SignVal>(),
            Some(&SignVal::Pos)
        );
    }

    #[test]
    fn report_renders_signatures_and_result() {
        let a = run(
            "(define (main x) (twice inc x))
             (define (twice f x) (f (f x)))
             (define (inc x) (+ x 1))",
            &[AbstractInput::static_()],
        );
        let report = a.report();
        assert!(report.contains("inc:"), "{report}");
        assert!(report.contains("twice:"), "{report}");
        assert!(report.contains("result:"), "{report}");
    }

    #[test]
    fn recursion_through_higher_order_terminates() {
        let a = run(
            "(define (main n) (rec step n))
             (define (rec f n) (if (= n 0) 0 (f f n)))
             (define (step g n) (rec step (- n 1)))",
            &[AbstractInput::dynamic()],
        );
        assert!(a.signatures.get("rec".into()).is_some());
    }
}
