//! Binding-time certificate checking: validation of annotated output.
//!
//! Facet analysis ([`crate::analyze`], Figure 4) produces a two-level
//! program: every expression carries an abstract product (whose first
//! component is Definition 10's binding-time facet) and a pre-selected
//! specializer action. The offline specializer *trusts* those annotations
//! — a wrong one makes it evaluate a dynamic operand at specialization
//! time (crash / wrong residual) or unfold without bound. This module
//! turns the annotation from a trusted artifact into a *checkable
//! certificate*: [`check_certificate`] re-derives, node by node and using
//! only the recorded child values, what a congruent annotation must say,
//! and reports every disagreement as a structured
//! [`Diagnostic`](ppe_lang::diag::Diagnostic).
//!
//! The congruence conditions checked (each with a stable code):
//!
//! | code | condition violated |
//! |------|--------------------|
//! | `E0101` | a `Reduce` action its operands cannot justify — a static operator consuming a dynamic operand with no lift, or a facet source that proves nothing |
//! | `E0102` | an eliminable conditional not under static control (`static_cond` true with a non-static test), or a residual conditional whose value claims staticness |
//! | `E0103` | an `Unfold` call with no static argument (nothing bounds the unfolding) |
//! | `E0104` | a recorded abstract product that does not cover the value recomputed from its children — the certificate under-approximates |
//!
//! Soundness direction: a recorded value *wider* than the recomputed one
//! (extra dynamics) is accepted — over-approximation loses precision, not
//! correctness. Only under-approximation is an error, which is why the
//! per-node comparison is `recomputed ⊑ recorded` via
//! [`AbstractProductVal::leq`].

use ppe_core::{AbstractFacetSet, AbstractProductVal};
use ppe_lang::diag::Diagnostic;
use ppe_lang::Symbol;

use crate::analysis::Analysis;
use crate::annotate::{AnnExpr, AnnFunDef, AnnKind, CallAction, PrimAction};
use crate::signature::SigEnv;

/// Checks every annotated definition of `analysis` for congruence.
///
/// Returns all findings (deterministically ordered: functions by name,
/// nodes in evaluation order); an empty vector is the certificate's
/// acceptance. A freshly computed [`Analysis`] always passes — the checker
/// re-derives the same rules the annotater applied — so any diagnostic
/// means the annotation was corrupted or produced by a buggy analysis.
///
/// # Examples
///
/// ```
/// use ppe_core::FacetSet;
/// use ppe_lang::parse_program;
/// use ppe_offline::{analyze, certify::check_certificate, AbstractInput};
///
/// let p = parse_program(
///     "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
/// )?;
/// let analysis = analyze(&p, &FacetSet::new(), &[
///     AbstractInput::dynamic(),
///     AbstractInput::static_(),
/// ])?;
/// assert!(check_certificate(&analysis).is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_certificate(analysis: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut names: Vec<Symbol> = analysis.annotated.keys().copied().collect();
    names.sort_by_key(|s| s.to_string());
    for name in names {
        let def = &analysis.annotated[&name];
        check_def(def, &analysis.signatures, &analysis.aset, &mut out);
    }
    out
}

fn check_def(def: &AnnFunDef, sig: &SigEnv, aset: &AbstractFacetSet, out: &mut Vec<Diagnostic>) {
    let Some(s) = sig.get(def.name) else {
        out.push(
            Diagnostic::error(
                "E0104",
                format!("annotated definition of `{}` has no signature", def.name),
            )
            .in_function(def.name),
        );
        return;
    };
    if s.args.len() != def.params.len() {
        out.push(
            Diagnostic::error(
                "E0104",
                format!(
                    "signature of `{}` has {} argument products for {} parameters",
                    def.name,
                    s.args.len(),
                    def.params.len()
                ),
            )
            .in_function(def.name),
        );
        return;
    }
    let mut env: Vec<(Symbol, AbstractProductVal)> = def
        .params
        .iter()
        .copied()
        .zip(s.args.iter().cloned())
        .collect();
    let mut cx = Cx {
        function: def.name,
        sig,
        aset,
        out,
    };
    check_expr(&def.body, &mut env, "body", &mut cx);
}

/// Shared checking context: where findings go and what they reference.
struct Cx<'a> {
    function: Symbol,
    sig: &'a SigEnv,
    aset: &'a AbstractFacetSet,
    out: &'a mut Vec<Diagnostic>,
}

impl Cx<'_> {
    fn emit(&mut self, code: &'static str, path: &str, message: String) {
        self.out.push(
            Diagnostic::error(code, message)
                .in_function(self.function)
                .at_path(path),
        );
    }
}

/// Checks one node and returns the value recomputed from the *recorded*
/// child values (so corruption is reported at the node that lies, not at
/// every ancestor).
fn check_expr(
    e: &AnnExpr,
    env: &mut Vec<(Symbol, AbstractProductVal)>,
    path: &str,
    cx: &mut Cx<'_>,
) {
    let recomputed = match &e.kind {
        AnnKind::Const(c) => AbstractProductVal::from_const(*c, cx.aset),
        AnnKind::Var(x) => env
            .iter()
            .rev()
            .find(|(n, _)| n == x)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| AbstractProductVal::bottom(cx.aset)),
        AnnKind::Prim { p, args, action } => {
            for (i, a) in args.iter().enumerate() {
                check_expr(a, env, &format!("{path}.arg{i}"), cx);
            }
            let vals: Vec<AbstractProductVal> = args.iter().map(|a| a.value.clone()).collect();
            let r = cx.aset.abstract_prim(*p, &vals);
            if let PrimAction::Reduce { source } = action {
                if !r.static_sources.contains(source) {
                    let why = if *source == 0 {
                        "the PE facet: some operand is not a static constant (missing lift)"
                            .to_owned()
                    } else if *source > cx.aset.len() {
                        format!("facet {} (only {} facets exist)", source - 1, cx.aset.len())
                    } else {
                        format!(
                            "facet {}: its open operator proves nothing here",
                            source - 1
                        )
                    };
                    cx.emit(
                        "E0101",
                        path,
                        format!("`({p} …)` is annotated `Reduce` but the reduction is not justified by {why}"),
                    );
                }
            }
            r.value
        }
        AnnKind::If {
            cond,
            then_branch,
            else_branch,
            static_cond,
        } => {
            check_expr(cond, env, &format!("{path}.cond"), cx);
            check_expr(then_branch, env, &format!("{path}.then"), cx);
            check_expr(else_branch, env, &format!("{path}.else"), cx);
            let cond_bottom = cond.value.is_bottom(cx.aset);
            if *static_cond && !cond.value.bt().is_static() && !cond_bottom {
                cx.emit(
                    "E0102",
                    path,
                    "conditional is annotated eliminable (`static_cond`) but its test is not static"
                        .to_owned(),
                );
            }
            let joined = then_branch.value.join(&else_branch.value, cx.aset);
            if cond_bottom {
                AbstractProductVal::bottom(cx.aset)
            } else if *static_cond {
                joined
            } else {
                joined.force_dynamic()
            }
        }
        AnnKind::Call { f, args, action } => {
            for (i, a) in args.iter().enumerate() {
                check_expr(a, env, &format!("{path}.arg{i}"), cx);
            }
            if *action == CallAction::Unfold && !args.iter().any(|a| a.value.bt().is_static()) {
                cx.emit(
                    "E0103",
                    path,
                    format!(
                        "call of `{f}` is annotated `Unfold` but no argument is static — nothing bounds the unfolding"
                    ),
                );
            }
            if args.iter().any(|a| a.value.bt().is_dynamic()) {
                AbstractProductVal::dynamic(cx.aset)
            } else if args.iter().any(|a| a.value.is_bottom(cx.aset)) {
                AbstractProductVal::bottom(cx.aset)
            } else {
                cx.sig
                    .get(*f)
                    .map(|s| s.result.clone())
                    .unwrap_or_else(|| AbstractProductVal::bottom(cx.aset))
            }
        }
        AnnKind::Let { x, bound, body } => {
            check_expr(bound, env, &format!("{path}.bound"), cx);
            env.push((*x, bound.value.clone()));
            check_expr(body, env, &format!("{path}.body"), cx);
            env.pop();
            body.value.clone()
        }
    };
    if !recomputed.leq(&e.value, cx.aset) {
        cx.emit(
            "E0104",
            path,
            format!(
                "recorded value {} does not cover recomputed value {} — the certificate under-approximates",
                e.value.display(),
                recomputed.display()
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AbstractInput};
    use ppe_core::facets::SizeFacet;
    use ppe_core::{AbsVal, FacetSet};
    use ppe_lang::parse_program;

    const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
    const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

    fn power_analysis() -> crate::analysis::Analysis {
        let p = parse_program(POWER).unwrap();
        analyze(
            &p,
            &FacetSet::new(),
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        )
        .unwrap()
    }

    #[test]
    fn honest_annotations_pass() {
        assert!(check_certificate(&power_analysis()).is_empty());
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let s = AbsVal::new(ppe_core::facets::AbstractSizeVal::StaticSize);
        let analysis = analyze(
            &p,
            &facets,
            &[
                AbstractInput::dynamic().with_facet("size", s.clone()),
                AbstractInput::dynamic().with_facet("size", s),
            ],
        )
        .unwrap();
        assert!(check_certificate(&analysis).is_empty());
    }

    #[test]
    fn corrupt_reduce_on_dynamic_operand_is_e0101() {
        let mut analysis = power_analysis();
        let def = analysis
            .annotated
            .get_mut(&Symbol::intern("power"))
            .unwrap();
        // The else branch (* x (power …)) residualizes (x dynamic): claim
        // the PE facet reduces it.
        let AnnKind::If { else_branch, .. } = &mut def.body.kind else {
            panic!("power body is an if");
        };
        let AnnKind::Prim { action, .. } = &mut else_branch.kind else {
            panic!("else branch is (* …)");
        };
        *action = PrimAction::Reduce { source: 0 };
        let diags = check_certificate(&analysis);
        assert!(diags.iter().any(|d| d.code == "E0101"), "{diags:?}");
    }

    #[test]
    fn corrupt_static_cond_is_e0102() {
        let p = parse_program("(define (f x) (if (< x 0) 1 2))").unwrap();
        let mut analysis = analyze(&p, &FacetSet::new(), &[AbstractInput::dynamic()]).unwrap();
        let def = analysis.annotated.get_mut(&Symbol::intern("f")).unwrap();
        let AnnKind::If { static_cond, .. } = &mut def.body.kind else {
            panic!("f body is an if");
        };
        *static_cond = true; // the test (< x 0) is dynamic
        let diags = check_certificate(&analysis);
        assert!(diags.iter().any(|d| d.code == "E0102"), "{diags:?}");
    }

    #[test]
    fn corrupt_unfold_without_static_argument_is_e0103() {
        let p = parse_program("(define (f x) (if (< x 0) (f (+ x 1)) x))").unwrap();
        let mut analysis = analyze(&p, &FacetSet::new(), &[AbstractInput::dynamic()]).unwrap();
        let def = analysis.annotated.get_mut(&Symbol::intern("f")).unwrap();
        let AnnKind::If { then_branch, .. } = &mut def.body.kind else {
            panic!("f body is an if");
        };
        let AnnKind::Call { action, .. } = &mut then_branch.kind else {
            panic!("then branch is (f …)");
        };
        *action = CallAction::Unfold; // every argument is dynamic
        let diags = check_certificate(&analysis);
        assert!(diags.iter().any(|d| d.code == "E0103"), "{diags:?}");
    }

    #[test]
    fn corrupt_value_claiming_staticness_is_e0104() {
        let mut analysis = power_analysis();
        let def = analysis
            .annotated
            .get_mut(&Symbol::intern("power"))
            .unwrap();
        // Claim the whole (dynamic) body is static.
        let forced = AbstractProductVal::static_top(&analysis.aset);
        def.body.value = forced;
        let diags = check_certificate(&analysis);
        assert!(diags.iter().any(|d| d.code == "E0104"), "{diags:?}");
        // And the finding carries a function + path location.
        let d = diags.iter().find(|d| d.code == "E0104").unwrap();
        assert_eq!(d.location(), "power:body");
    }

    #[test]
    fn diagnostics_are_deterministically_ordered() {
        let mut analysis = power_analysis();
        let def = analysis
            .annotated
            .get_mut(&Symbol::intern("power"))
            .unwrap();
        def.body.value = AbstractProductVal::static_top(&analysis.aset);
        let a = check_certificate(&analysis);
        let b = check_certificate(&analysis);
        assert_eq!(a, b);
    }
}
