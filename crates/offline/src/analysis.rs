//! Facet analysis — Figure 4 of the paper.
//!
//! The analysis computes, by fixpoint iteration over the finite-height
//! domain of facet signatures, a product of abstract facet values for
//! every function parameter and result, then annotates every expression
//! with its abstract product and the specializer action it determines.
//!
//! The valuation function `Ẽ` is implemented literally; the signature
//! collection `Ã` is realized by recording every call site's argument
//! products and re-analyzing each function at the widened join of its call
//! sites until nothing changes (the `h̃` iteration). One deliberate
//! approximation: where Figure 4 consults the recursive abstract function
//! environment `ζ[f]` for a call with no dynamic argument, we use the
//! function's current signature result — the standard monovariant
//! treatment, which converges to the same fixpoint shape and keeps the
//! analysis linear in practice.

use std::collections::HashMap;

use ppe_core::{AbstractFacetSet, AbstractProductVal, BtVal, FacetSet, ProductVal};
use ppe_lang::{Expr, Program, Symbol};
use ppe_online::{DegradationReport, Governor, PeConfig};

use crate::annotate::{AnnExpr, AnnFunDef, AnnKind, CallAction, PrimAction};
use crate::error::OfflineError;
use crate::signature::{FacetSignature, SigEnv};

/// Iteration cap for the signature fixpoint (a backstop; finite-height
/// domains with widening stabilize far earlier).
const MAX_ITERATIONS: u32 = 10_000;

/// An abstract description of one entry input for facet analysis.
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::AbstractSizeVal, AbsVal};
/// use ppe_offline::AbstractInput;
///
/// // "dynamic vector, static size" — the paper's ⟨Dyn, s⟩.
/// let input = AbstractInput::dynamic()
///     .with_facet("size", AbsVal::new(AbstractSizeVal::StaticSize));
/// # let _ = input;
/// ```
#[derive(Clone, Debug)]
pub enum AbstractInput {
    /// Directly specified binding time plus abstract-facet refinements.
    Direct {
        /// The binding time of the input.
        bt: BtVal,
        /// `(facet name, abstract facet value)` refinements.
        refinements: Vec<(String, ppe_core::AbsVal)>,
    },
    /// Abstract an online-level product (the canonical route when the
    /// same inputs will later drive specialization): the binding time is
    /// `τ̄` of the PE component and each facet component goes through its
    /// facet mapping `ᾱ`.
    OfProduct(ProductVal),
}

impl AbstractInput {
    /// A fully dynamic input.
    pub fn dynamic() -> AbstractInput {
        AbstractInput::Direct {
            bt: BtVal::Dynamic,
            refinements: Vec::new(),
        }
    }

    /// A static (known at specialization time) input with no facet
    /// refinements.
    pub fn static_() -> AbstractInput {
        AbstractInput::Direct {
            bt: BtVal::Static,
            refinements: Vec::new(),
        }
    }

    /// Adds an abstract-facet refinement (builder style).
    ///
    /// # Panics
    ///
    /// Panics on an [`AbstractInput::OfProduct`] input, whose facet values
    /// are already determined.
    #[must_use]
    pub fn with_facet(self, facet_name: &str, value: ppe_core::AbsVal) -> AbstractInput {
        match self {
            AbstractInput::Direct {
                bt,
                mut refinements,
            } => {
                refinements.push((facet_name.to_owned(), value));
                AbstractInput::Direct { bt, refinements }
            }
            AbstractInput::OfProduct(_) => {
                panic!("with_facet on an OfProduct input: facets are derived from the product")
            }
        }
    }

    /// Abstracts an online product of facet values (see
    /// [`AbstractInput::OfProduct`]).
    pub fn of_product(product: ProductVal) -> AbstractInput {
        AbstractInput::OfProduct(product)
    }

    pub(crate) fn lower(
        &self,
        facets: &FacetSet,
        aset: &AbstractFacetSet,
    ) -> Result<AbstractProductVal, OfflineError> {
        match self {
            AbstractInput::Direct { bt, refinements } => {
                let base = match bt {
                    BtVal::Bottom => AbstractProductVal::bottom(aset),
                    BtVal::Static => AbstractProductVal::static_top(aset),
                    BtVal::Dynamic => AbstractProductVal::dynamic(aset),
                };
                let mut out = base;
                for (name, abs) in refinements {
                    let idx = facets
                        .index_of(name)
                        .ok_or_else(|| OfflineError::UnknownFacet(name.clone()))?;
                    out = out.with_facet(idx, abs.clone());
                }
                Ok(out)
            }
            AbstractInput::OfProduct(p) => Ok(abstract_of_product(p, aset)),
        }
    }
}

/// Abstracts an online product into the offline domain: `τ̄` on the PE
/// component, `ᾱᵢ` on each facet component.
pub(crate) fn abstract_of_product(p: &ProductVal, aset: &AbstractFacetSet) -> AbstractProductVal {
    let bt = BtVal::from_pe(p.pe());
    let facets: Vec<ppe_core::AbsVal> = p
        .facet_components()
        .iter()
        .enumerate()
        .map(|(i, a)| aset.abstract_facet(i).alpha_facet(a))
        .collect();
    AbstractProductVal::from_components(bt, facets, aset)
}

/// The result of facet analysis: signatures, annotated definitions, and
/// the context needed by the offline specializer.
#[derive(Debug)]
pub struct Analysis {
    /// Every reached function's facet signature (Figure 4's `SigEnv`).
    pub signatures: SigEnv,
    /// Annotated definitions for every reached function.
    pub annotated: HashMap<Symbol, AnnFunDef>,
    /// Number of `h̃` iterations until the fixpoint.
    pub iterations: u32,
    /// The entry function analyzed.
    pub entry: Symbol,
    /// The abstract inputs the analysis was run with.
    pub inputs: Vec<AbstractProductVal>,
    /// Budgets that tripped during analysis (the wall-clock deadline under
    /// `ExhaustionPolicy::Degrade`, which widens every signature to fully
    /// dynamic instead of failing). Empty on a within-budget run.
    pub degradation: DegradationReport,
    pub(crate) aset: AbstractFacetSet,
}

impl Analysis {
    /// Renders a Figure-9-style table: per function, the parameter
    /// products and one row per annotated primitive, call, `let` and
    /// conditional test.
    pub fn report(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for def in program.defs() {
            let Some(sig) = self.signatures.get(def.name) else {
                continue;
            };
            let _ = writeln!(out, "{}:", def.name);
            for (p, v) in def.params.iter().zip(&sig.args) {
                let _ = writeln!(out, "  {:<28} {}", p.to_string(), v.display());
            }
            if let Some(ann) = self.annotated.get(&def.name) {
                let mut rows = Vec::new();
                ann.body.report_rows(&mut rows);
                for (desc, val) in rows {
                    let _ = writeln!(out, "  {desc:<28} {val}");
                }
            }
            let _ = writeln!(out, "  {:<28} {}", "result", sig.result.display());
        }
        out
    }
}

/// Runs facet analysis (Figure 4) on `program`'s main function with the
/// given abstract inputs.
///
/// # Errors
///
/// [`OfflineError::HigherOrder`] for programs using Section 5.5 forms
/// (analyze those with [`crate::higher_order`]); [`OfflineError`] variants
/// for arity/facet mismatches.
pub fn analyze(
    program: &Program,
    facets: &FacetSet,
    inputs: &[AbstractInput],
) -> Result<Analysis, OfflineError> {
    analyze_fn(program, facets, program.main().name, inputs)
}

/// Runs facet analysis under an explicit budget/policy configuration.
///
/// Only the wall-clock budget applies to analysis (its fixpoint is
/// guaranteed to converge; the deadline guards against pathological
/// iteration counts). Under `ExhaustionPolicy::Degrade` an expired
/// deadline widens *every* signature — arguments and results — to fully
/// dynamic and annotates at that sound fixpoint instead of failing.
///
/// # Errors
///
/// As for [`analyze`], plus [`OfflineError::DeadlineExceeded`] under
/// `ExhaustionPolicy::Fail`.
pub fn analyze_with_config(
    program: &Program,
    facets: &FacetSet,
    inputs: &[AbstractInput],
    config: &PeConfig,
) -> Result<Analysis, OfflineError> {
    analyze_fn_with_config(program, facets, program.main().name, inputs, config)
}

/// Runs facet analysis with an arbitrary entry function.
///
/// # Errors
///
/// As for [`analyze`].
pub fn analyze_fn(
    program: &Program,
    facets: &FacetSet,
    entry: Symbol,
    inputs: &[AbstractInput],
) -> Result<Analysis, OfflineError> {
    analyze_fn_with_config(program, facets, entry, inputs, &PeConfig::default())
}

/// Runs facet analysis with an arbitrary entry function and an explicit
/// budget/policy configuration (see [`analyze_with_config`]).
///
/// # Errors
///
/// As for [`analyze_with_config`].
pub fn analyze_fn_with_config(
    program: &Program,
    facets: &FacetSet,
    entry: Symbol,
    inputs: &[AbstractInput],
    config: &PeConfig,
) -> Result<Analysis, OfflineError> {
    if program.is_higher_order() {
        return Err(OfflineError::HigherOrder);
    }
    let def = program
        .lookup(entry)
        .ok_or(OfflineError::UnknownFunction(entry))?;
    if def.arity() != inputs.len() {
        return Err(OfflineError::InputArity {
            function: entry,
            expected: def.arity(),
            got: inputs.len(),
        });
    }
    let aset = facets.abstract_set();
    let lowered: Vec<AbstractProductVal> = inputs
        .iter()
        .map(|i| i.lower(facets, &aset))
        .collect::<Result<_, _>>()?;

    let mut sig = SigEnv::new();
    sig.insert(
        entry,
        FacetSignature {
            args: lowered.clone(),
            result: AbstractProductVal::bottom(&aset),
        },
    );

    // The h̃ iteration: analyze every reached function at its current
    // signature arguments; absorb result and call-site contributions;
    // repeat until stable. The governor supplies the wall-clock guard:
    // per-iteration checks, since per-node ticks would dominate the
    // analysis cost.
    let mut gov = Governor::new(config);
    let mut iterations = 0;
    loop {
        iterations += 1;
        if iterations > MAX_ITERATIONS {
            return Err(OfflineError::NoFixpoint);
        }
        gov.check_deadline().map_err(OfflineError::from)?;
        if gov.is_exhausted() {
            // Degrade: widen every signature — arguments *and* results —
            // to fully dynamic. That is a (maximal) sound fixpoint, so the
            // annotation pass below stays correct; it merely promises no
            // static reductions. Widening only parts of a signature would
            // be unsound.
            let widened: Vec<(Symbol, FacetSignature)> = sig
                .iter()
                .map(|(f, s)| {
                    (
                        f,
                        FacetSignature {
                            args: s.args.iter().map(|a| a.clone().force_dynamic()).collect(),
                            result: s.result.clone().force_dynamic(),
                        },
                    )
                })
                .collect();
            for (f, s) in widened {
                sig.insert(f, s);
            }
            break;
        }
        // The snapshot fixes this iteration's reads (all functions are
        // analyzed at the same generation of arguments); it is cheap to
        // take, since signatures clone by reference count. Stabilization
        // is detected by `absorb`'s change reports rather than a deep
        // environment comparison.
        let snapshot = sig.clone();
        let mut changed = false;
        for d in program.defs() {
            let Some(s) = snapshot.get(d.name) else {
                continue; // not reached yet
            };
            let mut env: Vec<(Symbol, AbstractProductVal)> = d
                .params
                .iter()
                .copied()
                .zip(s.args.iter().cloned())
                .collect();
            let mut calls = Vec::new();
            let result = eval_abs(&d.body, &mut env, &sig, &aset, &mut calls);
            changed |= sig.absorb(
                d.name,
                &FacetSignature {
                    args: s.args.clone(),
                    result,
                },
                &aset,
            );
            for (g, args) in calls {
                let arity = args.len();
                let contribution = FacetSignature {
                    args,
                    result: sig
                        .get(g)
                        .map(|gs| gs.result.clone())
                        .unwrap_or_else(|| FacetSignature::bottom(arity, &aset).result),
                };
                changed |= sig.absorb(g, &contribution, &aset);
            }
        }
        if !changed {
            break;
        }
    }

    // Annotation pass at the fixpoint.
    let mut annotated = HashMap::new();
    for d in program.defs() {
        let Some(s) = sig.get(d.name) else { continue };
        let mut env: Vec<(Symbol, AbstractProductVal)> = d
            .params
            .iter()
            .copied()
            .zip(s.args.iter().cloned())
            .collect();
        let body = annotate(&d.body, &mut env, &sig, &aset);
        annotated.insert(
            d.name,
            AnnFunDef {
                name: d.name,
                params: d.params.clone(),
                body,
            },
        );
    }

    Ok(Analysis {
        signatures: sig,
        annotated,
        iterations,
        entry,
        inputs: lowered,
        degradation: gov.into_report(),
        aset,
    })
}

/// The valuation function `Ẽ` of Figure 4.
fn eval_abs(
    e: &Expr,
    env: &mut Vec<(Symbol, AbstractProductVal)>,
    sig: &SigEnv,
    aset: &AbstractFacetSet,
    calls: &mut Vec<(Symbol, Vec<AbstractProductVal>)>,
) -> AbstractProductVal {
    match e {
        Expr::Const(c) => AbstractProductVal::from_const(*c, aset),
        Expr::Var(x) => env
            .iter()
            .rev()
            .find(|(n, _)| n == x)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| AbstractProductVal::bottom(aset)),
        Expr::Prim(p, args) => {
            let vals: Vec<AbstractProductVal> = args
                .iter()
                .map(|a| eval_abs(a, env, sig, aset, calls))
                .collect();
            aset.abstract_prim(*p, &vals).value
        }
        Expr::If(c, t, f) => {
            let cv = eval_abs(c, env, sig, aset, calls);
            let tv = eval_abs(t, env, sig, aset, calls);
            let fv = eval_abs(f, env, sig, aset, calls);
            if cv.is_bottom(aset) {
                AbstractProductVal::bottom(aset)
            } else if cv.bt().is_static() {
                tv.join(&fv, aset)
            } else {
                // (Dynamic, δ̃₂² ⊔ δ̃₃², …) — Figure 4's dynamic-test rule.
                tv.join(&fv, aset).force_dynamic()
            }
        }
        Expr::Let(x, b, body) => {
            let bv = eval_abs(b, env, sig, aset, calls);
            env.push((*x, bv));
            let out = eval_abs(body, env, sig, aset, calls);
            env.pop();
            out
        }
        Expr::Call(f, args) => {
            let vals: Vec<AbstractProductVal> = args
                .iter()
                .map(|a| eval_abs(a, env, sig, aset, calls))
                .collect();
            calls.push((*f, vals.clone()));
            if vals.iter().any(|v| v.bt().is_dynamic()) {
                // Figure 4: any dynamic argument makes the call's value
                // fully dynamic.
                AbstractProductVal::dynamic(aset)
            } else if vals.iter().any(|v| v.is_bottom(aset)) {
                AbstractProductVal::bottom(aset)
            } else {
                // ζ[f](δ̃…) approximated by the current signature result.
                sig.get(*f)
                    .map(|s| s.result.clone())
                    .unwrap_or_else(|| AbstractProductVal::bottom(aset))
            }
        }
        // First-order analysis; callers have already rejected HO programs.
        Expr::Lambda(..) | Expr::App(..) | Expr::FnRef(_) => AbstractProductVal::dynamic(aset),
    }
}

/// The annotation pass: re-runs `Ẽ` at the fixpoint, recording per-node
/// values and specializer actions.
fn annotate(
    e: &Expr,
    env: &mut Vec<(Symbol, AbstractProductVal)>,
    sig: &SigEnv,
    aset: &AbstractFacetSet,
) -> AnnExpr {
    match e {
        Expr::Const(c) => AnnExpr {
            value: AbstractProductVal::from_const(*c, aset),
            kind: AnnKind::Const(*c),
        },
        Expr::Var(x) => AnnExpr {
            value: env
                .iter()
                .rev()
                .find(|(n, _)| n == x)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| AbstractProductVal::bottom(aset)),
            kind: AnnKind::Var(*x),
        },
        Expr::Prim(p, args) => {
            let ann_args: Vec<AnnExpr> = args.iter().map(|a| annotate(a, env, sig, aset)).collect();
            let vals: Vec<AbstractProductVal> = ann_args.iter().map(|a| a.value.clone()).collect();
            let r = aset.abstract_prim(*p, &vals);
            let action = if r.value.bt().is_static() {
                // Prefer the cheapest source: the PE facet (standard
                // evaluation) when it suffices, otherwise the first facet
                // whose open operator proved staticness.
                let source = r.static_sources.first().copied().unwrap_or(0);
                PrimAction::Reduce { source }
            } else {
                PrimAction::Residualize
            };
            AnnExpr {
                value: r.value,
                kind: AnnKind::Prim {
                    p: *p,
                    args: ann_args,
                    action,
                },
            }
        }
        Expr::If(c, t, f) => {
            let cond = annotate(c, env, sig, aset);
            let then_branch = annotate(t, env, sig, aset);
            let else_branch = annotate(f, env, sig, aset);
            let static_cond = cond.value.bt().is_static();
            let joined = then_branch.value.join(&else_branch.value, aset);
            let value = if cond.value.is_bottom(aset) {
                AbstractProductVal::bottom(aset)
            } else if static_cond {
                joined
            } else {
                joined.force_dynamic()
            };
            AnnExpr {
                value,
                kind: AnnKind::If {
                    cond: Box::new(cond),
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                    static_cond,
                },
            }
        }
        Expr::Let(x, b, body) => {
            let bound = annotate(b, env, sig, aset);
            env.push((*x, bound.value.clone()));
            let body_ann = annotate(body, env, sig, aset);
            env.pop();
            AnnExpr {
                value: body_ann.value.clone(),
                kind: AnnKind::Let {
                    x: *x,
                    bound: Box::new(bound),
                    body: Box::new(body_ann),
                },
            }
        }
        Expr::Call(f, args) => {
            let ann_args: Vec<AnnExpr> = args.iter().map(|a| annotate(a, env, sig, aset)).collect();
            let any_static = ann_args.iter().any(|a| a.value.bt().is_static());
            let action = if any_static {
                CallAction::Unfold
            } else {
                CallAction::Specialize
            };
            let value = if ann_args.iter().any(|a| a.value.bt().is_dynamic()) {
                AbstractProductVal::dynamic(aset)
            } else if ann_args.iter().any(|a| a.value.is_bottom(aset)) {
                AbstractProductVal::bottom(aset)
            } else {
                sig.get(*f)
                    .map(|s| s.result.clone())
                    .unwrap_or_else(|| AbstractProductVal::bottom(aset))
            };
            AnnExpr {
                value,
                kind: AnnKind::Call {
                    f: *f,
                    args: ann_args,
                    action,
                },
            }
        }
        Expr::Lambda(..) | Expr::App(..) | Expr::FnRef(_) => {
            unreachable!("higher-order programs are rejected before annotation")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_core::facets::{AbstractSizeVal, SignFacet, SignVal, SizeFacet};
    use ppe_core::AbsVal;
    use ppe_lang::parse_program;

    const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

    fn size_inputs() -> Vec<AbstractInput> {
        vec![
            AbstractInput::dynamic().with_facet("size", AbsVal::new(AbstractSizeVal::StaticSize)),
            AbstractInput::dynamic().with_facet("size", AbsVal::new(AbstractSizeVal::StaticSize)),
        ]
    }

    #[test]
    fn figure_9_signature_for_iprod() {
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let analysis = analyze(&p, &facets, &size_inputs()).unwrap();

        // iprod's parameters: ⟨Dyn, s⟩ (Figure 9, first row).
        let iprod = analysis.signatures.get("iprod".into()).unwrap();
        assert_eq!(iprod.args[0].display(), "⟨Dyn, s⟩");
        assert_eq!(iprod.args[1].display(), "⟨Dyn, s⟩");

        // dotprod: A, B dynamic vectors; n Static (derived from vsize).
        let dotprod = analysis.signatures.get("dotprod".into()).unwrap();
        assert!(dotprod.args[2].bt().is_static(), "n must be Static");
        // The overall result is dynamic (elements unknown).
        assert!(dotprod.result.bt().is_dynamic());
    }

    #[test]
    fn figure_9_annotations_for_dotprod() {
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let analysis = analyze(&p, &facets, &size_inputs()).unwrap();
        let dot = &analysis.annotated[&Symbol::intern("dotprod")];
        // The conditional test (= n 0) is static (Figure 9's ⟨Stat⟩).
        let AnnKind::If {
            static_cond, cond, ..
        } = &dot.body.kind
        else {
            panic!("dotprod body should be an if");
        };
        assert!(static_cond);
        assert!(cond.value.bt().is_static());
    }

    #[test]
    fn vsize_reduction_is_attributed_to_the_size_facet() {
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let analysis = analyze(&p, &facets, &size_inputs()).unwrap();
        let iprod = &analysis.annotated[&Symbol::intern("iprod")];
        let AnnKind::Let { bound, .. } = &iprod.body.kind else {
            panic!("iprod body should be a let");
        };
        let AnnKind::Prim { action, .. } = &bound.kind else {
            panic!("bound expression should be (vsize a)");
        };
        // Source 1 = user facet 0 = the Size facet: the analysis selected
        // the reduction operation in advance (the paper's contribution 3).
        assert_eq!(*action, PrimAction::Reduce { source: 1 });
    }

    #[test]
    fn binding_time_only_analysis_is_conventional_bta() {
        // Without facets, the analysis is exactly a monovariant BTA.
        let src = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let analysis = analyze(
            &p,
            &facets,
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        )
        .unwrap();
        let sig = analysis.signatures.get("power".into()).unwrap();
        assert!(sig.args[0].bt().is_dynamic());
        assert!(sig.args[1].bt().is_static());
        // The result depends on the dynamic x.
        assert!(sig.result.bt().is_dynamic());
        // The recursive call is annotated Unfold (n is static).
        let ann = &analysis.annotated[&Symbol::intern("power")];
        let mut rows = Vec::new();
        ann.body.report_rows(&mut rows);
        assert!(
            rows.iter().any(|(d, _)| d.contains("call power [unfold]")),
            "{rows:?}"
        );
    }

    #[test]
    fn dynamic_conditional_forces_dynamic_bt_but_keeps_facets() {
        // if (dynamic) then -1 else -2: result sign is neg either way.
        let src = "(define (f x) (if (< x 0) -1 -2))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let analysis = analyze(&p, &facets, &[AbstractInput::dynamic()]).unwrap();
        let sig = analysis.signatures.get("f".into()).unwrap();
        assert!(sig.result.bt().is_dynamic());
        assert_eq!(
            sig.result.facet(0).downcast_ref::<SignVal>(),
            Some(&SignVal::Neg)
        );
    }

    #[test]
    fn sign_facet_statically_decides_comparisons() {
        let src = "(define (f x) (if (< (* x x) 0) 1 2))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let analysis = analyze(
            &p,
            &facets,
            &[AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg))],
        )
        .unwrap();
        let ann = &analysis.annotated[&Symbol::intern("f")];
        let AnnKind::If { static_cond, .. } = &ann.body.kind else {
            panic!("f body should be an if");
        };
        // x neg ⇒ x*x pos ⇒ (< pos 0) decided by the Sign abstract facet.
        assert!(static_cond);
        // And the result is the constant branch join: Static.
        assert!(ann.body.value.bt().is_static());
    }

    #[test]
    fn higher_order_programs_are_rejected() {
        let p = parse_program("(define (f g x) (g x))").unwrap();
        let facets = FacetSet::new();
        let err = analyze(
            &p,
            &facets,
            &[AbstractInput::dynamic(), AbstractInput::dynamic()],
        )
        .unwrap_err();
        assert_eq!(err, OfflineError::HigherOrder);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = parse_program("(define (f x) x)").unwrap();
        let facets = FacetSet::new();
        let err = analyze(&p, &facets, &[]).unwrap_err();
        assert!(matches!(err, OfflineError::InputArity { .. }));
    }

    #[test]
    fn report_contains_figure_9_rows() {
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let analysis = analyze(&p, &facets, &size_inputs()).unwrap();
        let report = analysis.report(&p);
        assert!(report.contains("iprod:"), "{report}");
        assert!(report.contains("⟨Dyn, s⟩"), "{report}");
        assert!(report.contains("if-test [static]"), "{report}");
    }

    #[test]
    fn fixpoint_terminates_with_widening_on_ranges() {
        // A loop that grows its static argument: the Range facet's
        // interval widens instead of climbing forever.
        use ppe_core::facets::RangeFacet;
        let src = "(define (f n) (if (< n 0) n (f (+ n 1))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
        let analysis = analyze(&p, &facets, &[AbstractInput::static_()]).unwrap();
        assert!(analysis.iterations < 100);
    }
}
