//! Annotated (two-level) syntax: the output of facet analysis that drives
//! the offline specializer.
//!
//! Facet analysis does more than compute signatures: for every expression
//! it decides *in advance* what the specializer will do — reduce a
//! primitive (and by *which facet's* operator), take a branch statically,
//! unfold a call, or rebuild. This realizes the paper's third contribution:
//! "not only does the facet analysis statically determine which properties
//! trigger computations, but it also selects the corresponding reduction
//! operations prior to specialization" (Section 1).

use ppe_core::AbstractProductVal;
use ppe_lang::{Const, Prim, Symbol};

/// What the specializer does at a primitive application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrimAction {
    /// Reduce to a constant. `source` is the component that guarantees the
    /// constant: `0` is the partial-evaluation facet (all arguments are
    /// constants — compute by standard evaluation), `i + 1` is user facet
    /// `i` (invoke that facet's open operator).
    Reduce {
        /// Which product component produces the constant.
        source: usize,
    },
    /// Rebuild the application in the residual program.
    Residualize,
}

/// What the specializer does at a function call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallAction {
    /// Unfold the call (some argument is static).
    Unfold,
    /// Fold onto a specialized residual function.
    Specialize,
}

/// An annotated expression: the source shape plus the abstract product
/// computed by facet analysis and the pre-selected specializer action.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnExpr {
    /// The abstract product of facet values of this expression.
    pub value: AbstractProductVal,
    /// The annotated node.
    pub kind: AnnKind,
}

/// The node alternatives of [`AnnExpr`].
#[derive(Clone, Debug, PartialEq)]
pub enum AnnKind {
    /// A constant.
    Const(Const),
    /// A variable.
    Var(Symbol),
    /// A primitive application with its pre-selected action.
    Prim {
        /// The operator.
        p: Prim,
        /// Annotated arguments.
        args: Vec<AnnExpr>,
        /// Reduce or rebuild.
        action: PrimAction,
    },
    /// A conditional; `static_cond` records whether analysis proved the
    /// test static (the branch decision happens at specialization time).
    If {
        /// The annotated test.
        cond: Box<AnnExpr>,
        /// The annotated consequent.
        then_branch: Box<AnnExpr>,
        /// The annotated alternative.
        else_branch: Box<AnnExpr>,
        /// True iff the test's binding time is `Static`.
        static_cond: bool,
    },
    /// A call of a top-level function with its pre-selected treatment.
    Call {
        /// The callee.
        f: Symbol,
        /// Annotated arguments.
        args: Vec<AnnExpr>,
        /// Unfold or specialize.
        action: CallAction,
    },
    /// A `let` binding.
    Let {
        /// The bound variable.
        x: Symbol,
        /// The annotated bound expression.
        bound: Box<AnnExpr>,
        /// The annotated body.
        body: Box<AnnExpr>,
    },
}

impl AnnExpr {
    /// Collects `(description, value)` rows for reporting in the style of
    /// the paper's Figure 9 (one row per primitive, call and conditional
    /// test).
    pub fn report_rows(&self, out: &mut Vec<(String, String)>) {
        match &self.kind {
            AnnKind::Const(_) | AnnKind::Var(_) => {}
            AnnKind::Prim { p, args, action } => {
                for a in args {
                    a.report_rows(out);
                }
                let action_str = match action {
                    PrimAction::Reduce { source: 0 } => " [reduce: PE]".to_owned(),
                    PrimAction::Reduce { source } => format!(" [reduce: facet {}]", source - 1),
                    PrimAction::Residualize => String::new(),
                };
                out.push((format!("({p} …){action_str}"), self.value.display()));
            }
            AnnKind::If {
                cond,
                then_branch,
                else_branch,
                static_cond,
            } => {
                cond.report_rows(out);
                out.push((
                    format!(
                        "if-test [{}]",
                        if *static_cond { "static" } else { "dynamic" }
                    ),
                    cond.value.display(),
                ));
                then_branch.report_rows(out);
                else_branch.report_rows(out);
            }
            AnnKind::Call { f, args, action } => {
                for a in args {
                    a.report_rows(out);
                }
                out.push((
                    format!(
                        "call {f} [{}]",
                        match action {
                            CallAction::Unfold => "unfold",
                            CallAction::Specialize => "specialize",
                        }
                    ),
                    self.value.display(),
                ));
            }
            AnnKind::Let { bound, body, x } => {
                bound.report_rows(out);
                out.push((format!("let {x}"), bound.value.display()));
                body.report_rows(out);
            }
        }
    }
}

/// An annotated function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnFunDef {
    /// The function's name.
    pub name: Symbol,
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// The annotated body.
    pub body: AnnExpr,
}

#[cfg(test)]
mod tests {
    use crate::analysis::{analyze, AbstractInput};
    use crate::annotate::{AnnKind, CallAction, PrimAction};
    use ppe_core::FacetSet;
    use ppe_lang::parse_program;

    fn rows_of(src: &str, inputs: &[AbstractInput]) -> Vec<(String, String)> {
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let analysis = analyze(&p, &facets, inputs).unwrap();
        let ann = &analysis.annotated[&p.main().name];
        let mut rows = Vec::new();
        ann.body.report_rows(&mut rows);
        rows
    }

    #[test]
    fn rows_cover_prims_ifs_lets_and_calls() {
        let rows = rows_of(
            "(define (f x n)
               (let ((m (+ n 1)))
                 (if (= m 0) x (g x m))))
             (define (g x m) x)",
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        );
        let descs: Vec<&str> = rows.iter().map(|(d, _)| d.as_str()).collect();
        assert!(
            descs.iter().any(|d| d.contains("(+ …) [reduce: PE]")),
            "{descs:?}"
        );
        assert!(descs.iter().any(|d| d.contains("let m")), "{descs:?}");
        assert!(
            descs.iter().any(|d| d.contains("if-test [static]")),
            "{descs:?}"
        );
        assert!(
            descs.iter().any(|d| d.contains("call g [unfold]")),
            "{descs:?}"
        );
    }

    #[test]
    fn dynamic_everything_reports_residual_actions() {
        let rows = rows_of(
            "(define (f x) (if (< x 0) (f (+ x 1)) x))",
            &[AbstractInput::dynamic()],
        );
        let descs: Vec<&str> = rows.iter().map(|(d, _)| d.as_str()).collect();
        assert!(
            descs.iter().any(|d| d.contains("if-test [dynamic]")),
            "{descs:?}"
        );
        assert!(
            descs.iter().any(|d| d.contains("call f [specialize]")),
            "{descs:?}"
        );
        assert!(
            descs.iter().all(|d| !d.contains("[reduce")),
            "nothing reduces: {descs:?}"
        );
    }

    #[test]
    fn actions_compare_and_debug() {
        assert_eq!(
            PrimAction::Reduce { source: 0 },
            PrimAction::Reduce { source: 0 }
        );
        assert_ne!(PrimAction::Reduce { source: 0 }, PrimAction::Residualize);
        assert_ne!(CallAction::Unfold, CallAction::Specialize);
        let k = AnnKind::Var(ppe_lang::Symbol::intern("v"));
        assert!(format!("{k:?}").contains("Var"));
    }
}
