//! Errors raised by facet analysis and the offline specializer.

use std::error::Error;
use std::fmt;

use ppe_lang::Symbol;

/// An error raised during facet analysis or offline specialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OfflineError {
    /// The subject program does not define the requested function.
    UnknownFunction(Symbol),
    /// The number of abstract inputs does not match the entry arity.
    InputArity {
        /// The entry function.
        function: Symbol,
        /// Its declared arity.
        expected: usize,
        /// Number of inputs supplied.
        got: usize,
    },
    /// An input referenced a facet name not present in the facet set.
    UnknownFacet(String),
    /// The program uses the higher-order forms of Section 5.5, which the
    /// first-order analysis/specializer does not handle — use
    /// [`crate::higher_order`] for analysis of such programs.
    HigherOrder,
    /// The signature fixpoint failed to stabilize within the iteration cap
    /// (should be impossible for finite-height facets with correct
    /// widening; reported rather than looping).
    NoFixpoint,
    /// Specialization-time inputs are not approximated by the inputs the
    /// analysis was run with; the annotations would be unsound for them.
    InputsIncompatibleWithAnalysis,
    /// An annotation promised a reduction the specializer could not
    /// perform. The shipped specializer no longer raises this — a missed
    /// promise can only come from a `⊥`-denoting static subcomputation,
    /// which is residualized instead — but the variant remains for
    /// downstream specializers built on the annotations.
    AnnotationMismatch(String),
    /// The specializer exceeded its budget of specialized functions.
    SpecializationLimit(usize),
    /// The specializer's work budget was exhausted (offline specialization
    /// can diverge when unfolding does not consume static data; this is
    /// the classical caveat, reported as an error).
    OutOfFuel,
    /// The residual program failed validation (an internal invariant).
    MalformedResidual(String),
    /// The wall-clock budget (`PeConfig::deadline`) expired during
    /// analysis or specialization.
    DeadlineExceeded,
    /// The residual program outgrew `PeConfig::max_residual_size` nodes.
    ResidualSizeLimit(usize),
    /// The specializer's recursion guard fired — the structured stand-in
    /// for a native stack overflow.
    DepthLimit(u32),
}

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfflineError::UnknownFunction(g) => write!(f, "unknown function `{g}`"),
            OfflineError::InputArity {
                function,
                expected,
                got,
            } => write!(f, "`{function}` expects {expected} inputs, got {got}"),
            OfflineError::UnknownFacet(name) => write!(f, "unknown facet `{name}`"),
            OfflineError::HigherOrder => {
                f.write_str("program is higher order; use the higher-order facet analysis")
            }
            OfflineError::NoFixpoint => {
                f.write_str("facet analysis did not reach a fixpoint within bounds")
            }
            OfflineError::InputsIncompatibleWithAnalysis => {
                f.write_str("specialization inputs are not covered by the analyzed input pattern")
            }
            OfflineError::AnnotationMismatch(msg) => {
                write!(f, "annotation mismatch during specialization: {msg}")
            }
            OfflineError::SpecializationLimit(n) => {
                write!(f, "specialization cache exceeded {n} entries")
            }
            OfflineError::OutOfFuel => f.write_str("specialization fuel exhausted"),
            OfflineError::MalformedResidual(msg) => {
                write!(f, "internal error: residual program is malformed: {msg}")
            }
            OfflineError::DeadlineExceeded => f.write_str("specialization deadline exceeded"),
            OfflineError::ResidualSizeLimit(n) => {
                write!(f, "residual program exceeded {n} expression nodes")
            }
            OfflineError::DepthLimit(n) => {
                write!(f, "specializer recursion depth exceeded {n}")
            }
        }
    }
}

impl Error for OfflineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        for e in [
            OfflineError::HigherOrder,
            OfflineError::NoFixpoint,
            OfflineError::OutOfFuel,
        ] {
            let s = e.to_string();
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }
}
