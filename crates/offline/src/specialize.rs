//! The offline specializer: follows the annotations produced by facet
//! analysis.
//!
//! "The task of program specialization reduces to following the
//! information yielded by the facet analysis" (Section 5). Where the
//! online evaluator consults every facet's open operator at every
//! primitive and decides branches and unfoldings on the fly, this walk
//! performs exactly the pre-selected actions: [`PrimAction::Reduce`]
//! invokes the one operator the analysis chose, static conditionals take
//! their branch without examining alternatives' values, and call
//! treatment is fixed per call site.
//!
//! The classical caveat of offline partial evaluation applies: when
//! unfolding does not consume static data the specializer does not
//! terminate by itself; budgets turn that into
//! [`OfflineError::OutOfFuel`].

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use ppe_core::{FacetArg, FacetSet, PeVal, ProductVal};
use ppe_lang::StdOpClass;
use ppe_lang::{Const, Expr, FunDef, Prim, Program, Symbol, Value};
use ppe_online::spec_eval::{self, BuildAddrHasher, SpecEvalBackend, StaticSubtree};
use ppe_online::{ExhaustionPolicy, Governor, PeConfig, PeError, PeInput, PeStats, Residual};

use crate::analysis::{abstract_of_product, Analysis};
use crate::annotate::{AnnExpr, AnnFunDef, AnnKind, CallAction, PrimAction};
use crate::error::OfflineError;

impl From<PeError> for OfflineError {
    fn from(e: PeError) -> OfflineError {
        match e {
            PeError::UnknownFunction(f) => OfflineError::UnknownFunction(f),
            PeError::InputArity {
                function,
                expected,
                got,
            } => OfflineError::InputArity {
                function,
                expected,
                got,
            },
            PeError::UnknownFacet(n) => OfflineError::UnknownFacet(n),
            PeError::SpecializationLimit(n) => OfflineError::SpecializationLimit(n),
            PeError::OutOfFuel => OfflineError::OutOfFuel,
            PeError::InconsistentInput(_) => OfflineError::InputsIncompatibleWithAnalysis,
            PeError::MalformedResidual(m) => OfflineError::MalformedResidual(m),
            PeError::DeadlineExceeded => OfflineError::DeadlineExceeded,
            PeError::ResidualSizeLimit(n) => OfflineError::ResidualSizeLimit(n),
            PeError::DepthLimit(n) => OfflineError::DepthLimit(n),
        }
    }
}

/// The offline parameterized partial evaluator (Section 5).
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::SizeFacet, size_of, FacetSet};
/// use ppe_lang::parse_program;
/// use ppe_offline::{analyze, AbstractInput, OfflinePe};
/// use ppe_online::PeInput;
///
/// let program = parse_program(
///     "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
///      (define (dotprod a b n)
///        (if (= n 0) 0.0
///            (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
/// )?;
/// let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
/// let inputs = [
///     PeInput::dynamic().with_facet("size", size_of(3)),
///     PeInput::dynamic().with_facet("size", size_of(3)),
/// ];
/// // Phase 1: facet analysis at the inputs' abstraction.
/// let abstract_inputs: Vec<AbstractInput> = inputs
///     .iter()
///     .map(|i| AbstractInput::of_product(i.to_product(&facets).unwrap()))
///     .collect();
/// let analysis = analyze(&program, &facets, &abstract_inputs)?;
/// // Phase 2: specialization follows the annotations.
/// let pe = OfflinePe::new(&program, &facets, &analysis);
/// let residual = pe.specialize(&inputs)?;
/// assert_eq!(residual.program.defs().len(), 1); // Figure 8 again
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OfflinePe<'a> {
    program: &'a Program,
    facets: &'a FacetSet,
    analysis: &'a Analysis,
    config: PeConfig,
}

struct Env {
    stack: Vec<(Symbol, Expr, ProductVal)>,
}

struct St {
    /// `Sf`: pattern → (residual name, result product once known); the
    /// result product preserves facet information across folded calls.
    cache: HashMap<(Symbol, Vec<ProductVal>), (Symbol, Option<ProductVal>)>,
    def_order: Vec<Symbol>,
    defs: HashMap<Symbol, Option<FunDef>>,
    used_names: HashSet<Symbol>,
    tmp_counter: u64,
    stats: PeStats,
    gov: Governor,
    /// VM shortcut state when [`PeConfig::spec_eval`] installs a backend.
    spec: Option<OffSpec>,
}

/// Offline flavor of [`ppe_online::spec_eval::SpecState`]: the memo keys on
/// *annotated* node addresses and holds the stripped plain expression next
/// to its subtree facts, since the VM consumes [`Expr`]s.
struct OffSpec {
    backend: Arc<dyn SpecEvalBackend>,
    memo: HashMap<usize, Option<Rc<Stripped>>, BuildAddrHasher>,
    /// Reused argument buffer for backend calls (one attempt live at a
    /// time).
    args_buf: Vec<Value>,
}

struct Stripped {
    expr: Expr,
    info: Rc<StaticSubtree>,
}

/// Rebuilds the plain expression under an annotated subtree, `None` as soon
/// as any node falls outside the shortcut grammar: only constants,
/// variables, `let`, and primitives the analysis marked
/// `Reduce {source: 0}` (all-arguments-static, concrete evaluation) — the
/// one action whose folding the VM replays exactly. Facet-sourced
/// reductions (`source > 0`) consult abstract values the VM does not model,
/// and `Residualize` must stay residual. The mapping is 1:1 per node, so
/// the stripped expression's size equals the ticks the annotated walk
/// would spend.
fn strip_static(e: &AnnExpr) -> Option<Expr> {
    match &e.kind {
        AnnKind::Const(c) => Some(Expr::Const(*c)),
        AnnKind::Var(x) => Some(Expr::Var(*x)),
        AnnKind::Prim { p, args, action } => {
            if *action != (PrimAction::Reduce { source: 0 })
                || matches!(p, Prim::MkVec | Prim::UpdVec)
            {
                return None;
            }
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(strip_static(a)?);
            }
            Some(Expr::Prim(*p, out))
        }
        AnnKind::Let { x, bound, body } => Some(Expr::Let(
            *x,
            Box::new(strip_static(bound)?),
            Box::new(strip_static(body)?),
        )),
        _ => None,
    }
}

/// Mints a fresh residual function name. A free function over the name set
/// (rather than a method on [`St`]) so it can run while a cache entry handle
/// still borrows `St::cache`.
fn fresh_fn(used_names: &mut HashSet<Symbol>, base: Symbol) -> Symbol {
    let mut n = 1u64;
    loop {
        let candidate = Symbol::intern(&format!("{base}_{n}"));
        if !used_names.contains(&candidate) {
            used_names.insert(candidate);
            return candidate;
        }
        n += 1;
    }
}

impl St {
    fn fresh_tmp(&mut self) -> Symbol {
        loop {
            self.tmp_counter += 1;
            let candidate = Symbol::intern(&format!("tmp_{}", self.tmp_counter));
            if !self.used_names.contains(&candidate) {
                return candidate;
            }
        }
    }

    fn spend(&mut self) -> Result<(), OfflineError> {
        self.stats.steps += 1;
        Ok(self.gov.tick()?)
    }
}

impl<'a> OfflinePe<'a> {
    /// Creates an offline specializer from a completed [`Analysis`].
    pub fn new(
        program: &'a Program,
        facets: &'a FacetSet,
        analysis: &'a Analysis,
    ) -> OfflinePe<'a> {
        OfflinePe {
            program,
            facets,
            analysis,
            config: PeConfig::default(),
        }
    }

    /// Creates an offline specializer with an explicit policy.
    pub fn with_config(
        program: &'a Program,
        facets: &'a FacetSet,
        analysis: &'a Analysis,
        config: PeConfig,
    ) -> OfflinePe<'a> {
        OfflinePe {
            program,
            facets,
            analysis,
            config,
        }
    }

    /// Specializes the analyzed entry function with respect to `inputs`.
    ///
    /// # Errors
    ///
    /// [`OfflineError::InputsIncompatibleWithAnalysis`] when an input is
    /// not approximated by the abstract input the analysis was run with;
    /// otherwise the usual budget and validation errors.
    pub fn specialize(&self, inputs: &[PeInput]) -> Result<Residual, OfflineError> {
        let entry = self.analysis.entry;
        let ann = self
            .analysis
            .annotated
            .get(&entry)
            .ok_or(OfflineError::UnknownFunction(entry))?;
        if ann.params.len() != inputs.len() {
            return Err(OfflineError::InputArity {
                function: entry,
                expected: ann.params.len(),
                got: inputs.len(),
            });
        }
        let mut st = St {
            cache: HashMap::new(),
            def_order: Vec::new(),
            defs: HashMap::new(),
            used_names: self.reserved_names(),
            tmp_counter: 0,
            stats: PeStats::default(),
            gov: Governor::new(&self.config),
            spec: self.config.spec_eval.clone().map(|backend| OffSpec {
                backend,
                memo: HashMap::default(),
                args_buf: Vec::new(),
            }),
        };
        let mut env = Env { stack: Vec::new() };
        let mut kept_params = Vec::new();
        for ((param, input), analyzed) in ann.params.iter().zip(inputs).zip(&self.analysis.inputs) {
            let product = input.to_product(self.facets)?;
            // Soundness gate: specialization inputs must refine what the
            // analysis assumed.
            let abstracted = abstract_of_product(&product, &self.analysis.aset);
            if !abstracted.leq(analyzed, &self.analysis.aset) {
                return Err(OfflineError::InputsIncompatibleWithAnalysis);
            }
            if let PeVal::Const(c) = product.pe() {
                env.stack.push((*param, Expr::Const(*c), product));
            } else {
                kept_params.push(*param);
                env.stack.push((*param, Expr::Var(*param), product));
            }
        }
        let (body, _) = self.walk(&ann.body, &mut env, 0, &mut st)?;
        st.gov.add_residual_size(body.size(), entry)?;
        // Drop parameters the residual no longer mentions (mirrors the
        // online specializer).
        let mut free = Vec::new();
        body.free_vars(&mut free);
        kept_params.retain(|p| free.contains(p));
        let mut defs = vec![FunDef::new(entry, kept_params, body)];
        for dname in &st.def_order {
            match st.defs.remove(dname) {
                Some(Some(d)) => defs.push(d),
                _ => {
                    return Err(OfflineError::MalformedResidual(format!(
                        "specialized function `{dname}` was never completed"
                    )))
                }
            }
        }
        let program = Program::new(defs)
            .and_then(|p| p.validate().map(|()| p))
            .map_err(OfflineError::MalformedResidual)?;
        // One combined report: what the analysis degraded, then what the
        // specialization walk degraded.
        let mut report = self.analysis.degradation.clone();
        report.merge(&st.gov.into_report());
        Ok(Residual {
            program,
            stats: st.stats,
            report,
        })
    }

    fn reserved_names(&self) -> HashSet<Symbol> {
        let mut out = HashSet::new();
        for d in self.program.defs() {
            out.insert(d.name);
            out.extend(d.params.iter().copied());
            let mut fv = Vec::new();
            d.body.free_vars(&mut fv);
            out.extend(fv);
        }
        // Let-bound names matter too; collect them from the source text
        // by reusing the online evaluator's convention of uniqueness via
        // the tmp counter — collisions are prevented by scanning binders.
        fn binders(e: &Expr, out: &mut HashSet<Symbol>) {
            match e {
                Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => {}
                Expr::Prim(_, args) | Expr::Call(_, args) => {
                    args.iter().for_each(|a| binders(a, out));
                }
                Expr::If(a, b, c) => {
                    binders(a, out);
                    binders(b, out);
                    binders(c, out);
                }
                Expr::Let(x, a, b) => {
                    out.insert(*x);
                    binders(a, out);
                    binders(b, out);
                }
                Expr::Lambda(ps, b) => {
                    out.extend(ps.iter().copied());
                    binders(b, out);
                }
                Expr::App(f, args) => {
                    binders(f, out);
                    args.iter().for_each(|a| binders(a, out));
                }
            }
        }
        for d in self.program.defs() {
            binders(&d.body, &mut out);
        }
        out
    }

    /// Walks an annotated expression, performing the pre-selected actions.
    /// Runs behind the governor's recursion guard, so a runaway walk
    /// surfaces as [`OfflineError::DepthLimit`] instead of a native stack
    /// overflow.
    fn walk(
        &self,
        e: &AnnExpr,
        env: &mut Env,
        depth: u32,
        st: &mut St,
    ) -> Result<(Expr, ProductVal), OfflineError> {
        st.gov.enter_recursion().map_err(OfflineError::from)?;
        let out = self.walk_inner(e, env, depth, st);
        st.gov.exit_recursion();
        out
    }

    fn walk_inner(
        &self,
        e: &AnnExpr,
        env: &mut Env,
        depth: u32,
        st: &mut St,
    ) -> Result<(Expr, ProductVal), OfflineError> {
        st.spend()?;
        if st.spec.is_some()
            && st.gov.ticks() >= spec_eval::WARMUP_TICKS
            && matches!(&e.kind, AnnKind::Prim { .. } | AnnKind::Let { .. })
        {
            if let Some(hit) = self.try_spec_vm(e, env, st)? {
                return Ok(hit);
            }
        }
        match &e.kind {
            AnnKind::Const(c) => Ok((Expr::Const(*c), ProductVal::from_const(*c, self.facets))),
            AnnKind::Var(x) => {
                let found = env
                    .stack
                    .iter()
                    .rev()
                    .find(|(n, _, _)| n == x)
                    .map(|(_, e, v)| (e.clone(), v.clone()));
                found.ok_or_else(|| OfflineError::MalformedResidual(format!("unbound `{x}`")))
            }
            AnnKind::Prim { p, args, action } => {
                let mut residuals = Vec::with_capacity(args.len());
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let (r, v) = self.walk(a, env, depth, st)?;
                    residuals.push(r);
                    vals.push(v);
                }
                match action {
                    PrimAction::Reduce { source: 0 } => {
                        // All arguments are constants: standard evaluation.
                        let consts: Option<Vec<Const>> =
                            residuals.iter().map(Expr::as_const).collect();
                        if let Some(cs) = consts {
                            let concrete: Vec<Value> =
                                cs.iter().map(|c| Value::from_const(*c)).collect();
                            match p.eval(&concrete) {
                                Ok(v) => {
                                    if let Some(c) = v.to_const() {
                                        st.stats.reductions += 1;
                                        return Ok((
                                            Expr::Const(c),
                                            ProductVal::from_const(c, self.facets),
                                        ));
                                    }
                                    // Defined but not a constant (e.g.
                                    // `mkvec 3`): the value is fully known
                                    // at specialization time, so every
                                    // facet gets its exact abstraction,
                                    // but the expression stays residual.
                                    st.stats.residual_prims += 1;
                                    return Ok((
                                        Expr::Prim(*p, residuals),
                                        ProductVal::from_value(&v, self.facets),
                                    ));
                                }
                                Err(_) => {
                                    // The concrete operation denotes ⊥
                                    // (e.g. a division by zero): stay
                                    // residual — the paper's "modulo
                                    // termination" caveat.
                                    st.stats.residual_prims += 1;
                                    return Ok((
                                        Expr::Prim(*p, residuals),
                                        ProductVal::bottom(self.facets),
                                    ));
                                }
                            }
                        }
                        // An argument the analysis proved Static failed to
                        // become a constant: that happens exactly when a
                        // static subcomputation denoted ⊥ (the paper's
                        // "modulo termination" caveat). Residualize.
                        st.stats.residual_prims += 1;
                        let value = self.track_residual_prim(*p, &vals);
                        Ok((Expr::Prim(*p, residuals), value))
                    }
                    PrimAction::Reduce { source } => {
                        // The analysis selected a specific facet's open
                        // operator: invoke exactly that one.
                        let idx = *source - 1;
                        let facet = self.facets.facet(idx);
                        let wrapped: Vec<FacetArg<'_>> = vals
                            .iter()
                            .map(|v| FacetArg {
                                pe: v.pe(),
                                abs: v.facet(idx),
                            })
                            .collect();
                        match facet.open_op(*p, &wrapped) {
                            PeVal::Const(c) => {
                                st.stats.reductions += 1;
                                Ok((Expr::Const(c), ProductVal::from_const(c, self.facets)))
                            }
                            // Anything else is the ⊥-induced miss above
                            // (a sound facet can only fail to deliver its
                            // promised constant when the value denotes ⊥,
                            // Property 6): residualize.
                            _ => {
                                st.stats.residual_prims += 1;
                                let value = self.track_residual_prim(*p, &vals);
                                Ok((Expr::Prim(*p, residuals), value))
                            }
                        }
                    }
                    PrimAction::Residualize => {
                        st.stats.residual_prims += 1;
                        let value = self.track_residual_prim(*p, &vals);
                        Ok((Expr::Prim(*p, residuals), value))
                    }
                }
            }
            AnnKind::If {
                cond,
                then_branch,
                else_branch,
                static_cond,
            } => {
                let (cr, _cv) = self.walk(cond, env, depth, st)?;
                if *static_cond {
                    if let Expr::Const(cc) = cr {
                        if let Some(b) = cc.as_bool() {
                            st.stats.static_branches += 1;
                            return self.walk(
                                if b { then_branch } else { else_branch },
                                env,
                                depth,
                                st,
                            );
                        }
                    }
                    // The test denotes ⊥ at specialization time; fall
                    // through to the dynamic treatment (sound).
                }
                st.stats.dynamic_branches += 1;
                let (tr, tv) = self.walk(then_branch, env, depth, st)?;
                let (fr, fv) = self.walk(else_branch, env, depth, st)?;
                Ok((
                    Expr::If(Box::new(cr), Box::new(tr), Box::new(fr)),
                    tv.join(&fv, self.facets),
                ))
            }
            AnnKind::Let { x, bound, body } => {
                let (br, bv) = self.walk(bound, env, depth, st)?;
                let mark = env.stack.len();
                if matches!(br, Expr::Const(_) | Expr::Var(_)) {
                    env.stack.push((*x, br, bv));
                    let out = self.walk(body, env, depth, st);
                    env.stack.truncate(mark);
                    out
                } else {
                    env.stack.push((*x, Expr::Var(*x), bv));
                    let (bodyr, bodyv) = self.walk(body, env, depth, st)?;
                    env.stack.truncate(mark);
                    Ok((Expr::Let(*x, Box::new(br), Box::new(bodyr)), bodyv))
                }
            }
            AnnKind::Call { f, args, action } => {
                let mut residuals = Vec::with_capacity(args.len());
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let (r, v) = self.walk(a, env, depth, st)?;
                    residuals.push(r);
                    vals.push(v);
                }
                let callee = self
                    .analysis
                    .annotated
                    .get(f)
                    .ok_or(OfflineError::UnknownFunction(*f))?;
                match action {
                    CallAction::Unfold => {
                        if !st.gov.may_unfold(depth, self.config.max_unfold_depth, *f) {
                            // The annotations carry no pattern for a call
                            // the analysis decided to unfold. Fail reports
                            // divergence, as before; Degrade folds onto a
                            // fully generalized specialization — sound,
                            // because the walk residualizes wherever an
                            // annotation's optimism is not met.
                            if st.gov.policy() == ExhaustionPolicy::Fail {
                                return Err(OfflineError::OutOfFuel);
                            }
                            let pattern = vec![ProductVal::dynamic(self.facets); vals.len()];
                            return self.fold_call(*f, callee, pattern, residuals, st);
                        }
                        st.stats.unfolds += 1;
                        let mut inner = Env { stack: Vec::new() };
                        let mut lets = Vec::new();
                        for ((p, r), v) in callee.params.iter().zip(residuals).zip(vals) {
                            if matches!(r, Expr::Const(_) | Expr::Var(_)) {
                                inner.stack.push((*p, r, v));
                            } else {
                                let tmp = st.fresh_tmp();
                                lets.push((tmp, r));
                                inner.stack.push((*p, Expr::Var(tmp), v));
                            }
                        }
                        let (out, val) = self.walk(&callee.body, &mut inner, depth + 1, st)?;
                        Ok((wrap_lets(lets, out), val))
                    }
                    CallAction::Specialize => {
                        // Pattern: the facet-level information only (PE
                        // components are dynamic by the analysis). Once the
                        // governor is exhausted the pattern is generalized
                        // so the cache stops growing.
                        let pattern: Vec<ProductVal> = if st.gov.is_exhausted() {
                            vec![ProductVal::dynamic(self.facets); vals.len()]
                        } else {
                            vals.iter().map(|v| v.with_pe(PeVal::Top)).collect()
                        };
                        self.fold_call(*f, callee, pattern, residuals, st)
                    }
                }
            }
        }
    }

    /// The VM shortcut for a subtree the analysis marked fully static (see
    /// [`ppe_online::spec_eval`] for the contract). Restricted to scalar
    /// parameters: `Reduce {source: 0}` implies every argument is
    /// PE-static, and vectors are never PE-constants, so a parameter
    /// reifies exactly when its environment residual is a constant.
    /// `Ok(None)` means "walk normally, nothing was charged".
    #[inline(never)]
    fn try_spec_vm(
        &self,
        e: &AnnExpr,
        env: &Env,
        st: &mut St,
    ) -> Result<Option<(Expr, ProductVal)>, OfflineError> {
        let Some(spec) = st.spec.as_mut() else {
            return Ok(None);
        };
        let at = e as *const AnnExpr as usize;
        let entry = match spec.memo.get(&at) {
            Some(found) => found.clone(),
            None => {
                let computed = strip_static(e).and_then(|expr| {
                    spec_eval::analyze(&expr).map(|info| Rc::new(Stripped { expr, info }))
                });
                spec.memo.insert(at, computed.clone());
                computed
            }
        };
        let Some(sub) = entry else {
            return Ok(None);
        };
        let info = &sub.info;
        let extra = u32::try_from(info.size).unwrap_or(u32::MAX);
        if !st.gov.recursion_headroom(extra) || st.gov.remaining_fuel() < info.size - 1 {
            return Ok(None);
        }
        spec.args_buf.clear();
        for &p in &info.params {
            match env.stack.iter().rev().find(|(n, _, _)| *n == p) {
                Some((_, Expr::Const(c), _)) => spec.args_buf.push(Value::from_const(*c)),
                _ => return Ok(None),
            }
        }
        let Some(out) = spec
            .backend
            .eval(info.key, &sub.expr, &info.params, &spec.args_buf)
        else {
            return Ok(None);
        };
        let Some(c) = out.to_const() else {
            return Ok(None);
        };
        st.gov.charge(info.size - 1).map_err(OfflineError::from)?;
        st.stats.steps += info.size - 1;
        st.stats.reductions += info.n_prims;
        Ok(Some((
            Expr::Const(c),
            ProductVal::from_const(c, self.facets),
        )))
    }

    /// Looks up or creates the specialization of `f` at `pattern` — the
    /// cache `Sf` — and emits the folded call.
    fn fold_call(
        &self,
        f: Symbol,
        callee: &AnnFunDef,
        pattern: Vec<ProductVal>,
        residuals: Vec<Expr>,
        st: &mut St,
    ) -> Result<(Expr, ProductVal), OfflineError> {
        // Product values clone by reference count, so holding a second
        // handle on the pattern for the environment costs only the vector.
        let pattern_env = pattern.clone();
        let cache_len = st.cache.len();
        // One probe answers both "already cached?" and "where to insert".
        let name = match st.cache.entry((f, pattern)) {
            Entry::Occupied(entry) => {
                st.stats.cache_hits += 1;
                // `None` means we are inside this very specialization
                // (recursion): answer conservatively.
                let (name, value) = entry.get();
                let v = value
                    .clone()
                    .unwrap_or_else(|| ProductVal::dynamic(self.facets));
                return Ok((Expr::Call(*name, residuals), v));
            }
            Entry::Vacant(slot) => {
                if cache_len >= self.config.max_specializations {
                    let generalized = vec![ProductVal::dynamic(self.facets); slot.key().1.len()];
                    if slot.key().1 != generalized {
                        drop(slot);
                        st.gov
                            .cache_full(self.config.max_specializations, f)
                            .map_err(OfflineError::from)?;
                        // Degrade: fold onto the fully generalized
                        // specialization instead of minting another
                        // precise one.
                        return self.fold_call(f, callee, generalized, residuals, st);
                    }
                    // A fully generalized entry is admitted past the cap —
                    // there is at most one per source function, so the
                    // cache stays finite.
                }
                let name = fresh_fn(&mut st.used_names, f);
                slot.insert((name, None));
                name
            }
        };
        st.def_order.push(name);
        st.defs.insert(name, None);
        st.stats.specializations += 1;
        let mut inner = Env { stack: Vec::new() };
        for (p, v) in callee.params.iter().zip(&pattern_env) {
            inner.stack.push((*p, Expr::Var(*p), v.clone()));
        }
        let (body, body_val) = self.walk(&callee.body, &mut inner, 0, st)?;
        st.gov.add_residual_size(body.size(), f)?;
        st.defs
            .insert(name, Some(FunDef::new(name, callee.params.clone(), body)));
        let value = body_val.with_pe(PeVal::Top);
        if let Some(entry) = st.cache.get_mut(&(f, pattern_env)) {
            entry.1 = Some(value.clone());
        }
        Ok((Expr::Call(name, residuals), value))
    }

    /// Value tracking for a residual primitive: closed operators propagate
    /// facet components (e.g. `updvec` preserves a vector's size); open
    /// operators yield no information.
    fn track_residual_prim(&self, p: Prim, vals: &[ProductVal]) -> ProductVal {
        if vals.iter().any(|v| v.is_bottom(self.facets)) {
            return ProductVal::bottom(self.facets);
        }
        match p.std_class() {
            StdOpClass::Closed => {
                let mut components = Vec::with_capacity(self.facets.len());
                for (i, facet) in self.facets.iter().enumerate() {
                    let wrapped: Vec<FacetArg<'_>> = vals
                        .iter()
                        .map(|v| FacetArg {
                            pe: v.pe(),
                            abs: v.facet(i),
                        })
                        .collect();
                    components.push(facet.closed_op(p, &wrapped));
                }
                ProductVal::from_components(PeVal::Top, components, self.facets)
            }
            StdOpClass::Open => ProductVal::dynamic(self.facets),
        }
    }
}

fn wrap_lets(lets: Vec<(Symbol, Expr)>, body: Expr) -> Expr {
    let mut out = body;
    for (name, bound) in lets.into_iter().rev() {
        out = Expr::Let(name, Box::new(bound), Box::new(out));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AbstractInput};
    use ppe_core::facets::{SignFacet, SignVal, SizeFacet};
    use ppe_core::{size_of, AbsVal};
    use ppe_lang::{parse_program, pretty_program, Evaluator};

    const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

    fn iprod_offline(n: i64) -> Residual {
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let inputs = [
            PeInput::dynamic().with_facet("size", size_of(n)),
            PeInput::dynamic().with_facet("size", size_of(n)),
        ];
        let abstract_inputs: Vec<AbstractInput> = inputs
            .iter()
            .map(|i| AbstractInput::of_product(i.to_product(&facets).unwrap()))
            .collect();
        let analysis = analyze(&p, &facets, &abstract_inputs).unwrap();
        OfflinePe::new(&p, &facets, &analysis)
            .specialize(&inputs)
            .unwrap()
    }

    #[test]
    fn offline_reproduces_figure_8() {
        let r = iprod_offline(3);
        assert_eq!(r.program.defs().len(), 1);
        let printed = pretty_program(&r.program);
        for i in 1..=3 {
            assert!(printed.contains(&format!("(vref a {i})")), "{printed}");
        }
        assert!(!printed.contains("dotprod"), "{printed}");
    }

    #[test]
    fn offline_and_online_agree_on_the_inner_product() {
        use ppe_online::OnlinePe;
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let inputs = [
            PeInput::dynamic().with_facet("size", size_of(4)),
            PeInput::dynamic().with_facet("size", size_of(4)),
        ];
        let online = OnlinePe::new(&p, &facets).specialize_main(&inputs).unwrap();
        let offline = iprod_offline(4);
        assert_eq!(
            pretty_program(&online.program),
            pretty_program(&offline.program)
        );
    }

    #[test]
    fn offline_residual_is_correct() {
        let r = iprod_offline(3);
        let a = Value::vector(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(3.0),
        ]);
        let b = Value::vector(vec![
            Value::Float(4.0),
            Value::Float(5.0),
            Value::Float(6.0),
        ]);
        assert_eq!(
            Evaluator::new(&r.program).run_main(&[a, b]).unwrap(),
            Value::Float(32.0)
        );
    }

    #[test]
    fn incompatible_inputs_are_rejected() {
        let p = parse_program(IPROD).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let analysis = analyze(
            &p,
            &facets,
            &[
                AbstractInput::of_product(
                    PeInput::dynamic()
                        .with_facet("size", size_of(3))
                        .to_product(&facets)
                        .unwrap(),
                ),
                AbstractInput::of_product(
                    PeInput::dynamic()
                        .with_facet("size", size_of(3))
                        .to_product(&facets)
                        .unwrap(),
                ),
            ],
        )
        .unwrap();
        // Specializing with *no* size information is not covered by the
        // "size is static" analysis.
        let err = OfflinePe::new(&p, &facets, &analysis)
            .specialize(&[PeInput::dynamic(), PeInput::dynamic()])
            .unwrap_err();
        assert_eq!(err, OfflineError::InputsIncompatibleWithAnalysis);
    }

    #[test]
    fn compatible_but_different_sizes_reuse_the_analysis() {
        // Analysis at "size static"; specialization at size 2 and size 5
        // both refine it — the same binding-time division serves both,
        // the paper's main point about the offline split.
        for n in [2, 5] {
            let r = iprod_offline(n);
            let printed = pretty_program(&r.program);
            assert!(printed.contains(&format!("(vref a {n})")), "{printed}");
        }
    }

    #[test]
    fn sign_driven_branch_elimination_offline() {
        let src = "(define (clamp x) (if (< (* x x) 0) 0 x))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let inputs = [PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg))];
        let abstract_inputs: Vec<AbstractInput> = inputs
            .iter()
            .map(|i| AbstractInput::of_product(i.to_product(&facets).unwrap()))
            .collect();
        let analysis = analyze(&p, &facets, &abstract_inputs).unwrap();
        let r = OfflinePe::new(&p, &facets, &analysis)
            .specialize(&inputs)
            .unwrap();
        assert_eq!(r.program.main().body, Expr::var("x"));
    }

    #[test]
    fn dynamic_recursion_folds_to_one_specialization() {
        let src = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let analysis = analyze(&p, &facets, &[AbstractInput::dynamic()]).unwrap();
        let r = OfflinePe::new(&p, &facets, &analysis)
            .specialize(&[PeInput::dynamic()])
            .unwrap();
        assert_eq!(r.stats.specializations, 1);
        assert!(r.stats.cache_hits >= 1);
    }

    #[test]
    fn static_inputs_fully_evaluate() {
        let src = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let analysis = analyze(&p, &facets, &[AbstractInput::static_()]).unwrap();
        let r = OfflinePe::new(&p, &facets, &analysis)
            .specialize(&[PeInput::known(Value::Int(5))])
            .unwrap();
        assert_eq!(r.program.main().body, Expr::int(120));
    }

    #[test]
    fn divergent_static_unfolding_errors_out() {
        let src = "(define (f n) (if (< n 0) 0 (f (+ n 1))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let analysis = analyze(&p, &facets, &[AbstractInput::static_()]).unwrap();
        let config = PeConfig {
            max_unfold_depth: 32,
            ..PeConfig::default()
        };
        let err = OfflinePe::with_config(&p, &facets, &analysis, config)
            .specialize(&[PeInput::known(Value::Int(0))])
            .unwrap_err();
        assert_eq!(err, OfflineError::OutOfFuel);
    }
}
