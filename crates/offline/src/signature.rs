//! Facet signatures (`SigEnv = Fn → SD̃ⁿ⁺¹`, Figure 4).
//!
//! "A facet signature of a function consists of a product of abstract
//! facet values for the arguments and its corresponding result" — the
//! output of facet analysis, and the information the offline specializer
//! follows.

use std::collections::HashMap;

use ppe_core::{AbstractFacetSet, AbstractProductVal};
use ppe_lang::Symbol;

/// The facet signature of one function: abstract products for each
/// parameter plus the result (`SD̃ⁿ⁺¹`).
#[derive(Clone, Debug, PartialEq)]
pub struct FacetSignature {
    /// One abstract product per parameter.
    pub args: Vec<AbstractProductVal>,
    /// The abstract product of the function's result.
    pub result: AbstractProductVal,
}

impl FacetSignature {
    /// The all-`⊥` signature of an `n`-ary function (not yet called).
    pub fn bottom(arity: usize, set: &AbstractFacetSet) -> FacetSignature {
        FacetSignature {
            args: vec![AbstractProductVal::bottom(set); arity],
            result: AbstractProductVal::bottom(set),
        }
    }

    /// Componentwise widening-join with another signature (the `⊔` of
    /// Figure 4's `h̃` iteration; widening covers infinite-height facets).
    #[must_use]
    pub fn widen(&self, other: &FacetSignature, set: &AbstractFacetSet) -> FacetSignature {
        FacetSignature {
            args: self
                .args
                .iter()
                .zip(&other.args)
                .map(|(a, b)| a.widen(b, set))
                .collect(),
            result: self.result.widen(&other.result, set),
        }
    }

    /// Renders the signature as the paper's `⟨…⟩ × … → ⟨…⟩`.
    pub fn display(&self) -> String {
        let args: Vec<String> = self.args.iter().map(|a| a.display()).collect();
        format!("{} → {}", args.join(" × "), self.result.display())
    }
}

/// The result of facet analysis: each function's signature (Figure 4's
/// domain `SigEnv`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SigEnv {
    map: HashMap<Symbol, FacetSignature>,
}

impl SigEnv {
    /// An empty signature environment.
    pub fn new() -> SigEnv {
        SigEnv::default()
    }

    /// Looks up a function's signature.
    pub fn get(&self, f: Symbol) -> Option<&FacetSignature> {
        self.map.get(&f)
    }

    /// Inserts or replaces a signature.
    pub fn insert(&mut self, f: Symbol, sig: FacetSignature) {
        self.map.insert(f, sig);
    }

    /// Widening-joins `sig` into `f`'s entry. Returns whether the entry
    /// changed, so fixpoint drivers can detect stabilization without
    /// snapshotting and re-comparing the whole environment.
    pub fn absorb(&mut self, f: Symbol, sig: &FacetSignature, set: &AbstractFacetSet) -> bool {
        match self.map.get_mut(&f) {
            Some(existing) => {
                let widened = existing.widen(sig, set);
                if widened == *existing {
                    false
                } else {
                    *existing = widened;
                    true
                }
            }
            None => {
                self.map.insert(f, sig.clone());
                true
            }
        }
    }

    /// Iterates over `(function, signature)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &FacetSignature)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// Number of functions with a signature.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no signatures are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_core::facets::SignFacet;
    use ppe_core::{BtVal, FacetSet};
    use ppe_lang::Const;

    fn aset() -> AbstractFacetSet {
        FacetSet::with_facets(vec![Box::new(SignFacet)]).abstract_set()
    }

    #[test]
    fn bottom_signature_is_all_bottom() {
        let set = aset();
        let sig = FacetSignature::bottom(2, &set);
        assert!(sig.args.iter().all(|a| a.is_bottom(&set)));
        assert!(sig.result.is_bottom(&set));
    }

    #[test]
    fn absorb_joins_componentwise() {
        let set = aset();
        let f = Symbol::intern("f");
        let mut env = SigEnv::new();
        let s1 = FacetSignature {
            args: vec![AbstractProductVal::from_const(Const::Int(1), &set)],
            result: AbstractProductVal::bottom(&set),
        };
        let s2 = FacetSignature {
            args: vec![AbstractProductVal::dynamic(&set)],
            result: AbstractProductVal::from_const(Const::Int(2), &set),
        };
        env.absorb(f, &s1, &set);
        env.absorb(f, &s2, &set);
        let got = env.get(f).unwrap();
        assert_eq!(*got.args[0].bt(), BtVal::Dynamic);
        assert_eq!(*got.result.bt(), BtVal::Static);
    }

    #[test]
    fn display_renders_an_arrow_type() {
        let set = aset();
        let sig = FacetSignature {
            args: vec![AbstractProductVal::dynamic(&set)],
            result: AbstractProductVal::from_const(Const::Int(0), &set),
        };
        let s = sig.display();
        assert!(s.contains("→"), "{s}");
        assert!(s.starts_with("⟨Dyn"), "{s}");
    }
}
