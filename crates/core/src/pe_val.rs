//! The online partial-evaluation value domain `Values` (Section 3.2).
//!
//! `Values` is the flat lattice obtained by adding `⊥` and `⊤` to the
//! constants: `⊥ ⊑ c ⊑ ⊤` for every constant `c`, distinct constants
//! incomparable. The paper's Definition 7 makes this the domain of the
//! *partial evaluation facet*; [`pe_op`] is that facet's (single) operator
//! scheme.

use std::fmt;

use ppe_lang::{Const, Prim, Value};

use crate::lattice::Lattice;

/// An element of the paper's online domain `Values = Const ∪ {⊥, ⊤}`.
///
/// # Examples
///
/// ```
/// use ppe_core::{Lattice, PeVal};
/// use ppe_lang::Const;
///
/// let c = PeVal::constant(Const::Int(1));
/// assert!(PeVal::Bottom.leq(&c) && c.leq(&PeVal::Top));
/// assert_eq!(c.join(&PeVal::constant(Const::Int(2))), PeVal::Top);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PeVal {
    /// `⊥` — undefined (the expression denotes no value).
    Bottom,
    /// A known constant: the expression partially evaluates to it.
    Const(Const),
    /// `⊤` — unknown at partial-evaluation time.
    Top,
}

impl PeVal {
    /// Wraps a constant (readable constructor for `PeVal::Const`).
    pub fn constant(c: Const) -> PeVal {
        PeVal::Const(c)
    }

    /// The abstraction `τ̂ : Values → Values` of Section 3.2 extended to the
    /// full value sum: first-order values map to their textual constant,
    /// values with no constant form (vectors, functions) to `⊤`.
    pub fn from_value(v: &Value) -> PeVal {
        match v.to_const() {
            Some(c) => PeVal::Const(c),
            None => PeVal::Top,
        }
    }

    /// Returns the constant if this is a known value.
    pub fn as_const(&self) -> Option<Const> {
        match self {
            PeVal::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// True if this is a known constant.
    pub fn is_const(&self) -> bool {
        matches!(self, PeVal::Const(_))
    }

    /// Whether `v` lies in this value's concretization: `⊥` describes no
    /// value, a constant describes exactly that value, `⊤` describes all.
    ///
    /// This is the PE facet's membership predicate `d ⊑_τ̂ v̂` used by the
    /// Definition-6 consistency check and by the static analyzer's input
    /// validation — one definition, shared.
    ///
    /// # Examples
    ///
    /// ```
    /// use ppe_core::PeVal;
    /// use ppe_lang::{Const, Value};
    ///
    /// assert!(PeVal::Top.concretizes(&Value::Int(7)));
    /// assert!(PeVal::Const(Const::Int(7)).concretizes(&Value::Int(7)));
    /// assert!(!PeVal::Const(Const::Int(7)).concretizes(&Value::Int(8)));
    /// assert!(!PeVal::Bottom.concretizes(&Value::Int(7)));
    /// ```
    pub fn concretizes(&self, v: &Value) -> bool {
        match self {
            PeVal::Bottom => false,
            PeVal::Const(c) => Value::from_const(*c) == *v,
            PeVal::Top => true,
        }
    }
}

impl Lattice for PeVal {
    fn bottom() -> PeVal {
        PeVal::Bottom
    }

    fn top() -> PeVal {
        PeVal::Top
    }

    fn join(&self, other: &PeVal) -> PeVal {
        match (self, other) {
            (PeVal::Bottom, x) | (x, PeVal::Bottom) => *x,
            (PeVal::Const(a), PeVal::Const(b)) if a == b => *self,
            _ => PeVal::Top,
        }
    }

    fn leq(&self, other: &PeVal) -> bool {
        match (self, other) {
            (PeVal::Bottom, _) | (_, PeVal::Top) => true,
            (PeVal::Const(a), PeVal::Const(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for PeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeVal::Bottom => f.write_str("⊥"),
            PeVal::Const(c) => write!(f, "{c}"),
            PeVal::Top => f.write_str("⊤"),
        }
    }
}

impl From<Const> for PeVal {
    fn from(c: Const) -> PeVal {
        PeVal::Const(c)
    }
}

/// The partial evaluation facet's operator `p̂` (Definition 7):
/// `⊥` if any argument is `⊥`; the (textualized) standard result if every
/// argument is a constant; `⊤` otherwise.
///
/// Failing standard evaluation (division by zero, overflow, a type error)
/// denotes `⊥` in the paper's semantics, and maps to `⊥` here.
///
/// # Examples
///
/// ```
/// use ppe_core::{pe_op, PeVal};
/// use ppe_lang::{Const, Prim};
///
/// let two = PeVal::constant(Const::Int(2));
/// assert_eq!(pe_op(Prim::Add, &[two, two]), PeVal::constant(Const::Int(4)));
/// assert_eq!(pe_op(Prim::Add, &[two, PeVal::Top]), PeVal::Top);
/// assert_eq!(pe_op(Prim::Add, &[two, PeVal::Bottom]), PeVal::Bottom);
/// ```
pub fn pe_op(p: Prim, args: &[PeVal]) -> PeVal {
    if args.contains(&PeVal::Bottom) {
        return PeVal::Bottom;
    }
    let consts: Option<Vec<Const>> = args.iter().map(PeVal::as_const).collect();
    match consts {
        Some(cs) => {
            let values: Vec<Value> = cs.iter().map(|c| Value::from_const(*c)).collect();
            match p.eval(&values) {
                // A defined result with no textual representation (e.g.
                // `mkvec 3` building a vector) is simply not a constant:
                // `⊤`, not `⊥` — other facets may still know plenty
                // about it.
                Ok(v) => PeVal::from_value(&v),
                // A failing primitive denotes ⊥ (Definition 7's
                // strictness); the specializer keeps the expression
                // residual in that case.
                Err(_) => PeVal::Bottom,
            }
        }
        None => PeVal::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::check_lattice_laws;

    fn samples() -> Vec<PeVal> {
        vec![
            PeVal::Bottom,
            PeVal::Const(Const::Int(0)),
            PeVal::Const(Const::Int(1)),
            PeVal::Const(Const::Bool(true)),
            PeVal::Top,
        ]
    }

    #[test]
    fn lattice_laws_hold() {
        check_lattice_laws(&samples()).unwrap();
    }

    #[test]
    fn distinct_constants_are_incomparable() {
        let a = PeVal::Const(Const::Int(1));
        let b = PeVal::Const(Const::Int(2));
        assert!(!a.leq(&b) && !b.leq(&a));
        assert_eq!(a.join(&b), PeVal::Top);
    }

    #[test]
    fn from_value_is_tau_hat() {
        assert_eq!(
            PeVal::from_value(&Value::Int(3)),
            PeVal::Const(Const::Int(3))
        );
        assert_eq!(PeVal::from_value(&Value::vector(vec![])), PeVal::Top);
    }

    #[test]
    fn pe_op_computes_on_constants() {
        let out = pe_op(
            Prim::Lt,
            &[PeVal::Const(Const::Int(1)), PeVal::Const(Const::Int(2))],
        );
        assert_eq!(out, PeVal::Const(Const::Bool(true)));
    }

    #[test]
    fn pe_op_is_strict_in_bottom() {
        assert_eq!(
            pe_op(Prim::Add, &[PeVal::Bottom, PeVal::Top]),
            PeVal::Bottom
        );
    }

    #[test]
    fn pe_op_defined_nonconstant_results_are_top_not_bottom() {
        // `mkvec 3` succeeds concretely but has no constant form: the PE
        // facet answers ⊤ so other facets (e.g. Size) keep their say.
        let out = pe_op(Prim::MkVec, &[PeVal::Const(Const::Int(3))]);
        assert_eq!(out, PeVal::Top);
    }

    #[test]
    fn pe_op_failing_primitive_denotes_bottom() {
        let out = pe_op(
            Prim::Div,
            &[PeVal::Const(Const::Int(1)), PeVal::Const(Const::Int(0))],
        );
        assert_eq!(out, PeVal::Bottom);
    }

    #[test]
    fn pe_op_monotone_on_samples() {
        // A spot check; the full property is in the proptest suite.
        let xs = samples();
        for a in &xs {
            for b in &xs {
                if a.leq(b) {
                    for c in &xs {
                        let r1 = pe_op(Prim::Add, &[*a, *c]);
                        let r2 = pe_op(Prim::Add, &[*b, *c]);
                        assert!(r1.leq(&r2), "{a:?} ⊑ {b:?} but {r1:?} ⋢ {r2:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(PeVal::Bottom.to_string(), "⊥");
        assert_eq!(PeVal::Const(Const::Int(7)).to_string(), "7");
        assert_eq!(PeVal::Top.to_string(), "⊤");
    }
}
