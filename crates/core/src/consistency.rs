//! Consistency of products of facet values (Definition 6).
//!
//! A product `δ̂` is *consistent* iff the intersection of its components'
//! concretizations `⋂ᵢ {d | d ⊑_α̂ᵢ δ̂ⁱ}` is neither empty nor `{⊥}` — i.e.
//! the product describes at least one actual value. Programs are only
//! specialized with respect to consistent products (the paper assumes
//! this; [`check_consistent`] makes it checkable).
//!
//! Exact consistency is undecidable in general, so the check here is
//! *witness-based*: the caller supplies candidate concrete values, and the
//! product is consistent on that sample if some candidate lies in every
//! component's concretization. All shipped facets have exact
//! concretization membership, so for them a sufficiently rich candidate
//! set makes the check precise.

use ppe_lang::Value;

use crate::pe_val::PeVal;
use crate::product::{FacetSet, ProductVal};

/// Returns a witness value from `candidates` that lies in every
/// component's concretization, if any — evidence that `value` is
/// consistent (Definition 6). Membership of the PE component is
/// [`PeVal::concretizes`].
pub fn find_witness<'a>(
    value: &ProductVal,
    set: &FacetSet,
    candidates: impl IntoIterator<Item = &'a Value>,
) -> Option<&'a Value> {
    candidates.into_iter().find(|v| {
        value.pe().concretizes(v)
            && set
                .iter()
                .enumerate()
                .all(|(i, f)| f.concretizes(value.facet(i), v))
    })
}

/// Checks consistency of `value` against a candidate sample.
///
/// # Errors
///
/// Returns [`InconsistentProduct`] when no candidate witnesses the
/// product. A failed check on a finite sample is not a proof of
/// inconsistency unless the sample covers the PE component's constant (it
/// does automatically when the component is a constant: the constant
/// itself is tried first).
pub fn check_consistent(
    value: &ProductVal,
    set: &FacetSet,
    candidates: &[Value],
) -> Result<(), InconsistentProduct> {
    // A constant PE component supplies its own best witness.
    if let PeVal::Const(c) = value.pe() {
        let v = Value::from_const(*c);
        if set
            .iter()
            .enumerate()
            .all(|(i, f)| f.concretizes(value.facet(i), &v))
        {
            return Ok(());
        }
        return Err(InconsistentProduct {
            rendered: value.display(),
        });
    }
    match find_witness(value, set, candidates) {
        Some(_) => Ok(()),
        None => Err(InconsistentProduct {
            rendered: value.display(),
        }),
    }
}

/// Error: a product of facet values admits no common concrete value
/// (Definition 6 fails on the sampled candidates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InconsistentProduct {
    rendered: String,
}

impl std::fmt::Display for InconsistentProduct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inconsistent product of facet values {} (no common concrete value)",
            self.rendered
        )
    }
}

impl std::error::Error for InconsistentProduct {}

/// A default candidate pool: small integers, booleans, floats, and small
/// float vectors — enough to witness consistency for the shipped facets.
pub fn default_candidates() -> Vec<Value> {
    let mut out: Vec<Value> = (-5..=5).map(Value::Int).collect();
    out.extend([Value::Int(100), Value::Int(-100)]);
    out.extend([Value::Bool(true), Value::Bool(false)]);
    out.extend([-2.5f64, 0.0, 1.5].map(Value::Float));
    for n in 0..5 {
        out.push(Value::vector(vec![Value::Float(1.0); n]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abs_val::AbsVal;
    use crate::facets::{ParityFacet, ParityVal, SignFacet, SignVal};
    use ppe_lang::Const;

    fn two_facet_set() -> FacetSet {
        FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(ParityFacet)])
    }

    #[test]
    fn constants_are_consistent() {
        let set = two_facet_set();
        let v = ProductVal::from_const(Const::Int(4), &set);
        check_consistent(&v, &set, &default_candidates()).unwrap();
    }

    #[test]
    fn pos_even_is_consistent() {
        let set = two_facet_set();
        let v = ProductVal::dynamic(&set)
            .with_facet(0, AbsVal::new(SignVal::Pos))
            .with_facet(1, AbsVal::new(ParityVal::Even));
        let candidates = default_candidates();
        let w = find_witness(&v, &set, &candidates).unwrap();
        assert_eq!(*w, Value::Int(2));
    }

    #[test]
    fn zero_odd_is_inconsistent() {
        // zero (exactly 0) ∩ odd = ∅.
        let set = two_facet_set();
        let v = ProductVal::dynamic(&set)
            .with_facet(0, AbsVal::new(SignVal::Zero))
            .with_facet(1, AbsVal::new(ParityVal::Odd));
        assert!(check_consistent(&v, &set, &default_candidates()).is_err());
    }

    #[test]
    fn constant_conflicting_with_a_facet_is_inconsistent() {
        let set = two_facet_set();
        let v =
            ProductVal::from_const(Const::Int(3), &set).with_facet(0, AbsVal::new(SignVal::Neg));
        let err = check_consistent(&v, &set, &default_candidates()).unwrap_err();
        assert!(err.to_string().contains("inconsistent"));
    }

    #[test]
    fn consistency_is_preserved_by_product_operators() {
        // By definition of a facet, open/closed operators preserve
        // consistency (remark under Definition 6); spot-check with + on
        // pos/even values.
        use ppe_lang::Prim;
        let set = two_facet_set();
        let v = ProductVal::dynamic(&set)
            .with_facet(0, AbsVal::new(SignVal::Pos))
            .with_facet(1, AbsVal::new(ParityVal::Even));
        match set.prim_product(Prim::Add, &[v.clone(), v]) {
            crate::product::PrimOutcome::Closed(out) => {
                check_consistent(&out, &set, &default_candidates()).unwrap();
            }
            other => panic!("expected Closed, got {other:?}"),
        }
    }
}
