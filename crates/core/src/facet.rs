//! The [`Facet`] trait — the paper's Definition 4.
//!
//! A facet for a semantic algebra `[D; O]` is an abstract algebra `[D̂; Ô]`
//! given by a facet mapping `α̂_D : D → D̂` (Definition 2). Its operators
//! split in two classes (Section 3.2):
//!
//! - **closed** operators `p̂ : D̂ⁿ → D̂` compute new abstract values (the
//!   abstract primitives of abstract interpretation);
//! - **open** operators `p̂ : D̂ⁿ → Values` use abstract values to *trigger
//!   computation at partial-evaluation time*, producing a constant when the
//!   properties suffice (e.g. `≺̂(zero, pos) = true` in Example 1).
//!
//! Which primitives are closed and which are open is fixed by the standard
//! semantics ([`Prim::std_class`]); Definition 2's conditions 3–4 force the
//! facet's operators to follow that classification.
//!
//! Facet operators may consult, for each argument, both the facet's own
//! abstract component and the partial-evaluation component of the product
//! (the paper's operators over mixed signatures such as
//! `UpdVec : V̂ × Values × Values → V̂` in Section 6.1); hence arguments are
//! passed as [`FacetArg`] pairs.

use std::fmt::Debug;
use std::rc::Rc;

use ppe_lang::{Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::AbstractFacet;
use crate::pe_val::PeVal;

/// Open/closed classification of an operator within a facet (Section 3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// `p̂ : D̂ⁿ → D̂`.
    Closed,
    /// `p̂ : D̂ⁿ → Values`.
    Open,
}

/// One argument of a facet operator: the facet's own abstract component
/// plus the partial-evaluation component of the same product value.
#[derive(Clone, Copy, Debug)]
pub struct FacetArg<'a> {
    /// The partial-evaluation facet's view of this argument.
    pub pe: &'a PeVal,
    /// This facet's view of the argument.
    pub abs: &'a AbsVal,
}

/// A user-defined static property: the paper's *facet* (Definition 4).
///
/// Implementations must satisfy the facet-mapping conditions of
/// Definition 2, which the [`crate::safety`] module makes executable:
///
/// 1. the abstract domain is a lattice of finite height (or
///    [`Facet::widen`] is a proper widening);
/// 2. every operator is monotonic;
/// 3. closed operators return domain elements, open operators return
///    [`PeVal`]s;
/// 4. the approximation conditions `α̂∘p ⊑ p̂∘α̂` (closed) and
///    `τ̂∘p ⊑ p̂∘α̂` (open) hold.
///
/// Operators must be *strict*: any `⊥` argument (facet-bottom or
/// `PeVal::Bottom`) yields `⊥` (`PeVal::Bottom` for open operators).
///
/// The default operator implementations know nothing: closed operators
/// return `⊤` and open operators return `PeVal::Top` (both strict in `⊥`),
/// which is always safe; a facet overrides exactly the primitives of its
/// algebra — compare Example 1, where the Sign facet defines `+̂` and `≺̂`
/// only.
pub trait Facet: Debug {
    /// A short identifier used in diagnostics and printed tables.
    fn name(&self) -> &'static str;

    /// The least element of the facet domain.
    fn bottom(&self) -> AbsVal;

    /// The greatest element of the facet domain.
    fn top(&self) -> AbsVal;

    /// Least upper bound of two domain elements.
    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal;

    /// The domain's partial order.
    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool;

    /// The abstraction function `α̂_D : D → D̂`, totalized over the full
    /// value sum: values outside this facet's algebra map to `⊤`.
    fn alpha(&self, v: &Value) -> AbsVal;

    /// A closed operator `p̂ : D̂ⁿ → D̂` (Definition 2, condition 3).
    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        let _ = p;
        if args.iter().any(|a| self.arg_is_bottom(a)) {
            self.bottom()
        } else {
            self.top()
        }
    }

    /// An open operator `p̂ : D̂ⁿ → Values` (Definition 2, condition 4).
    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        let _ = p;
        if args.iter().any(|a| self.arg_is_bottom(a)) {
            PeVal::Bottom
        } else {
            PeVal::Top
        }
    }

    /// Concretization membership `v ∈ γ(abs)`, used by the consistency
    /// check (Definition 6) and the safety test harness. Must satisfy
    /// `v ∈ γ(α̂(v))` for all `v`.
    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool;

    /// Enumerates the whole domain if it is small and finite (`None` for
    /// large or infinite domains such as intervals). Exhaustive safety
    /// checks use this when available.
    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        None
    }

    /// Widening operator for domains of infinite height (the paper's
    /// footnote 1 to Definition 2). Defaults to `join`, which is a correct
    /// widening exactly when the domain has finite height.
    fn widen(&self, old: &AbsVal, new: &AbsVal) -> AbsVal {
        self.join(old, new)
    }

    /// The corresponding *abstract facet* for offline partial evaluation
    /// (Definition 8).
    fn abstract_facet(&self) -> Rc<dyn AbstractFacet>;

    /// Constraint propagation from conditional tests (the future work the
    /// paper sketches at the end of Section 4.4, after Redfun: "these
    /// properties and their negation are propagated to the consequent and
    /// alternative branches").
    ///
    /// Given that the open operator `p` applied to `args` is known to have
    /// evaluated to the boolean `outcome`, returns a refined abstract
    /// value for the argument at `position`, or `None` if the facet learns
    /// nothing. Soundness obligation: the refinement must contain every
    /// concrete value of `γ(args[position])` for which the comparison can
    /// yield `outcome`. Returning the facet's `⊥` asserts the branch is
    /// unreachable.
    fn assume(
        &self,
        p: Prim,
        args: &[FacetArg<'_>],
        outcome: bool,
        position: usize,
    ) -> Option<AbsVal> {
        let _ = (p, args, outcome, position);
        None
    }

    /// True if either component of the argument is `⊥`.
    fn arg_is_bottom(&self, arg: &FacetArg<'_>) -> bool {
        *arg.pe == PeVal::Bottom || *arg.abs == self.bottom()
    }

    /// Convenience wrapper: runs a closed operator over bare abstract
    /// values, supplying `⊤` partial-evaluation components.
    fn closed_op_on(&self, p: Prim, args: &[AbsVal]) -> AbsVal
    where
        Self: Sized,
    {
        let top = PeVal::Top;
        let wrapped: Vec<FacetArg<'_>> =
            args.iter().map(|abs| FacetArg { pe: &top, abs }).collect();
        self.closed_op(p, &wrapped)
    }

    /// Convenience wrapper: runs an open operator over bare abstract
    /// values, supplying `⊤` partial-evaluation components.
    fn open_op_on(&self, p: Prim, args: &[AbsVal]) -> PeVal
    where
        Self: Sized,
    {
        let top = PeVal::Top;
        let wrapped: Vec<FacetArg<'_>> =
            args.iter().map(|abs| FacetArg { pe: &top, abs }).collect();
        self.open_op(p, &wrapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt;

    /// A facet that knows nothing: every value abstracts to a unit top.
    /// It exercises the trait's default operator implementations.
    #[derive(Debug)]
    struct TrivialFacet;

    #[derive(PartialEq, Eq, Hash, Debug)]
    enum Unit {
        Bot,
        Top,
    }

    impl fmt::Display for Unit {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(match self {
                Unit::Bot => "⊥",
                Unit::Top => "⊤",
            })
        }
    }

    impl Facet for TrivialFacet {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn bottom(&self) -> AbsVal {
            AbsVal::new(Unit::Bot)
        }
        fn top(&self) -> AbsVal {
            AbsVal::new(Unit::Top)
        }
        fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
            if *a == self.bottom() {
                b.clone()
            } else {
                a.clone()
            }
        }
        fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
            *a == self.bottom() || *b == self.top()
        }
        fn alpha(&self, _v: &Value) -> AbsVal {
            self.top()
        }
        fn concretizes(&self, abs: &AbsVal, _v: &Value) -> bool {
            *abs == self.top()
        }
        fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
            unimplemented!("not needed for this test")
        }
    }

    #[test]
    fn default_ops_are_strict_and_topped() {
        let f = TrivialFacet;
        let top = f.top();
        let bot = f.bottom();
        assert_eq!(f.closed_op_on(Prim::Add, &[top.clone(), top.clone()]), top);
        assert_eq!(f.closed_op_on(Prim::Add, &[bot.clone(), top.clone()]), bot);
        assert_eq!(
            f.open_op_on(Prim::Lt, &[top.clone(), top.clone()]),
            PeVal::Top
        );
        assert_eq!(f.open_op_on(Prim::Lt, &[bot, top]), PeVal::Bottom);
    }

    #[test]
    fn pe_bottom_component_makes_args_bottom() {
        let f = TrivialFacet;
        let pe_bot = PeVal::Bottom;
        let abs_top = f.top();
        let arg = FacetArg {
            pe: &pe_bot,
            abs: &abs_top,
        };
        assert!(f.arg_is_bottom(&arg));
        assert_eq!(f.closed_op(Prim::Add, &[arg]), f.bottom());
    }
}
