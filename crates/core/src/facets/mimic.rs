//! The generic abstract facet for facets whose offline domain coincides
//! with the online domain.
//!
//! Example 2 observes that the Sign abstract facet has `D̄ = D̂` with the
//! identity facet mapping, closed operators unchanged, and open operators
//! that *mimic* the facet's: a constant becomes `Static`, `⊤` becomes
//! `Dynamic`. That construction is facet-independent, so it is provided
//! once, generically. Property 6 holds by construction: whenever the
//! mimicked open operator answers `Static`, the underlying facet operator
//! produced a constant.

use std::fmt;
use std::rc::Rc;

use ppe_lang::{Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::{AbstractArg, AbstractFacet};
use crate::bt_val::BtVal;
use crate::facet::{Facet, FacetArg};
use crate::pe_val::PeVal;

/// Wraps a [`Facet`] as its own [`AbstractFacet`] (identity facet mapping).
///
/// Correct only when the facet's operators do not consult the
/// partial-evaluation component of their arguments (the adapter supplies
/// `⊤`/`⊥` placeholders there); facets like the vector Size facet, whose
/// `MkVec` reads a concrete size out of the PE component, need a hand
/// written abstract facet with a coarser domain (see
/// [`crate::facets::AbstractSizeFacet`]).
pub struct MimicAbstractFacet<F> {
    facet: F,
}

impl<F: Facet> MimicAbstractFacet<F> {
    /// Wraps `facet`.
    pub fn new(facet: F) -> MimicAbstractFacet<F> {
        MimicAbstractFacet { facet }
    }

    /// The placeholder PE component for a binding-time component: only
    /// `⊥`-ness is preserved, which is all strictness needs.
    fn pe_placeholder(bt: &BtVal) -> PeVal {
        match bt {
            BtVal::Bottom => PeVal::Bottom,
            _ => PeVal::Top,
        }
    }

    fn wrap_args<'a>(&self, args: &[AbstractArg<'a>], pes: &'a [PeVal]) -> Vec<FacetArg<'a>> {
        args.iter()
            .zip(pes)
            .map(|(a, pe)| FacetArg { pe, abs: a.abs })
            .collect()
    }
}

impl<F: Facet> fmt::Debug for MimicAbstractFacet<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MimicAbstractFacet({})", self.facet.name())
    }
}

impl<F: Facet + 'static> AbstractFacet for MimicAbstractFacet<F> {
    fn name(&self) -> &'static str {
        self.facet.name()
    }

    fn bottom(&self) -> AbsVal {
        self.facet.bottom()
    }

    fn top(&self) -> AbsVal {
        self.facet.top()
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        self.facet.join(a, b)
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.facet.leq(a, b)
    }

    fn alpha_facet(&self, online: &AbsVal) -> AbsVal {
        online.clone()
    }

    fn alpha_value(&self, v: &Value) -> Option<AbsVal> {
        Some(self.facet.alpha(v))
    }

    fn closed_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> AbsVal {
        let pes: Vec<PeVal> = args.iter().map(|a| Self::pe_placeholder(a.bt)).collect();
        let wrapped = self.wrap_args(args, &pes);
        self.facet.closed_op(p, &wrapped)
    }

    fn open_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> BtVal {
        let pes: Vec<PeVal> = args.iter().map(|a| Self::pe_placeholder(a.bt)).collect();
        let wrapped = self.wrap_args(args, &pes);
        BtVal::from_pe(&self.facet.open_op(p, &wrapped))
    }

    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        self.facet.enumerate()
    }

    fn widen(&self, old: &AbsVal, new: &AbsVal) -> AbsVal {
        self.facet.widen(old, new)
    }
}

/// Convenience constructor used by facet implementations of
/// [`Facet::abstract_facet`].
pub(crate) fn mimic<F: Facet + 'static>(facet: F) -> Rc<dyn AbstractFacet> {
    Rc::new(MimicAbstractFacet::new(facet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facets::sign::{SignFacet, SignVal};

    #[test]
    fn mimics_open_operators_as_binding_times() {
        let abs = MimicAbstractFacet::new(SignFacet);
        let zero = AbsVal::new(SignVal::Zero);
        let pos = AbsVal::new(SignVal::Pos);
        // zero < pos is a constant online, hence Static offline.
        assert_eq!(
            abs.open_op_on(Prim::Lt, &[zero, pos.clone()]),
            BtVal::Static
        );
        // pos < pos is ⊤ online, hence Dynamic offline.
        assert_eq!(
            abs.open_op_on(Prim::Lt, &[pos.clone(), pos]),
            BtVal::Dynamic
        );
    }

    #[test]
    fn closed_operators_pass_through() {
        let abs = MimicAbstractFacet::new(SignFacet);
        let pos = AbsVal::new(SignVal::Pos);
        let out = abs.closed_op_on(Prim::Add, &[pos.clone(), pos]);
        assert_eq!(out.downcast_ref::<SignVal>(), Some(&SignVal::Pos));
    }

    #[test]
    fn alpha_facet_is_identity() {
        let abs = MimicAbstractFacet::new(SignFacet);
        let neg = AbsVal::new(SignVal::Neg);
        assert_eq!(abs.alpha_facet(&neg), neg);
    }

    #[test]
    fn bottom_args_stay_bottom() {
        let abs = MimicAbstractFacet::new(SignFacet);
        let bot = abs.bottom();
        let pos = AbsVal::new(SignVal::Pos);
        assert_eq!(abs.open_op_on(Prim::Lt, &[bot.clone(), pos]), BtVal::Bottom);
        assert_eq!(abs.closed_op_on(Prim::Add, &[bot.clone(), abs.top()]), bot);
    }
}
