//! The vector Size facet of Section 6 — the paper's running example — at
//! both levels: the online facet `[V̂; Ô]` (Section 6.1) and its abstract
//! facet `[V̄; Ō]` (Section 6.2), whose domain `{⊥, s, d}` genuinely
//! differs from the online domain (unlike Sign's identity mapping).

use std::fmt;
use std::rc::Rc;

use ppe_lang::{Const, Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::{AbstractArg, AbstractFacet};
use crate::bt_val::BtVal;
use crate::facet::{Facet, FacetArg};
use crate::pe_val::PeVal;

/// An element of the online Size domain `V̂ = Int ∪ {⊥, ⊤}` (Section 6.1):
/// flat — distinct sizes are incomparable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SizeVal {
    /// `⊥` — undefined.
    Bot,
    /// A vector of exactly this size.
    Known(i64),
    /// `⊤` — size unknown (or not a vector).
    Top,
}

impl SizeVal {
    fn join(self, other: SizeVal) -> SizeVal {
        match (self, other) {
            (SizeVal::Bot, x) | (x, SizeVal::Bot) => x,
            (a, b) if a == b => a,
            _ => SizeVal::Top,
        }
    }

    fn leq(self, other: SizeVal) -> bool {
        self == SizeVal::Bot || other == SizeVal::Top || self == other
    }
}

impl fmt::Display for SizeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeVal::Bot => f.write_str("⊥"),
            SizeVal::Known(n) => write!(f, "{n}"),
            SizeVal::Top => f.write_str("⊤"),
        }
    }
}

/// The online Size facet (Section 6.1).
///
/// Closed: `mkvec` (reads the size out of the *partial-evaluation*
/// component of its argument, the paper's `MkV̂ec : Values → V̂`) and
/// `updvec` (size-preserving). Open: `vsize` (the paper's `Vecf̂` — yields
/// the size as a constant) and `vref` (never a constant).
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::{SizeFacet, SizeVal}, AbsVal, Facet, PeVal};
/// use ppe_lang::{Const, Prim, Value};
///
/// let f = SizeFacet;
/// let v3 = AbsVal::new(SizeVal::Known(3));
/// assert_eq!(f.open_op_on(Prim::VSize, &[v3]), PeVal::constant(Const::Int(3)));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SizeFacet;

impl SizeFacet {
    fn get(&self, v: &AbsVal) -> SizeVal {
        *v.expect_ref::<SizeVal>("size")
    }
}

impl Facet for SizeFacet {
    fn name(&self) -> &'static str {
        "size"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(SizeVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(SizeVal::Top)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal::new(self.get(a).join(self.get(b)))
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.get(a).leq(self.get(b))
    }

    fn alpha(&self, v: &Value) -> AbsVal {
        AbsVal::new(match v {
            Value::Vector(elems) => SizeVal::Known(elems.len() as i64),
            _ => SizeVal::Top,
        })
    }

    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        match p {
            // MkV̂ec : Values → V̂ — a constant size makes a known-size
            // vector (the size flows in through the PE component).
            Prim::MkVec => AbsVal::new(match args[0].pe {
                PeVal::Bottom => SizeVal::Bot,
                PeVal::Const(Const::Int(n)) => SizeVal::Known(*n),
                _ => SizeVal::Top,
            }),
            // UpdV̂ec(v̂, i, r) : V̂ × Values × Values → V̂ — strict in the
            // index and element, size-preserving otherwise.
            Prim::UpdVec => {
                if *args[1].pe == PeVal::Bottom || *args[2].pe == PeVal::Bottom {
                    self.bottom()
                } else {
                    args[0].abs.clone()
                }
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    self.bottom()
                } else {
                    self.top()
                }
            }
        }
    }

    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        match p {
            // Vecf̂(v̂) — a known size is *the* size, as a constant.
            Prim::VSize => match self.get(args[0].abs) {
                SizeVal::Bot => PeVal::Bottom,
                SizeVal::Known(n) => PeVal::constant(Const::Int(n)),
                SizeVal::Top => {
                    if *args[0].pe == PeVal::Bottom {
                        PeVal::Bottom
                    } else {
                        PeVal::Top
                    }
                }
            },
            // Vref̂(v̂, i) — elements are never statically known here.
            Prim::VRef => {
                if self.get(args[0].abs) == SizeVal::Bot
                    || *args[0].pe == PeVal::Bottom
                    || *args[1].pe == PeVal::Bottom
                {
                    PeVal::Bottom
                } else {
                    PeVal::Top
                }
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    PeVal::Bottom
                } else {
                    PeVal::Top
                }
            }
        }
    }

    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        match self.get(abs) {
            SizeVal::Bot => false,
            SizeVal::Top => true,
            SizeVal::Known(n) => matches!(v, Value::Vector(e) if e.len() as i64 == n),
        }
    }

    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        Rc::new(AbstractSizeFacet)
    }
}

/// An element of the abstract Size domain `V̄ = {⊥, s, d}` (Section 6.2) —
/// a *chain*: `⊥ ⊑ s ⊑ d`, where `s` means "the size is static" and `d`
/// "the size is dynamic".
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum AbstractSizeVal {
    /// `⊥` — undefined.
    Bot,
    /// `s` — statically known size.
    StaticSize,
    /// `d` — dynamically known size.
    DynamicSize,
}

impl fmt::Display for AbstractSizeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AbstractSizeVal::Bot => "⊥",
            AbstractSizeVal::StaticSize => "s",
            AbstractSizeVal::DynamicSize => "d",
        })
    }
}

/// The abstract Size facet (Section 6.2).
///
/// `ᾱ_V̂` maps `⊥ ↦ ⊥`, `⊤ ↦ d`, and any known size to `s`. `V̄Size`
/// (`Vecf̄`) answers `Static` on `s` — the fact facet analysis exploits to
/// make `n` static in `iprod` (Figure 9).
#[derive(Clone, Copy, Debug, Default)]
pub struct AbstractSizeFacet;

impl AbstractSizeFacet {
    fn get(&self, v: &AbsVal) -> AbstractSizeVal {
        *v.expect_ref::<AbstractSizeVal>("size (abstract)")
    }
}

impl AbstractFacet for AbstractSizeFacet {
    fn name(&self) -> &'static str {
        "size"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(AbstractSizeVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(AbstractSizeVal::DynamicSize)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal::new(self.get(a).max(self.get(b)))
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.get(a) <= self.get(b)
    }

    fn alpha_facet(&self, online: &AbsVal) -> AbsVal {
        AbsVal::new(match online.expect_ref::<SizeVal>("size") {
            SizeVal::Bot => AbstractSizeVal::Bot,
            SizeVal::Known(_) => AbstractSizeVal::StaticSize,
            SizeVal::Top => AbstractSizeVal::DynamicSize,
        })
    }

    fn closed_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> AbsVal {
        match p {
            // MkV̄ec : Values̄ → V̄ (Section 6.2).
            Prim::MkVec => AbsVal::new(match args[0].bt {
                BtVal::Bottom => AbstractSizeVal::Bot,
                BtVal::Static => AbstractSizeVal::StaticSize,
                BtVal::Dynamic => AbstractSizeVal::DynamicSize,
            }),
            // UpdV̄ec(v̄, i, r) — strict, size-preserving.
            Prim::UpdVec => {
                if *args[1].bt == BtVal::Bottom || *args[2].bt == BtVal::Bottom {
                    self.bottom()
                } else {
                    args[0].abs.clone()
                }
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    self.bottom()
                } else {
                    self.top()
                }
            }
        }
    }

    fn open_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> BtVal {
        match p {
            // V̄Size(v̄): s ↦ Static — "the conditional can be reduced
            // statically" (Section 6.2).
            Prim::VSize => match self.get(args[0].abs) {
                AbstractSizeVal::Bot => BtVal::Bottom,
                AbstractSizeVal::StaticSize => BtVal::Static,
                AbstractSizeVal::DynamicSize => {
                    if *args[0].bt == BtVal::Bottom {
                        BtVal::Bottom
                    } else {
                        BtVal::Dynamic
                    }
                }
            },
            Prim::VRef => {
                if self.get(args[0].abs) == AbstractSizeVal::Bot
                    || *args[0].bt == BtVal::Bottom
                    || *args[1].bt == BtVal::Bottom
                {
                    BtVal::Bottom
                } else {
                    BtVal::Dynamic
                }
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    BtVal::Bottom
                } else {
                    BtVal::Dynamic
                }
            }
        }
    }

    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        Some(vec![
            AbsVal::new(AbstractSizeVal::Bot),
            AbsVal::new(AbstractSizeVal::StaticSize),
            AbsVal::new(AbstractSizeVal::DynamicSize),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_measures_vectors() {
        let f = SizeFacet;
        let v = Value::vector(vec![Value::Float(0.0); 4]);
        assert_eq!(f.alpha(&v).downcast_ref(), Some(&SizeVal::Known(4)));
        assert_eq!(f.alpha(&Value::Int(4)).downcast_ref(), Some(&SizeVal::Top));
    }

    #[test]
    fn vsize_yields_the_size_as_a_constant() {
        let f = SizeFacet;
        assert_eq!(
            f.open_op_on(Prim::VSize, &[AbsVal::new(SizeVal::Known(3))]),
            PeVal::constant(Const::Int(3))
        );
        assert_eq!(
            f.open_op_on(Prim::VSize, &[AbsVal::new(SizeVal::Top)]),
            PeVal::Top
        );
        assert_eq!(
            f.open_op_on(Prim::VSize, &[AbsVal::new(SizeVal::Bot)]),
            PeVal::Bottom
        );
    }

    #[test]
    fn mkvec_reads_the_pe_component() {
        let f = SizeFacet;
        let pe = PeVal::constant(Const::Int(7));
        let abs = f.top();
        let out = f.closed_op(Prim::MkVec, &[FacetArg { pe: &pe, abs: &abs }]);
        assert_eq!(out.downcast_ref(), Some(&SizeVal::Known(7)));
        let dyn_pe = PeVal::Top;
        let out = f.closed_op(
            Prim::MkVec,
            &[FacetArg {
                pe: &dyn_pe,
                abs: &abs,
            }],
        );
        assert_eq!(out.downcast_ref(), Some(&SizeVal::Top));
    }

    #[test]
    fn updvec_preserves_size() {
        let f = SizeFacet;
        let v = AbsVal::new(SizeVal::Known(3));
        let pe = PeVal::Top;
        let args = [
            FacetArg { pe: &pe, abs: &v },
            FacetArg {
                pe: &pe,
                abs: &f.top(),
            },
            FacetArg {
                pe: &pe,
                abs: &f.top(),
            },
        ];
        assert_eq!(
            f.closed_op(Prim::UpdVec, &args).downcast_ref(),
            Some(&SizeVal::Known(3))
        );
    }

    #[test]
    fn vref_is_never_static_here() {
        let f = SizeFacet;
        assert_eq!(
            f.open_op_on(Prim::VRef, &[AbsVal::new(SizeVal::Known(3)), f.top()]),
            PeVal::Top
        );
    }

    #[test]
    fn abstract_alpha_follows_section_6_2() {
        let a = AbstractSizeFacet;
        assert_eq!(
            a.alpha_facet(&AbsVal::new(SizeVal::Known(9)))
                .downcast_ref(),
            Some(&AbstractSizeVal::StaticSize)
        );
        assert_eq!(
            a.alpha_facet(&AbsVal::new(SizeVal::Top)).downcast_ref(),
            Some(&AbstractSizeVal::DynamicSize)
        );
        assert_eq!(
            a.alpha_facet(&AbsVal::new(SizeVal::Bot)).downcast_ref(),
            Some(&AbstractSizeVal::Bot)
        );
    }

    #[test]
    fn abstract_vsize_is_static_on_s() {
        let a = AbstractSizeFacet;
        assert_eq!(
            a.open_op_on(Prim::VSize, &[AbsVal::new(AbstractSizeVal::StaticSize)]),
            BtVal::Static
        );
        assert_eq!(
            a.open_op_on(Prim::VSize, &[AbsVal::new(AbstractSizeVal::DynamicSize)]),
            BtVal::Dynamic
        );
    }

    #[test]
    fn abstract_domain_is_a_chain() {
        let a = AbstractSizeFacet;
        let s = AbsVal::new(AbstractSizeVal::StaticSize);
        let d = AbsVal::new(AbstractSizeVal::DynamicSize);
        assert!(a.leq(&s, &d));
        assert!(!a.leq(&d, &s));
        assert_eq!(a.join(&s, &d), d);
    }

    #[test]
    fn property_6_for_vsize() {
        // If the abstract open operator says Static, the facet operator
        // yields a constant on every related facet value.
        let online = SizeFacet;
        let abs = AbstractSizeFacet;
        let s = AbsVal::new(AbstractSizeVal::StaticSize);
        if abs.open_op_on(Prim::VSize, &[s]) == BtVal::Static {
            for n in [0i64, 1, 5, 100] {
                let v = AbsVal::new(SizeVal::Known(n));
                assert!(online.open_op_on(Prim::VSize, &[v]).is_const());
            }
        }
    }
}
