//! An integer Range (interval) facet.
//!
//! Unlike Sign and Parity, this domain has *infinite height*, exercising
//! the paper's footnote 1 to Definition 2: "with a lattice of infinite
//! height, a widening operator can be used to find fixpoints in a finite
//! number of steps". [`RangeFacet::widen`] implements the classic interval
//! widening (unstable bounds jump to ±∞).

use std::fmt;
use std::rc::Rc;

use ppe_lang::{Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::AbstractFacet;
use crate::facet::{Facet, FacetArg};
use crate::facets::mimic::mimic;
use crate::pe_val::PeVal;

/// An element of the interval domain: `⊥` or `[lo, hi]` with optional
/// (infinite) bounds. `⊤` is `[-∞, +∞]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RangeVal {
    /// `⊥` — undefined.
    Bot,
    /// The interval `[lo, hi]`; `None` bounds are infinite. Invariant:
    /// `lo ≤ hi` when both are finite.
    Range {
        /// Lower bound (`None` = `-∞`).
        lo: Option<i64>,
        /// Upper bound (`None` = `+∞`).
        hi: Option<i64>,
    },
}

impl RangeVal {
    /// The unbounded interval `⊤`.
    pub const TOP: RangeVal = RangeVal::Range { lo: None, hi: None };

    /// The singleton interval `[n, n]`.
    pub fn exactly(n: i64) -> RangeVal {
        RangeVal::Range {
            lo: Some(n),
            hi: Some(n),
        }
    }

    /// The bounded interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(lo: i64, hi: i64) -> RangeVal {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        RangeVal::Range {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// `[n, +∞)`.
    pub fn at_least(n: i64) -> RangeVal {
        RangeVal::Range {
            lo: Some(n),
            hi: None,
        }
    }

    /// `(-∞, n]`.
    pub fn at_most(n: i64) -> RangeVal {
        RangeVal::Range {
            lo: None,
            hi: Some(n),
        }
    }

    fn join(self, other: RangeVal) -> RangeVal {
        match (self, other) {
            (RangeVal::Bot, x) | (x, RangeVal::Bot) => x,
            (RangeVal::Range { lo: a, hi: b }, RangeVal::Range { lo: c, hi: d }) => {
                RangeVal::Range {
                    lo: match (a, c) {
                        (Some(x), Some(y)) => Some(x.min(y)),
                        _ => None,
                    },
                    hi: match (b, d) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        _ => None,
                    },
                }
            }
        }
    }

    fn leq(self, other: RangeVal) -> bool {
        match (self, other) {
            (RangeVal::Bot, _) => true,
            (_, RangeVal::Bot) => false,
            (RangeVal::Range { lo: a, hi: b }, RangeVal::Range { lo: c, hi: d }) => {
                let lo_ok = match (a, c) {
                    (_, None) => true,
                    (None, Some(_)) => false,
                    (Some(x), Some(y)) => x >= y,
                };
                let hi_ok = match (b, d) {
                    (_, None) => true,
                    (None, Some(_)) => false,
                    (Some(x), Some(y)) => x <= y,
                };
                lo_ok && hi_ok
            }
        }
    }
}

impl fmt::Display for RangeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeVal::Bot => f.write_str("⊥"),
            RangeVal::Range { lo: None, hi: None } => f.write_str("⊤"),
            RangeVal::Range { lo, hi } => {
                match lo {
                    Some(n) => write!(f, "[{n}, ")?,
                    None => f.write_str("(-∞, ")?,
                }
                match hi {
                    Some(n) => write!(f, "{n}]"),
                    None => f.write_str("+∞)"),
                }
            }
        }
    }
}

/// The Range facet: integer intervals with widening.
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::{RangeFacet, RangeVal}, AbsVal, Facet, PeVal};
/// use ppe_lang::{Const, Prim};
///
/// let f = RangeFacet;
/// let small = AbsVal::new(RangeVal::between(0, 9));
/// let big = AbsVal::new(RangeVal::at_least(100));
/// // Disjoint intervals decide the comparison.
/// assert_eq!(f.open_op_on(Prim::Lt, &[small, big]), PeVal::constant(Const::Bool(true)));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct RangeFacet;

impl RangeFacet {
    fn get(&self, v: &AbsVal) -> RangeVal {
        *v.expect_ref::<RangeVal>("range")
    }

    fn args(&self, args: &[FacetArg<'_>]) -> Vec<RangeVal> {
        args.iter()
            .map(|a| {
                if *a.pe == PeVal::Bottom {
                    RangeVal::Bot
                } else {
                    self.get(a.abs)
                }
            })
            .collect()
    }
}

fn add_bound(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => x.checked_add(y),
        _ => None,
    }
}

impl Facet for RangeFacet {
    fn name(&self) -> &'static str {
        "range"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(RangeVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(RangeVal::TOP)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal::new(self.get(a).join(self.get(b)))
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.get(a).leq(self.get(b))
    }

    fn alpha(&self, v: &Value) -> AbsVal {
        AbsVal::new(match v {
            Value::Int(n) => RangeVal::exactly(*n),
            _ => RangeVal::TOP,
        })
    }

    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        use RangeVal::*;
        let s = self.args(args);
        if s.contains(&Bot) {
            return self.bottom();
        }
        let out = match (p, s.as_slice()) {
            (Prim::Add, [Range { lo: a, hi: b }, Range { lo: c, hi: d }]) => Range {
                lo: add_bound(*a, *c),
                hi: add_bound(*b, *d),
            },
            (Prim::Sub, [Range { lo: a, hi: b }, Range { lo: c, hi: d }]) => Range {
                lo: add_bound(*a, d.map(|x| x.checked_neg()).flatten()),
                hi: add_bound(*b, c.map(|x| x.checked_neg()).flatten()),
            },
            (Prim::Neg, [Range { lo, hi }]) => Range {
                lo: hi.and_then(i64::checked_neg),
                hi: lo.and_then(i64::checked_neg),
            },
            (
                Prim::Mul,
                [Range {
                    lo: Some(a),
                    hi: Some(b),
                }, Range {
                    lo: Some(c),
                    hi: Some(d),
                }],
            ) => {
                let products = [
                    a.checked_mul(*c),
                    a.checked_mul(*d),
                    b.checked_mul(*c),
                    b.checked_mul(*d),
                ];
                if products.iter().all(Option::is_some) {
                    let ps: Vec<i64> = products.into_iter().flatten().collect();
                    Range {
                        lo: ps.iter().min().copied(),
                        hi: ps.iter().max().copied(),
                    }
                } else {
                    RangeVal::TOP
                }
            }
            // n mod d for d ∈ [lo, hi] with lo > 0 is in [0, hi - 1].
            (Prim::Mod, [_, Range { lo: Some(lo), hi }]) if *lo > 0 => Range {
                lo: Some(0),
                hi: hi.map(|h| h - 1),
            },
            _ => RangeVal::TOP,
        };
        AbsVal::new(out)
    }

    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        use RangeVal::*;
        let s = self.args(args);
        if s.contains(&Bot) {
            return PeVal::Bottom;
        }
        let (a, b) = match s.as_slice() {
            [x, y] => (*x, *y),
            _ => return PeVal::Top,
        };
        let (Range { lo: alo, hi: ahi }, Range { lo: blo, hi: bhi }) = (a, b) else {
            return PeVal::Top;
        };
        // Decidable facts about two intervals.
        let def_lt = matches!((ahi, blo), (Some(x), Some(y)) if x < y);
        let def_le = matches!((ahi, blo), (Some(x), Some(y)) if x <= y);
        let def_gt = matches!((alo, bhi), (Some(x), Some(y)) if x > y);
        let def_ge = matches!((alo, bhi), (Some(x), Some(y)) if x >= y);
        let disjoint = def_lt || def_gt;
        let both_singleton_equal = alo == ahi && blo == bhi && alo == blo && alo.is_some();
        let decide = |yes: bool, no: bool| -> PeVal {
            if yes {
                PeVal::constant(true.into())
            } else if no {
                PeVal::constant(false.into())
            } else {
                PeVal::Top
            }
        };
        match p {
            Prim::Lt => decide(def_lt, def_ge),
            Prim::Le => decide(def_le, def_gt),
            Prim::Gt => decide(def_gt, def_le),
            Prim::Ge => decide(def_ge, def_lt),
            Prim::Eq => decide(both_singleton_equal, disjoint),
            Prim::Ne => decide(disjoint, both_singleton_equal),
            _ => PeVal::Top,
        }
    }

    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        match self.get(abs) {
            RangeVal::Bot => false,
            RangeVal::Range { lo: None, hi: None } => true,
            RangeVal::Range { lo, hi } => match v {
                Value::Int(n) => lo.is_none_or(|l| l <= *n) && hi.is_none_or(|h| *n <= h),
                _ => false,
            },
        }
    }

    fn widen(&self, old: &AbsVal, new: &AbsVal) -> AbsVal {
        // Classic interval widening: a bound that moved outward jumps to
        // infinity; stable bounds are kept.
        let (o, n) = (self.get(old), self.get(new));
        let out = match (o, n) {
            (RangeVal::Bot, x) => x,
            (x, RangeVal::Bot) => x,
            (RangeVal::Range { lo: a, hi: b }, RangeVal::Range { lo: c, hi: d }) => {
                RangeVal::Range {
                    lo: match (a, c) {
                        (Some(x), Some(y)) if y >= x => Some(x),
                        _ => None,
                    },
                    hi: match (b, d) {
                        (Some(x), Some(y)) if y <= x => Some(x),
                        _ => None,
                    },
                }
            }
        };
        AbsVal::new(out)
    }

    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        mimic(RangeFacet)
    }

    /// Constraint propagation (Section 4.4's future work): knowing
    /// `(p a b) = outcome` intersects the refined argument's interval
    /// with the half-line the comparison implies.
    fn assume(
        &self,
        p: Prim,
        args: &[FacetArg<'_>],
        outcome: bool,
        position: usize,
    ) -> Option<AbsVal> {
        if args.len() != 2 || position > 1 {
            return None;
        }
        let s = self.args(args);
        let current = s[position];
        let other = s[1 - position];
        let RangeVal::Range { lo: olo, hi: ohi } = other else {
            return None;
        };
        // Normalize to "x q other" with x the refined argument: when x is
        // on the right, replace p by its converse; when the outcome is
        // false, by its negation.
        let converse = |p: Prim| match p {
            Prim::Lt => Prim::Gt,
            Prim::Le => Prim::Ge,
            Prim::Gt => Prim::Lt,
            Prim::Ge => Prim::Le,
            other => other,
        };
        let negation = |p: Prim| match p {
            Prim::Lt => Prim::Ge,
            Prim::Le => Prim::Gt,
            Prim::Gt => Prim::Le,
            Prim::Ge => Prim::Lt,
            Prim::Eq => Prim::Ne,
            Prim::Ne => Prim::Eq,
            other => other,
        };
        let mut q = p;
        if position == 1 {
            q = converse(q);
        }
        if !outcome {
            q = negation(q);
        }
        let half_line = match q {
            // x < other ⇒ x ≤ other.hi − 1.
            Prim::Lt => RangeVal::Range {
                lo: None,
                hi: ohi.and_then(|h| h.checked_sub(1)),
            },
            Prim::Le => RangeVal::Range { lo: None, hi: ohi },
            // x > other ⇒ x ≥ other.lo + 1.
            Prim::Gt => RangeVal::Range {
                lo: olo.and_then(|l| l.checked_add(1)),
                hi: None,
            },
            Prim::Ge => RangeVal::Range { lo: olo, hi: None },
            // x = other ⇒ x lies in the other interval.
            Prim::Eq => other,
            // x ≠ other: intervals cannot express holes.
            _ => return None,
        };
        let refined = intersect(current, half_line);
        if refined == current {
            None
        } else {
            Some(AbsVal::new(refined))
        }
    }
}

/// Interval intersection (the domain's meet); empty intersections are `⊥`.
fn intersect(a: RangeVal, b: RangeVal) -> RangeVal {
    match (a, b) {
        (RangeVal::Bot, _) | (_, RangeVal::Bot) => RangeVal::Bot,
        (RangeVal::Range { lo: a1, hi: b1 }, RangeVal::Range { lo: a2, hi: b2 }) => {
            let lo = match (a1, a2) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            };
            let hi = match (b1, b2) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            };
            match (lo, hi) {
                (Some(l), Some(h)) if l > h => RangeVal::Bot,
                _ => RangeVal::Range { lo, hi },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::Const;

    fn a(r: RangeVal) -> AbsVal {
        AbsVal::new(r)
    }

    #[test]
    fn interval_arithmetic() {
        let f = RangeFacet;
        let out = f.closed_op_on(
            Prim::Add,
            &[a(RangeVal::between(1, 3)), a(RangeVal::between(10, 20))],
        );
        assert_eq!(out.downcast_ref(), Some(&RangeVal::between(11, 23)));
        let out = f.closed_op_on(Prim::Neg, &[a(RangeVal::between(-2, 5))]);
        assert_eq!(out.downcast_ref(), Some(&RangeVal::between(-5, 2)));
        let out = f.closed_op_on(
            Prim::Mul,
            &[a(RangeVal::between(-2, 3)), a(RangeVal::between(4, 5))],
        );
        assert_eq!(out.downcast_ref(), Some(&RangeVal::between(-10, 15)));
    }

    #[test]
    fn subtraction_flips_the_other_interval() {
        let f = RangeFacet;
        let out = f.closed_op_on(
            Prim::Sub,
            &[a(RangeVal::between(5, 8)), a(RangeVal::between(1, 2))],
        );
        assert_eq!(out.downcast_ref(), Some(&RangeVal::between(3, 7)));
    }

    #[test]
    fn overflow_falls_back_to_infinity() {
        let f = RangeFacet;
        let out = f.closed_op_on(
            Prim::Add,
            &[a(RangeVal::exactly(i64::MAX)), a(RangeVal::exactly(1))],
        );
        assert_eq!(out.downcast_ref(), Some(&RangeVal::TOP));
    }

    #[test]
    fn disjoint_intervals_decide_comparisons() {
        let f = RangeFacet;
        let lo = a(RangeVal::between(0, 9));
        let hi = a(RangeVal::at_least(10));
        assert_eq!(
            f.open_op_on(Prim::Lt, &[lo.clone(), hi.clone()]),
            PeVal::constant(Const::Bool(true))
        );
        assert_eq!(
            f.open_op_on(Prim::Ge, &[lo.clone(), hi.clone()]),
            PeVal::constant(Const::Bool(false))
        );
        assert_eq!(
            f.open_op_on(Prim::Eq, &[lo.clone(), hi]),
            PeVal::constant(Const::Bool(false))
        );
        assert_eq!(f.open_op_on(Prim::Lt, &[lo.clone(), lo]), PeVal::Top);
    }

    #[test]
    fn singletons_decide_equality() {
        let f = RangeFacet;
        let five = a(RangeVal::exactly(5));
        assert_eq!(
            f.open_op_on(Prim::Eq, &[five.clone(), five]),
            PeVal::constant(Const::Bool(true))
        );
    }

    #[test]
    fn widening_stabilizes_growing_bounds() {
        let f = RangeFacet;
        let old = a(RangeVal::between(0, 10));
        let grown = a(RangeVal::between(0, 11));
        let widened = f.widen(&old, &grown);
        assert_eq!(widened.downcast_ref(), Some(&RangeVal::at_least(0)));
        // A stable interval stays put.
        let same = f.widen(&old, &a(RangeVal::between(2, 9)));
        assert_eq!(same.downcast_ref(), Some(&RangeVal::between(0, 10)));
    }

    #[test]
    fn lattice_order() {
        assert!(RangeVal::exactly(3).leq(RangeVal::between(0, 5)));
        assert!(!RangeVal::between(0, 5).leq(RangeVal::exactly(3)));
        assert!(RangeVal::between(0, 5).leq(RangeVal::TOP));
        assert_eq!(
            RangeVal::between(0, 2).join(RangeVal::between(5, 9)),
            RangeVal::between(0, 9)
        );
    }

    #[test]
    fn concretization() {
        let f = RangeFacet;
        assert!(f.concretizes(&a(RangeVal::between(1, 3)), &Value::Int(2)));
        assert!(!f.concretizes(&a(RangeVal::between(1, 3)), &Value::Int(4)));
        assert!(f.concretizes(&a(RangeVal::TOP), &Value::Bool(true)));
    }
}
