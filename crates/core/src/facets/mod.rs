//! Ready-made facets.
//!
//! - [`SignFacet`] — the Sign facet of Examples 1–2 (extended to the full
//!   primitive algebra);
//! - [`ParityFacet`] — even/odd, a second first-class example of a
//!   user-defined property;
//! - [`RangeFacet`] — integer intervals with widening (exercising the
//!   paper's footnote 1 on infinite-height lattices);
//! - [`SizeFacet`] — the vector Size facet of Section 6, whose abstract
//!   facet ([`AbstractSizeFacet`]) has a *different* domain (`{⊥, s, d}`)
//!   than the online facet, exactly as in Section 6.2;
//! - [`TypeFacet`] — runtime-type tracking whose open operators detect
//!   guaranteed type errors (answering `⊥`) and whose `assume` learns
//!   types from observed comparison outcomes;
//! - [`ConstSetFacet`] — k-bounded sets of possible constants
//!   (generalized constant propagation, with branch filtering);
//! - [`ContentsFacet`] — exact vector contents, making `vref` at constant
//!   indices static (the facet behind interpreter specialization,
//!   `examples/interpreter.rs`);
//! - [`MimicAbstractFacet`] — the generic construction of an abstract facet
//!   for facets whose offline domain coincides with the online domain.

mod const_set;
mod contents;
mod mimic;
mod parity;
mod range;
mod sign;
mod size;
mod ty;

pub use const_set::{ConstSetFacet, ConstSetVal, DEFAULT_SET_BOUND};
pub use contents::{
    AbstractContentsFacet, AbstractContentsVal, ContentsFacet, ContentsVal, ElemVal, MAX_TRACKED,
};
pub use mimic::MimicAbstractFacet;
pub use parity::{ParityFacet, ParityVal};
pub use range::{RangeFacet, RangeVal};
pub use sign::{SignFacet, SignVal};
pub use size::{AbstractSizeFacet, AbstractSizeVal, SizeFacet, SizeVal};
pub use ty::{TypeFacet, TypeVal};
