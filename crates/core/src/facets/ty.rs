//! A Type facet: tracks which summand of the value sum an expression
//! inhabits — int, bool, float, or vector.
//!
//! Its open operators showcase a capability none of the other facets has:
//! answering `⊥`. A comparison between values of *incompatible* types
//! always errors in the standard semantics, so the facet maps it to
//! `⊥_Values` — statically detected definedness failure. Conversely, its
//! [`Facet::assume`] implementation learns types from observed outcomes: a
//! comparison that *did* produce a boolean implies its operands were
//! type-compatible, so inside the branches of `(< x y)` with `y : int`,
//! `x : int` too.

use std::fmt;
use std::rc::Rc;

use ppe_lang::{Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::AbstractFacet;
use crate::facet::{Facet, FacetArg};
use crate::facets::mimic::mimic;
use crate::pe_val::PeVal;

/// An element of the Type domain (flat).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TypeVal {
    /// `⊥` — undefined.
    Bot,
    /// An integer.
    Int,
    /// A boolean.
    Bool,
    /// A float.
    Float,
    /// A vector.
    Vector,
    /// A function value (closure or reference).
    Fun,
    /// `⊤` — type unknown.
    Top,
}

impl TypeVal {
    /// All seven elements.
    pub const ALL: [TypeVal; 7] = [
        TypeVal::Bot,
        TypeVal::Int,
        TypeVal::Bool,
        TypeVal::Float,
        TypeVal::Vector,
        TypeVal::Fun,
        TypeVal::Top,
    ];

    /// The type of a concrete value.
    pub fn of(v: &Value) -> TypeVal {
        match v {
            Value::Int(_) => TypeVal::Int,
            Value::Bool(_) => TypeVal::Bool,
            Value::Float(_) => TypeVal::Float,
            Value::Vector(_) => TypeVal::Vector,
            Value::Closure(_) | Value::FnVal(_) => TypeVal::Fun,
        }
    }

    fn join(self, other: TypeVal) -> TypeVal {
        match (self, other) {
            (TypeVal::Bot, x) | (x, TypeVal::Bot) => x,
            (a, b) if a == b => a,
            _ => TypeVal::Top,
        }
    }

    fn leq(self, other: TypeVal) -> bool {
        self == TypeVal::Bot || other == TypeVal::Top || self == other
    }

    /// Whether values of these two (non-`⊥`, non-`⊤`) types can ever be
    /// compared by an ordering without a type error.
    fn orderable_with(self, other: TypeVal) -> bool {
        matches!(
            (self, other),
            (TypeVal::Int, TypeVal::Int) | (TypeVal::Float, TypeVal::Float)
        )
    }

    /// Whether `=`/`/=` is defined between these two types.
    fn equatable_with(self, other: TypeVal) -> bool {
        self.orderable_with(other) || matches!((self, other), (TypeVal::Bool, TypeVal::Bool))
    }
}

impl fmt::Display for TypeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeVal::Bot => "⊥",
            TypeVal::Int => "int",
            TypeVal::Bool => "bool",
            TypeVal::Float => "float",
            TypeVal::Vector => "vec",
            TypeVal::Fun => "fun",
            TypeVal::Top => "⊤",
        })
    }
}

/// The Type facet.
///
/// # Examples
///
/// ```
/// use ppe_core::facets::{TypeFacet, TypeVal};
/// use ppe_core::{AbsVal, Facet, PeVal};
/// use ppe_lang::Prim;
///
/// let f = TypeFacet;
/// let int = AbsVal::new(TypeVal::Int);
/// let boolean = AbsVal::new(TypeVal::Bool);
/// // Comparing an int with a bool always errors: statically ⊥.
/// assert_eq!(f.open_op_on(Prim::Lt, &[int, boolean]), PeVal::Bottom);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TypeFacet;

impl TypeFacet {
    fn get(&self, v: &AbsVal) -> TypeVal {
        *v.expect_ref::<TypeVal>("type")
    }

    fn args(&self, args: &[FacetArg<'_>]) -> Vec<TypeVal> {
        args.iter()
            .map(|a| {
                if *a.pe == PeVal::Bottom {
                    TypeVal::Bot
                } else {
                    self.get(a.abs)
                }
            })
            .collect()
    }
}

impl Facet for TypeFacet {
    fn name(&self) -> &'static str {
        "type"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(TypeVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(TypeVal::Top)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal::new(self.get(a).join(self.get(b)))
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.get(a).leq(self.get(b))
    }

    fn alpha(&self, v: &Value) -> AbsVal {
        AbsVal::new(TypeVal::of(v))
    }

    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        use TypeVal::*;
        let s = self.args(args);
        if s.contains(&Bot) {
            return self.bottom();
        }
        let out = match (p, s.as_slice()) {
            (Prim::Add | Prim::Sub | Prim::Mul, [a, b]) => match (a, b) {
                (Int, Int) => Int,
                (Float, Float) => Float,
                (Top, _) | (_, Top) => Top,
                _ => Bot, // mixed numeric or non-numeric: always a type error
            },
            (Prim::Div, [a, b]) => match (a, b) {
                // May still divide by zero, but the *type* is known.
                (Int, Int) => Int,
                (Float, Float) => Float,
                (Top, _) | (_, Top) => Top,
                _ => Bot,
            },
            (Prim::Mod, [a, b]) => match (a, b) {
                (Int, Int) => Int,
                (Top, _) | (_, Top) => Top,
                _ => Bot,
            },
            (Prim::Neg, [a]) => match a {
                Int => Int,
                Float => Float,
                Top => Top,
                _ => Bot,
            },
            (Prim::And | Prim::Or, [a, b]) => match (a, b) {
                (Bool, Bool) => Bool,
                (Top, _) | (_, Top) => Top,
                _ => Bot,
            },
            (Prim::Not, [a]) => match a {
                Bool => Bool,
                Top => Top,
                _ => Bot,
            },
            (Prim::MkVec, [a]) => match a {
                Int => Vector,
                Top => Top,
                _ => Bot,
            },
            (Prim::UpdVec, [v, i, _]) => match (v, i) {
                (Vector, Int) => Vector,
                (Top, _) | (_, Top) => Top,
                _ => Bot,
            },
            _ => Top,
        };
        AbsVal::new(out)
    }

    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        use TypeVal::*;
        let s = self.args(args);
        if s.contains(&Bot) {
            return PeVal::Bottom;
        }
        match (p, s.as_slice()) {
            (Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge, [a, b]) => {
                // Unknown or compatible types: value unknown. Otherwise a
                // definite type error.
                if *a == Top || *b == Top || a.orderable_with(*b) {
                    PeVal::Top
                } else {
                    PeVal::Bottom
                }
            }
            (Prim::Eq | Prim::Ne, [a, b]) => {
                if *a == Top || *b == Top || a.equatable_with(*b) {
                    PeVal::Top
                } else {
                    PeVal::Bottom
                }
            }
            (Prim::VSize, [a]) => match a {
                Vector | Top => PeVal::Top,
                _ => PeVal::Bottom,
            },
            (Prim::VRef, [v, i]) => match (v, i) {
                (Vector, Int) => PeVal::Top,
                (Top, _) | (_, Top) => PeVal::Top,
                _ => PeVal::Bottom,
            },
            _ => PeVal::Top,
        }
    }

    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        match self.get(abs) {
            TypeVal::Bot => false,
            TypeVal::Top => true,
            t => TypeVal::of(v) == t,
        }
    }

    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        Some(TypeVal::ALL.iter().map(|t| AbsVal::new(*t)).collect())
    }

    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        mimic(TypeFacet)
    }

    /// Learning types from outcomes: a comparison that produced a boolean
    /// did not error, so its operands were type-compatible — the refined
    /// argument takes the other side's type when that type is specific.
    fn assume(
        &self,
        p: Prim,
        args: &[FacetArg<'_>],
        _outcome: bool,
        position: usize,
    ) -> Option<AbsVal> {
        use TypeVal::*;
        if args.len() != 2 || position > 1 {
            return None;
        }
        let s = self.args(args);
        let current = s[position];
        let other = s[1 - position];
        let implied = match p {
            Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge => match other {
                Int => Int,
                Float => Float,
                _ => return None,
            },
            Prim::Eq | Prim::Ne => match other {
                Int => Int,
                Float => Float,
                Bool => Bool,
                _ => return None,
            },
            _ => return None,
        };
        // Flat meet with the current knowledge.
        let refined = match current {
            Top => implied,
            c if c == implied => return None, // nothing new
            Bot => return None,
            _ => Bot, // contradiction: the branch is unreachable
        };
        Some(AbsVal::new(refined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(t: TypeVal) -> AbsVal {
        AbsVal::new(t)
    }

    #[test]
    fn alpha_classifies_all_summands() {
        let f = TypeFacet;
        assert_eq!(f.alpha(&Value::Int(1)).downcast_ref(), Some(&TypeVal::Int));
        assert_eq!(
            f.alpha(&Value::Bool(true)).downcast_ref(),
            Some(&TypeVal::Bool)
        );
        assert_eq!(
            f.alpha(&Value::Float(1.0)).downcast_ref(),
            Some(&TypeVal::Float)
        );
        assert_eq!(
            f.alpha(&Value::vector(vec![])).downcast_ref(),
            Some(&TypeVal::Vector)
        );
        assert_eq!(
            f.alpha(&Value::FnVal(ppe_lang::Symbol::intern("f")))
                .downcast_ref(),
            Some(&TypeVal::Fun)
        );
    }

    #[test]
    fn arithmetic_types_propagate() {
        let f = TypeFacet;
        let out = f.closed_op_on(Prim::Add, &[a(TypeVal::Int), a(TypeVal::Int)]);
        assert_eq!(out.downcast_ref(), Some(&TypeVal::Int));
        let out = f.closed_op_on(Prim::Mul, &[a(TypeVal::Float), a(TypeVal::Float)]);
        assert_eq!(out.downcast_ref(), Some(&TypeVal::Float));
    }

    #[test]
    fn type_mismatches_are_statically_bottom() {
        let f = TypeFacet;
        // Closed: int + bool can never be defined.
        let out = f.closed_op_on(Prim::Add, &[a(TypeVal::Int), a(TypeVal::Bool)]);
        assert_eq!(out, f.bottom());
        // Open: int < vector can never be defined.
        assert_eq!(
            f.open_op_on(Prim::Lt, &[a(TypeVal::Int), a(TypeVal::Vector)]),
            PeVal::Bottom
        );
        // Mixed numerics error too (the language does not coerce).
        assert_eq!(
            f.open_op_on(Prim::Lt, &[a(TypeVal::Int), a(TypeVal::Float)]),
            PeVal::Bottom
        );
    }

    #[test]
    fn compatible_types_stay_unknown() {
        let f = TypeFacet;
        assert_eq!(
            f.open_op_on(Prim::Lt, &[a(TypeVal::Int), a(TypeVal::Int)]),
            PeVal::Top
        );
        assert_eq!(
            f.open_op_on(Prim::Eq, &[a(TypeVal::Bool), a(TypeVal::Bool)]),
            PeVal::Top
        );
    }

    #[test]
    fn vector_operations_are_typed() {
        let f = TypeFacet;
        let out = f.closed_op_on(Prim::MkVec, &[a(TypeVal::Int)]);
        assert_eq!(out.downcast_ref(), Some(&TypeVal::Vector));
        assert_eq!(f.open_op_on(Prim::VSize, &[a(TypeVal::Int)]), PeVal::Bottom);
    }

    #[test]
    fn assume_learns_types_from_outcomes() {
        let f = TypeFacet;
        let pe_top = PeVal::Top;
        let x = a(TypeVal::Top);
        let other = a(TypeVal::Int);
        let args = [
            FacetArg {
                pe: &pe_top,
                abs: &x,
            },
            FacetArg {
                pe: &pe_top,
                abs: &other,
            },
        ];
        // Either outcome of (< x 3) proves x : int.
        for outcome in [true, false] {
            let refined = f.assume(Prim::Lt, &args, outcome, 0).unwrap();
            assert_eq!(refined.downcast_ref(), Some(&TypeVal::Int));
        }
        // A contradicting prior type makes the branch unreachable.
        let y = a(TypeVal::Bool);
        let args = [
            FacetArg {
                pe: &pe_top,
                abs: &y,
            },
            FacetArg {
                pe: &pe_top,
                abs: &other,
            },
        ];
        assert_eq!(f.assume(Prim::Lt, &args, true, 0), Some(f.bottom()));
    }

    #[test]
    fn passes_the_safety_battery() {
        let mut candidates = crate::consistency::default_candidates();
        candidates.push(Value::FnVal(ppe_lang::Symbol::intern("g")));
        crate::safety::validate_facet(&TypeFacet, &candidates).unwrap();
    }
}
