//! A k-bounded constant-set facet: abstract values are small sets of
//! possible constants.
//!
//! This generalizes constant propagation: `{1, 2}` says "one of these two
//! constants". Closed operators compute pointwise over the cartesian
//! product of argument sets; open operators answer a constant when every
//! combination agrees (e.g. `(< {1,2} {5,9})` is `true`). Sets that would
//! exceed the bound `k` collapse to `⊤`, keeping the domain of finite
//! height (`k + 2`).
//!
//! The facet also implements [`Facet::assume`]: a conditional test
//! *filters* the sets flowing into its branches (Redfun-style constraint
//! propagation, the paper's Section 4.4 future work).

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use ppe_lang::{Const, Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::AbstractFacet;
use crate::facet::{Facet, FacetArg};
use crate::facets::mimic::mimic;
use crate::pe_val::PeVal;

/// Default bound on tracked set size.
pub const DEFAULT_SET_BOUND: usize = 8;

/// An element of the constant-set domain.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConstSetVal {
    /// `⊥` — undefined.
    Bot,
    /// One of these constants (non-empty, at most the facet's bound).
    Set(BTreeSet<Const>),
    /// `⊤` — unbounded, or not a first-order constant at all.
    Top,
}

impl ConstSetVal {
    /// The singleton set `{c}`.
    pub fn just(c: Const) -> ConstSetVal {
        ConstSetVal::Set(BTreeSet::from([c]))
    }

    /// A set from constants.
    ///
    /// # Panics
    ///
    /// Panics if `cs` is empty (the empty set is `⊥`, use
    /// [`ConstSetVal::Bot`]).
    pub fn of(cs: impl IntoIterator<Item = Const>) -> ConstSetVal {
        let set: BTreeSet<Const> = cs.into_iter().collect();
        assert!(!set.is_empty(), "empty constant set is ⊥");
        ConstSetVal::Set(set)
    }
}

impl fmt::Display for ConstSetVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstSetVal::Bot => f.write_str("⊥"),
            ConstSetVal::Top => f.write_str("⊤"),
            ConstSetVal::Set(cs) => {
                f.write_str("{")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The constant-set facet.
///
/// # Examples
///
/// ```
/// use ppe_core::facets::{ConstSetFacet, ConstSetVal};
/// use ppe_core::{AbsVal, Facet, PeVal};
/// use ppe_lang::{Const, Prim};
///
/// let f = ConstSetFacet::new(8);
/// let small = AbsVal::new(ConstSetVal::of([Const::Int(1), Const::Int(2)]));
/// let big = AbsVal::new(ConstSetVal::of([Const::Int(5), Const::Int(9)]));
/// // Every combination satisfies <, so the comparison is static.
/// assert_eq!(
///     f.open_op_on(Prim::Lt, &[small, big]),
///     PeVal::constant(Const::Bool(true))
/// );
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ConstSetFacet {
    bound: usize,
}

impl Default for ConstSetFacet {
    fn default() -> ConstSetFacet {
        ConstSetFacet::new(DEFAULT_SET_BOUND)
    }
}

impl ConstSetFacet {
    /// Creates the facet with a set-size bound (domain height `bound+2`).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(bound: usize) -> ConstSetFacet {
        assert!(bound > 0, "set bound must be positive");
        ConstSetFacet { bound }
    }

    fn get<'a>(&self, v: &'a AbsVal) -> &'a ConstSetVal {
        v.expect_ref::<ConstSetVal>("const-set")
    }

    fn cap(&self, set: BTreeSet<Const>) -> ConstSetVal {
        if set.is_empty() {
            ConstSetVal::Bot
        } else if set.len() > self.bound {
            ConstSetVal::Top
        } else {
            ConstSetVal::Set(set)
        }
    }

    /// Arguments as set values, folding the PE component in: a constant
    /// PE component is a (better) singleton.
    fn arg_sets(&self, args: &[FacetArg<'_>]) -> Vec<ConstSetVal> {
        args.iter()
            .map(|a| match a.pe {
                PeVal::Bottom => ConstSetVal::Bot,
                PeVal::Const(c) => ConstSetVal::just(*c),
                PeVal::Top => self.get(a.abs).clone(),
            })
            .collect()
    }

    /// All tuples drawn from the argument sets, or `None` if any argument
    /// is `⊤` (or the tuple count would blow up).
    fn tuples(&self, sets: &[ConstSetVal]) -> Option<Vec<Vec<Const>>> {
        let mut out: Vec<Vec<Const>> = vec![Vec::new()];
        for s in sets {
            let ConstSetVal::Set(cs) = s else { return None };
            let mut next = Vec::with_capacity(out.len() * cs.len());
            for prefix in &out {
                for c in cs {
                    let mut t = prefix.clone();
                    t.push(*c);
                    next.push(t);
                }
            }
            if next.len() > 256 {
                return None;
            }
            out = next;
        }
        Some(out)
    }
}

impl Facet for ConstSetFacet {
    fn name(&self) -> &'static str {
        "const-set"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(ConstSetVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(ConstSetVal::Top)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal::new(match (self.get(a), self.get(b)) {
            (ConstSetVal::Bot, x) | (x, ConstSetVal::Bot) => x.clone(),
            (ConstSetVal::Set(x), ConstSetVal::Set(y)) => self.cap(x.union(y).copied().collect()),
            _ => ConstSetVal::Top,
        })
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        match (self.get(a), self.get(b)) {
            (ConstSetVal::Bot, _) | (_, ConstSetVal::Top) => true,
            (ConstSetVal::Set(x), ConstSetVal::Set(y)) => x.is_subset(y),
            _ => false,
        }
    }

    fn alpha(&self, v: &Value) -> AbsVal {
        AbsVal::new(match v.to_const() {
            Some(c) => ConstSetVal::just(c),
            None => ConstSetVal::Top,
        })
    }

    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        let sets = self.arg_sets(args);
        if sets.contains(&ConstSetVal::Bot) {
            return self.bottom();
        }
        let Some(tuples) = self.tuples(&sets) else {
            return self.top();
        };
        let mut out = BTreeSet::new();
        let mut any_defined = false;
        for t in tuples {
            let vals: Vec<Value> = t.iter().map(|c| Value::from_const(*c)).collect();
            if let Ok(v) = p.eval(&vals) {
                any_defined = true;
                match v.to_const() {
                    Some(c) => {
                        out.insert(c);
                    }
                    None => return self.top(), // non-constant results
                }
            }
        }
        if !any_defined {
            // Every combination errors: the application denotes ⊥.
            return self.bottom();
        }
        AbsVal::new(self.cap(out))
    }

    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        let sets = self.arg_sets(args);
        if sets.contains(&ConstSetVal::Bot) {
            return PeVal::Bottom;
        }
        let Some(tuples) = self.tuples(&sets) else {
            return PeVal::Top;
        };
        let mut agreed: Option<Const> = None;
        let mut any_defined = false;
        for t in tuples {
            let vals: Vec<Value> = t.iter().map(|c| Value::from_const(*c)).collect();
            let Ok(v) = p.eval(&vals) else { continue };
            let Some(c) = v.to_const() else {
                return PeVal::Top;
            };
            any_defined = true;
            match agreed {
                None => agreed = Some(c),
                Some(prev) if prev == c => {}
                Some(_) => return PeVal::Top, // combinations disagree
            }
        }
        if !any_defined {
            return PeVal::Bottom;
        }
        agreed.map(PeVal::constant).unwrap_or(PeVal::Top)
    }

    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        match self.get(abs) {
            ConstSetVal::Bot => false,
            ConstSetVal::Top => true,
            ConstSetVal::Set(cs) => v.to_const().is_some_and(|c| cs.contains(&c)),
        }
    }

    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        mimic(*self)
    }

    /// Branch refinement: keep exactly the constants that can satisfy the
    /// test with the given outcome.
    fn assume(
        &self,
        p: Prim,
        args: &[FacetArg<'_>],
        outcome: bool,
        position: usize,
    ) -> Option<AbsVal> {
        if args.len() != 2 || position > 1 {
            return None;
        }
        let sets = self.arg_sets(args);
        let ConstSetVal::Set(current) = &sets[position] else {
            return None;
        };
        let ConstSetVal::Set(other) = &sets[1 - position] else {
            return None;
        };
        let keep: BTreeSet<Const> = current
            .iter()
            .filter(|c| {
                other.iter().any(|d| {
                    let (a, b) = if position == 0 { (**c, *d) } else { (*d, **c) };
                    matches!(
                        p.eval(&[Value::from_const(a), Value::from_const(b)]),
                        Ok(Value::Bool(x)) if x == outcome
                    )
                })
            })
            .copied()
            .collect();
        if keep == *current {
            None
        } else if keep.is_empty() {
            Some(self.bottom()) // branch unreachable
        } else {
            Some(AbsVal::new(ConstSetVal::Set(keep)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> ConstSetFacet {
        ConstSetFacet::default()
    }

    fn set(ns: &[i64]) -> AbsVal {
        AbsVal::new(ConstSetVal::of(ns.iter().map(|n| Const::Int(*n))))
    }

    #[test]
    fn alpha_is_singleton() {
        assert_eq!(
            f().alpha(&Value::Int(3)).downcast_ref::<ConstSetVal>(),
            Some(&ConstSetVal::just(Const::Int(3)))
        );
        assert_eq!(
            f().alpha(&Value::vector(vec![]))
                .downcast_ref::<ConstSetVal>(),
            Some(&ConstSetVal::Top)
        );
    }

    #[test]
    fn closed_ops_compute_pointwise() {
        let out = f().closed_op_on(Prim::Add, &[set(&[1, 2]), set(&[10, 20])]);
        assert_eq!(
            out.downcast_ref::<ConstSetVal>(),
            Some(&ConstSetVal::of([11, 12, 21, 22].map(Const::Int)))
        );
    }

    #[test]
    fn closed_ops_cap_to_top() {
        let small = ConstSetFacet::new(2);
        let out = small.closed_op_on(Prim::Add, &[set(&[1, 2]), set(&[10, 20])]);
        assert_eq!(out, small.top());
    }

    #[test]
    fn open_ops_decide_when_all_combinations_agree() {
        assert_eq!(
            f().open_op_on(Prim::Lt, &[set(&[1, 2]), set(&[5, 9])]),
            PeVal::constant(Const::Bool(true))
        );
        assert_eq!(
            f().open_op_on(Prim::Lt, &[set(&[1, 7]), set(&[5, 9])]),
            PeVal::Top
        );
        assert_eq!(
            f().open_op_on(Prim::Eq, &[set(&[1]), set(&[1])]),
            PeVal::constant(Const::Bool(true))
        );
    }

    #[test]
    fn all_erroring_combinations_are_bottom() {
        // Division by zero on every combination.
        let out = f().closed_op_on(Prim::Div, &[set(&[1, 2]), set(&[0])]);
        assert_eq!(out, f().bottom());
    }

    #[test]
    fn partially_erroring_combinations_keep_defined_results() {
        let out = f().closed_op_on(Prim::Div, &[set(&[4]), set(&[0, 2])]);
        assert_eq!(
            out.downcast_ref::<ConstSetVal>(),
            Some(&ConstSetVal::just(Const::Int(2)))
        );
    }

    #[test]
    fn join_unions_and_caps() {
        let fac = ConstSetFacet::new(3);
        let j = fac.join(&set(&[1, 2]), &set(&[3]));
        assert_eq!(
            j.downcast_ref::<ConstSetVal>(),
            Some(&ConstSetVal::of([1, 2, 3].map(Const::Int)))
        );
        let too_big = fac.join(&set(&[1, 2]), &set(&[3, 4]));
        assert_eq!(too_big, fac.top());
    }

    #[test]
    fn assume_filters_sets() {
        // x ∈ {1, 5, 9}, test (< x 6) true ⇒ x ∈ {1, 5}.
        let fac = f();
        let pe_top = PeVal::Top;
        let x = set(&[1, 5, 9]);
        let six = AbsVal::new(ConstSetVal::just(Const::Int(6)));
        let args = [
            FacetArg {
                pe: &pe_top,
                abs: &x,
            },
            FacetArg {
                pe: &pe_top,
                abs: &six,
            },
        ];
        let refined = fac.assume(Prim::Lt, &args, true, 0).unwrap();
        assert_eq!(
            refined.downcast_ref::<ConstSetVal>(),
            Some(&ConstSetVal::of([1, 5].map(Const::Int)))
        );
        // Contradiction is ⊥ (unreachable branch).
        let nine = set(&[9]);
        let args = [
            FacetArg {
                pe: &pe_top,
                abs: &nine,
            },
            FacetArg {
                pe: &pe_top,
                abs: &six,
            },
        ];
        assert_eq!(fac.assume(Prim::Lt, &args, true, 0), Some(fac.bottom()));
    }

    #[test]
    fn passes_the_safety_battery() {
        let candidates = crate::consistency::default_candidates();
        crate::safety::validate_facet(&f(), &candidates).unwrap();
    }

    #[test]
    fn works_in_a_product() {
        use crate::product::{FacetSet, PrimOutcome, ProductVal};
        let setf = FacetSet::with_facets(vec![Box::new(f())]);
        let x = ProductVal::dynamic(&setf).with_facet(0, set(&[2, 4]));
        let y = ProductVal::from_const(Const::Int(10), &setf);
        // Every element of {2,4} is < 10.
        assert_eq!(
            setf.prim_product(Prim::Lt, &[x.clone(), y]),
            PrimOutcome::Const(Const::Bool(true))
        );
        // {2,4} * {2,4} = {4,8,16}.
        match setf.prim_product(Prim::Mul, &[x.clone(), x]) {
            PrimOutcome::Closed(v) => {
                assert_eq!(
                    v.facet(0).downcast_ref::<ConstSetVal>(),
                    Some(&ConstSetVal::of([4, 8, 16].map(Const::Int)))
                );
            }
            other => panic!("expected Closed, got {other:?}"),
        }
    }
}
