//! A Parity facet: even/odd, a second worked example of a user-defined
//! static property (the paper's framework is *parameterized*; this facet
//! exists to be combined with others in a product, cf. Definition 5).
//!
//! Closed: `+`, `-`, `*`, `neg` follow parity arithmetic. Open: `=` and
//! `/=` decide when the parities differ (two integers of different parity
//! can never be equal).

use std::fmt;
use std::rc::Rc;

use ppe_lang::{Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::AbstractFacet;
use crate::facet::{Facet, FacetArg};
use crate::facets::mimic::mimic;
use crate::pe_val::PeVal;

/// An element of the Parity domain `{⊥, even, odd, ⊤}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParityVal {
    /// `⊥` — undefined.
    Bot,
    /// An even integer.
    Even,
    /// An odd integer.
    Odd,
    /// `⊤` — unknown parity (or not an integer).
    Top,
}

impl ParityVal {
    /// All four elements.
    pub const ALL: [ParityVal; 4] = [
        ParityVal::Bot,
        ParityVal::Even,
        ParityVal::Odd,
        ParityVal::Top,
    ];

    /// The parity of an integer.
    pub fn of_i64(n: i64) -> ParityVal {
        if n % 2 == 0 {
            ParityVal::Even
        } else {
            ParityVal::Odd
        }
    }

    fn join(self, other: ParityVal) -> ParityVal {
        match (self, other) {
            (ParityVal::Bot, x) | (x, ParityVal::Bot) => x,
            (a, b) if a == b => a,
            _ => ParityVal::Top,
        }
    }

    fn leq(self, other: ParityVal) -> bool {
        self == ParityVal::Bot || other == ParityVal::Top || self == other
    }
}

impl fmt::Display for ParityVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParityVal::Bot => "⊥",
            ParityVal::Even => "even",
            ParityVal::Odd => "odd",
            ParityVal::Top => "⊤",
        })
    }
}

/// The Parity facet.
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::{ParityFacet, ParityVal}, AbsVal, Facet, PeVal};
/// use ppe_lang::{Const, Prim};
///
/// let f = ParityFacet;
/// let even = AbsVal::new(ParityVal::Even);
/// let odd = AbsVal::new(ParityVal::Odd);
/// // An even and an odd integer are never equal.
/// assert_eq!(f.open_op_on(Prim::Eq, &[even, odd]), PeVal::constant(Const::Bool(false)));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ParityFacet;

impl ParityFacet {
    fn get(&self, v: &AbsVal) -> ParityVal {
        *v.expect_ref::<ParityVal>("parity")
    }

    fn args(&self, args: &[FacetArg<'_>]) -> Vec<ParityVal> {
        args.iter()
            .map(|a| {
                if *a.pe == PeVal::Bottom {
                    ParityVal::Bot
                } else {
                    self.get(a.abs)
                }
            })
            .collect()
    }
}

impl Facet for ParityFacet {
    fn name(&self) -> &'static str {
        "parity"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(ParityVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(ParityVal::Top)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal::new(self.get(a).join(self.get(b)))
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.get(a).leq(self.get(b))
    }

    fn alpha(&self, v: &Value) -> AbsVal {
        AbsVal::new(match v {
            Value::Int(n) => ParityVal::of_i64(*n),
            _ => ParityVal::Top,
        })
    }

    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        use ParityVal::*;
        let s = self.args(args);
        if s.contains(&Bot) {
            return self.bottom();
        }
        let out = match (p, s.as_slice()) {
            (Prim::Add | Prim::Sub, [a, b]) => match (a, b) {
                (Even, Even) | (Odd, Odd) => Even,
                (Even, Odd) | (Odd, Even) => Odd,
                _ => Top,
            },
            (Prim::Mul, [a, b]) => match (a, b) {
                (Even, _) | (_, Even) if *a != Top && *b != Top => Even,
                (Even, Top) | (Top, Even) => Even,
                (Odd, Odd) => Odd,
                _ => Top,
            },
            (Prim::Neg, [a]) => *a,
            _ => Top,
        };
        AbsVal::new(out)
    }

    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        use ParityVal::*;
        let s = self.args(args);
        if s.contains(&Bot) {
            return PeVal::Bottom;
        }
        match (p, s.as_slice()) {
            // Different parities ⇒ the integers differ.
            (Prim::Eq, [Even, Odd] | [Odd, Even]) => PeVal::constant(false.into()),
            (Prim::Ne, [Even, Odd] | [Odd, Even]) => PeVal::constant(true.into()),
            _ => PeVal::Top,
        }
    }

    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        match self.get(abs) {
            ParityVal::Top => true,
            ParityVal::Bot => false,
            p => matches!(v, Value::Int(n) if ParityVal::of_i64(*n) == p),
        }
    }

    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        Some(ParityVal::ALL.iter().map(|p| AbsVal::new(*p)).collect())
    }

    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        mimic(ParityFacet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::Const;

    fn a(p: ParityVal) -> AbsVal {
        AbsVal::new(p)
    }

    #[test]
    fn alpha_classifies_integers() {
        let f = ParityFacet;
        assert_eq!(
            f.alpha(&Value::Int(4)).downcast_ref(),
            Some(&ParityVal::Even)
        );
        assert_eq!(
            f.alpha(&Value::Int(-3)).downcast_ref(),
            Some(&ParityVal::Odd)
        );
        assert_eq!(
            f.alpha(&Value::Float(2.0)).downcast_ref(),
            Some(&ParityVal::Top)
        );
    }

    #[test]
    fn parity_arithmetic() {
        let f = ParityFacet;
        let add = |x, y| {
            f.closed_op_on(Prim::Add, &[a(x), a(y)])
                .downcast_ref::<ParityVal>()
                .copied()
                .unwrap()
        };
        assert_eq!(add(ParityVal::Odd, ParityVal::Odd), ParityVal::Even);
        assert_eq!(add(ParityVal::Odd, ParityVal::Even), ParityVal::Odd);
        let mul = |x, y| {
            f.closed_op_on(Prim::Mul, &[a(x), a(y)])
                .downcast_ref::<ParityVal>()
                .copied()
                .unwrap()
        };
        assert_eq!(mul(ParityVal::Even, ParityVal::Top), ParityVal::Even);
        assert_eq!(mul(ParityVal::Odd, ParityVal::Odd), ParityVal::Odd);
        assert_eq!(mul(ParityVal::Odd, ParityVal::Top), ParityVal::Top);
    }

    #[test]
    fn equality_decided_by_differing_parity() {
        let f = ParityFacet;
        assert_eq!(
            f.open_op_on(Prim::Eq, &[a(ParityVal::Even), a(ParityVal::Odd)]),
            PeVal::constant(Const::Bool(false))
        );
        assert_eq!(
            f.open_op_on(Prim::Eq, &[a(ParityVal::Even), a(ParityVal::Even)]),
            PeVal::Top
        );
    }

    #[test]
    fn strictness() {
        let f = ParityFacet;
        assert_eq!(
            f.open_op_on(Prim::Eq, &[a(ParityVal::Bot), a(ParityVal::Odd)]),
            PeVal::Bottom
        );
        assert_eq!(
            f.closed_op_on(Prim::Add, &[a(ParityVal::Bot), a(ParityVal::Odd)]),
            f.bottom()
        );
    }

    #[test]
    fn concretization_respects_alpha() {
        let f = ParityFacet;
        for n in [-5i64, -2, 0, 7, 100] {
            let v = Value::Int(n);
            assert!(f.concretizes(&f.alpha(&v), &v));
        }
        assert!(!f.concretizes(&a(ParityVal::Even), &Value::Int(3)));
    }
}
