//! A vector *Contents* facet: abstract values carry the exact contents of
//! a vector, element by element.
//!
//! This facet demonstrates the reach of the paper's framework beyond the
//! examples it shows: facet domains may embed concrete data. Vectors have
//! no textual representation, so the partial evaluation facet can never
//! make `vref` static — but a Contents facet can: `Vref̂(exact, i)` with a
//! constant in-range index *is* a constant (an open operator triggering a
//! computation, Section 3.2). This is what lets an interpreter whose
//! program is a statically known vector be specialized away — see
//! `examples/interpreter.rs`.
//!
//! Elements form the two-point chain `Known(c) ⊑ Unknown`; vectors of
//! equal length are ordered pointwise, different lengths are incomparable.
//! The domain height is bounded by the longest vector plus two, finite for
//! any program run.

use std::fmt;
use std::rc::Rc;

use ppe_lang::{Const, Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::{AbstractArg, AbstractFacet};
use crate::bt_val::BtVal;
use crate::facet::{Facet, FacetArg};
use crate::pe_val::PeVal;

/// Largest vector the facet tracks exactly; longer ones abstract to `⊤`
/// (keeps abstract values and cache keys small).
pub const MAX_TRACKED: usize = 4_096;

/// One tracked element: a known constant or an unknown value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemVal {
    /// The element is this constant.
    Known(Const),
    /// The element is something (possibly not even a constant).
    Unknown,
}

impl ElemVal {
    fn join(self, other: ElemVal) -> ElemVal {
        match (self, other) {
            (ElemVal::Known(a), ElemVal::Known(b)) if a == b => self,
            _ => ElemVal::Unknown,
        }
    }

    fn leq(self, other: ElemVal) -> bool {
        matches!(other, ElemVal::Unknown) || self == other
    }
}

/// An element of the Contents domain.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ContentsVal {
    /// `⊥` — undefined.
    Bot,
    /// A vector of exactly these (partially known) elements.
    Exact(Vec<ElemVal>),
    /// `⊤` — not a vector, or contents unknown.
    Top,
}

impl ContentsVal {
    /// An exact vector with every element known.
    pub fn known(elems: Vec<Const>) -> ContentsVal {
        ContentsVal::Exact(elems.into_iter().map(ElemVal::Known).collect())
    }
}

impl fmt::Display for ContentsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentsVal::Bot => f.write_str("⊥"),
            ContentsVal::Top => f.write_str("⊤"),
            ContentsVal::Exact(elems) => {
                f.write_str("#(")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    match e {
                        ElemVal::Known(c) => write!(f, "{c}")?,
                        ElemVal::Unknown => f.write_str("?")?,
                    }
                }
                f.write_str(")")
            }
        }
    }
}

/// The Contents facet.
///
/// # Examples
///
/// ```
/// use ppe_core::facets::{ContentsFacet, ContentsVal};
/// use ppe_core::{AbsVal, Facet, PeVal};
/// use ppe_lang::{Const, Prim, Value};
///
/// let f = ContentsFacet;
/// let code = f.alpha(&Value::vector(vec![Value::Int(7), Value::Int(9)]));
/// // Reading a known element at a constant index is a *constant*.
/// let pe_idx = PeVal::constant(Const::Int(2));
/// let pe_top = PeVal::Top;
/// let idx_abs = f.top();
/// let out = f.open_op(
///     Prim::VRef,
///     &[
///         ppe_core::FacetArg { pe: &pe_top, abs: &code },
///         ppe_core::FacetArg { pe: &pe_idx, abs: &idx_abs },
///     ],
/// );
/// assert_eq!(out, PeVal::constant(Const::Int(9)));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ContentsFacet;

impl ContentsFacet {
    fn get<'a>(&self, v: &'a AbsVal) -> &'a ContentsVal {
        v.expect_ref::<ContentsVal>("contents")
    }
}

impl Facet for ContentsFacet {
    fn name(&self) -> &'static str {
        "contents"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(ContentsVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(ContentsVal::Top)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        let out = match (self.get(a), self.get(b)) {
            (ContentsVal::Bot, x) | (x, ContentsVal::Bot) => x.clone(),
            (ContentsVal::Exact(x), ContentsVal::Exact(y)) if x.len() == y.len() => {
                ContentsVal::Exact(x.iter().zip(y).map(|(p, q)| p.join(*q)).collect())
            }
            _ => ContentsVal::Top,
        };
        AbsVal::new(out)
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        match (self.get(a), self.get(b)) {
            (ContentsVal::Bot, _) | (_, ContentsVal::Top) => true,
            (ContentsVal::Exact(x), ContentsVal::Exact(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.leq(*q))
            }
            _ => false,
        }
    }

    fn alpha(&self, v: &Value) -> AbsVal {
        AbsVal::new(match v {
            Value::Vector(elems) if elems.len() <= MAX_TRACKED => ContentsVal::Exact(
                elems
                    .iter()
                    .map(|e| match e.to_const() {
                        Some(c) => ElemVal::Known(c),
                        None => ElemVal::Unknown,
                    })
                    .collect(),
            ),
            _ => ContentsVal::Top,
        })
    }

    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        match p {
            Prim::MkVec => AbsVal::new(match args[0].pe {
                PeVal::Bottom => ContentsVal::Bot,
                PeVal::Const(Const::Int(n)) if (0..=MAX_TRACKED as i64).contains(n) => {
                    ContentsVal::Exact(vec![
                        ElemVal::Known(Const::Float(
                            ppe_lang::F64::new(0.0).expect("0.0 is not NaN"),
                        ));
                        *n as usize
                    ])
                }
                _ => ContentsVal::Top,
            }),
            Prim::UpdVec => {
                if *args[1].pe == PeVal::Bottom || *args[2].pe == PeVal::Bottom {
                    return self.bottom();
                }
                match self.get(args[0].abs) {
                    ContentsVal::Bot => self.bottom(),
                    ContentsVal::Top => self.top(),
                    ContentsVal::Exact(elems) => match args[1].pe {
                        // Constant in-range index: update that element.
                        PeVal::Const(Const::Int(i)) if *i >= 1 && (*i as usize) <= elems.len() => {
                            let mut out = elems.clone();
                            out[(*i - 1) as usize] = match args[2].pe.as_const() {
                                Some(c) => ElemVal::Known(c),
                                None => ElemVal::Unknown,
                            };
                            AbsVal::new(ContentsVal::Exact(out))
                        }
                        // Constant out-of-range index: the concrete
                        // operation errors, denoting ⊥.
                        PeVal::Const(Const::Int(_)) => self.bottom(),
                        PeVal::Const(_) => self.bottom(), // type error: ⊥
                        // Unknown index: any element may have changed,
                        // but the length is preserved.
                        _ => AbsVal::new(ContentsVal::Exact(vec![ElemVal::Unknown; elems.len()])),
                    },
                }
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    self.bottom()
                } else {
                    self.top()
                }
            }
        }
    }

    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        match p {
            Prim::VSize => match self.get(args[0].abs) {
                ContentsVal::Bot => PeVal::Bottom,
                ContentsVal::Exact(elems) => PeVal::constant(Const::Int(elems.len() as i64)),
                ContentsVal::Top => {
                    if *args[0].pe == PeVal::Bottom {
                        PeVal::Bottom
                    } else {
                        PeVal::Top
                    }
                }
            },
            Prim::VRef => {
                if *args[0].pe == PeVal::Bottom || *args[1].pe == PeVal::Bottom {
                    return PeVal::Bottom;
                }
                match self.get(args[0].abs) {
                    ContentsVal::Bot => PeVal::Bottom,
                    ContentsVal::Top => PeVal::Top,
                    ContentsVal::Exact(elems) => match args[1].pe {
                        PeVal::Const(Const::Int(i)) if *i >= 1 && (*i as usize) <= elems.len() => {
                            match elems[(*i - 1) as usize] {
                                ElemVal::Known(c) => PeVal::constant(c),
                                ElemVal::Unknown => PeVal::Top,
                            }
                        }
                        // Constant index out of range: ⊥ (concrete error).
                        PeVal::Const(_) => PeVal::Bottom,
                        _ => PeVal::Top,
                    },
                }
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    PeVal::Bottom
                } else {
                    PeVal::Top
                }
            }
        }
    }

    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        match self.get(abs) {
            ContentsVal::Bot => false,
            ContentsVal::Top => true,
            ContentsVal::Exact(elems) => match v {
                Value::Vector(actual) => {
                    actual.len() == elems.len()
                        && actual.iter().zip(elems).all(|(a, e)| match e {
                            ElemVal::Known(c) => a.to_const() == Some(*c),
                            ElemVal::Unknown => true,
                        })
                }
                _ => false,
            },
        }
    }

    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        Rc::new(AbstractContentsFacet)
    }
}

/// The offline abstraction of [`ContentsFacet`]: the chain
/// `⊥ ⊑ all-known ⊑ length-known ⊑ dynamic`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum AbstractContentsVal {
    /// `⊥`.
    Bot,
    /// Every element statically known.
    AllKnown,
    /// Length known, some elements unknown.
    LengthKnown,
    /// Nothing known.
    Dynamic,
}

impl fmt::Display for AbstractContentsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AbstractContentsVal::Bot => "⊥",
            AbstractContentsVal::AllKnown => "known",
            AbstractContentsVal::LengthKnown => "len",
            AbstractContentsVal::Dynamic => "d",
        })
    }
}

/// The abstract Contents facet (offline level).
#[derive(Clone, Copy, Debug, Default)]
pub struct AbstractContentsFacet;

impl AbstractContentsFacet {
    fn get(&self, v: &AbsVal) -> AbstractContentsVal {
        *v.expect_ref::<AbstractContentsVal>("contents (abstract)")
    }
}

impl AbstractFacet for AbstractContentsFacet {
    fn name(&self) -> &'static str {
        "contents"
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::new(AbstractContentsVal::Bot)
    }

    fn top(&self) -> AbsVal {
        AbsVal::new(AbstractContentsVal::Dynamic)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal::new(self.get(a).max(self.get(b)))
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.get(a) <= self.get(b)
    }

    fn alpha_facet(&self, online: &AbsVal) -> AbsVal {
        AbsVal::new(match online.expect_ref::<ContentsVal>("contents") {
            ContentsVal::Bot => AbstractContentsVal::Bot,
            ContentsVal::Exact(elems) => {
                if elems.iter().all(|e| matches!(e, ElemVal::Known(_))) {
                    AbstractContentsVal::AllKnown
                } else {
                    AbstractContentsVal::LengthKnown
                }
            }
            ContentsVal::Top => AbstractContentsVal::Dynamic,
        })
    }

    fn closed_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> AbsVal {
        match p {
            Prim::MkVec => AbsVal::new(match args[0].bt {
                BtVal::Bottom => AbstractContentsVal::Bot,
                BtVal::Static => AbstractContentsVal::AllKnown,
                BtVal::Dynamic => AbstractContentsVal::Dynamic,
            }),
            Prim::UpdVec => {
                if *args[1].bt == BtVal::Bottom || *args[2].bt == BtVal::Bottom {
                    return self.bottom();
                }
                let v = self.get(args[0].abs);
                AbsVal::new(match v {
                    AbstractContentsVal::Bot => AbstractContentsVal::Bot,
                    AbstractContentsVal::Dynamic => AbstractContentsVal::Dynamic,
                    _ => {
                        if *args[1].bt == BtVal::Static
                            && *args[2].bt == BtVal::Static
                            && v == AbstractContentsVal::AllKnown
                        {
                            AbstractContentsVal::AllKnown
                        } else {
                            AbstractContentsVal::LengthKnown
                        }
                    }
                })
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    self.bottom()
                } else {
                    self.top()
                }
            }
        }
    }

    fn open_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> BtVal {
        match p {
            Prim::VSize => match self.get(args[0].abs) {
                AbstractContentsVal::Bot => BtVal::Bottom,
                AbstractContentsVal::AllKnown | AbstractContentsVal::LengthKnown => BtVal::Static,
                AbstractContentsVal::Dynamic => {
                    if *args[0].bt == BtVal::Bottom {
                        BtVal::Bottom
                    } else {
                        BtVal::Dynamic
                    }
                }
            },
            Prim::VRef => {
                if *args[0].bt == BtVal::Bottom || *args[1].bt == BtVal::Bottom {
                    return BtVal::Bottom;
                }
                match (self.get(args[0].abs), args[1].bt) {
                    (AbstractContentsVal::Bot, _) => BtVal::Bottom,
                    (AbstractContentsVal::AllKnown, BtVal::Static) => BtVal::Static,
                    _ => BtVal::Dynamic,
                }
            }
            _ => {
                if args.iter().any(|a| self.arg_is_bottom(a)) {
                    BtVal::Bottom
                } else {
                    BtVal::Dynamic
                }
            }
        }
    }

    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        Some(
            [
                AbstractContentsVal::Bot,
                AbstractContentsVal::AllKnown,
                AbstractContentsVal::LengthKnown,
                AbstractContentsVal::Dynamic,
            ]
            .iter()
            .map(|v| AbsVal::new(*v))
            .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arg<'a>(pe: &'a PeVal, abs: &'a AbsVal) -> FacetArg<'a> {
        FacetArg { pe, abs }
    }

    #[test]
    fn alpha_captures_exact_contents() {
        let f = ContentsFacet;
        let v = Value::vector(vec![Value::Int(1), Value::Bool(true)]);
        let a = f.alpha(&v);
        assert_eq!(
            a.downcast_ref::<ContentsVal>(),
            Some(&ContentsVal::known(vec![Const::Int(1), Const::Bool(true)]))
        );
        assert!(f.concretizes(&a, &v));
    }

    #[test]
    fn vref_of_known_element_is_a_constant() {
        let f = ContentsFacet;
        let code = AbsVal::new(ContentsVal::known(vec![Const::Int(10), Const::Int(20)]));
        let pe_top = PeVal::Top;
        let idx = PeVal::constant(Const::Int(1));
        let top = f.top();
        let out = f.open_op(Prim::VRef, &[arg(&pe_top, &code), arg(&idx, &top)]);
        assert_eq!(out, PeVal::constant(Const::Int(10)));
    }

    #[test]
    fn vref_out_of_range_is_bottom() {
        let f = ContentsFacet;
        let code = AbsVal::new(ContentsVal::known(vec![Const::Int(10)]));
        let pe_top = PeVal::Top;
        let idx = PeVal::constant(Const::Int(5));
        let top = f.top();
        let out = f.open_op(Prim::VRef, &[arg(&pe_top, &code), arg(&idx, &top)]);
        assert_eq!(out, PeVal::Bottom);
    }

    #[test]
    fn updvec_with_constant_index_updates_the_element() {
        let f = ContentsFacet;
        let v = AbsVal::new(ContentsVal::known(vec![Const::Int(1), Const::Int(2)]));
        let pe_top = PeVal::Top;
        let idx = PeVal::constant(Const::Int(2));
        let val = PeVal::constant(Const::Int(9));
        let top = f.top();
        let out = f.closed_op(
            Prim::UpdVec,
            &[arg(&pe_top, &v), arg(&idx, &top), arg(&val, &top)],
        );
        assert_eq!(
            out.downcast_ref::<ContentsVal>(),
            Some(&ContentsVal::known(vec![Const::Int(1), Const::Int(9)]))
        );
    }

    #[test]
    fn updvec_with_dynamic_index_forgets_elements_but_keeps_length() {
        let f = ContentsFacet;
        let v = AbsVal::new(ContentsVal::known(vec![Const::Int(1), Const::Int(2)]));
        let pe_top = PeVal::Top;
        let top = f.top();
        let out = f.closed_op(
            Prim::UpdVec,
            &[arg(&pe_top, &v), arg(&pe_top, &top), arg(&pe_top, &top)],
        );
        assert_eq!(
            out.downcast_ref::<ContentsVal>(),
            Some(&ContentsVal::Exact(vec![ElemVal::Unknown; 2]))
        );
    }

    #[test]
    fn updvec_with_dynamic_value_only_forgets_that_slot() {
        let f = ContentsFacet;
        let v = AbsVal::new(ContentsVal::known(vec![Const::Int(1), Const::Int(2)]));
        let pe_top = PeVal::Top;
        let idx = PeVal::constant(Const::Int(1));
        let top = f.top();
        let out = f.closed_op(
            Prim::UpdVec,
            &[arg(&pe_top, &v), arg(&idx, &top), arg(&pe_top, &top)],
        );
        assert_eq!(
            out.downcast_ref::<ContentsVal>(),
            Some(&ContentsVal::Exact(vec![
                ElemVal::Unknown,
                ElemVal::Known(Const::Int(2)),
            ]))
        );
    }

    #[test]
    fn mkvec_makes_known_zeros() {
        let f = ContentsFacet;
        let n = PeVal::constant(Const::Int(2));
        let top = f.top();
        let out = f.closed_op(Prim::MkVec, &[arg(&n, &top)]);
        match out.downcast_ref::<ContentsVal>() {
            Some(ContentsVal::Exact(e)) => {
                assert_eq!(e.len(), 2);
                assert!(matches!(e[0], ElemVal::Known(Const::Float(_))));
            }
            other => panic!("expected Exact, got {other:?}"),
        }
    }

    #[test]
    fn vsize_knows_the_length() {
        let f = ContentsFacet;
        let v = AbsVal::new(ContentsVal::Exact(vec![ElemVal::Unknown; 7]));
        assert_eq!(
            f.open_op_on(Prim::VSize, &[v]),
            PeVal::constant(Const::Int(7))
        );
    }

    #[test]
    fn lattice_orders_pointwise() {
        let f = ContentsFacet;
        let known = AbsVal::new(ContentsVal::known(vec![Const::Int(1)]));
        let fuzzy = AbsVal::new(ContentsVal::Exact(vec![ElemVal::Unknown]));
        assert!(f.leq(&known, &fuzzy));
        assert!(!f.leq(&fuzzy, &known));
        assert_eq!(f.join(&known, &fuzzy), fuzzy);
        // Different lengths join to ⊤.
        let longer = AbsVal::new(ContentsVal::Exact(vec![ElemVal::Unknown; 2]));
        assert_eq!(f.join(&fuzzy, &longer), f.top());
    }

    #[test]
    fn facet_passes_the_safety_battery() {
        let mut candidates = crate::consistency::default_candidates();
        candidates.push(Value::vector(vec![Value::Int(1), Value::Int(2)]));
        candidates.push(Value::vector(vec![Value::Float(1.5)]));
        crate::safety::validate_facet(&ContentsFacet, &candidates).unwrap();
    }

    #[test]
    fn abstract_level_follows_the_chain() {
        let a = AbstractContentsFacet;
        let known = AbsVal::new(AbstractContentsVal::AllKnown);
        let len = AbsVal::new(AbstractContentsVal::LengthKnown);
        assert!(a.leq(&known, &len));
        // vref of all-known contents at a static index is Static.
        let bt_static = BtVal::Static;
        let out = a.open_op(
            Prim::VRef,
            &[
                AbstractArg {
                    bt: &bt_static,
                    abs: &known,
                },
                AbstractArg {
                    bt: &bt_static,
                    abs: &a.top(),
                },
            ],
        );
        assert_eq!(out, BtVal::Static);
    }
}
