//! The Sign facet of Examples 1 and 2, extended from `{+, ≺}` to the full
//! numeric algebra.
//!
//! Domain: `D̂ = {⊥, pos, zero, neg, ⊤}` with `⊥ ⊑ d ⊑ ⊤` and
//! `pos`/`zero`/`neg` pairwise incomparable. Arithmetic is closed; the
//! comparisons are open and decide a comparison whenever the signs suffice
//! (`≺̂(zero, pos) = true` in the paper).

use std::fmt;
use std::rc::Rc;

use ppe_lang::{Prim, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::AbstractFacet;
use crate::facet::{Facet, FacetArg};
use crate::facets::mimic::mimic;
use crate::pe_val::PeVal;

/// An element of the Sign domain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SignVal {
    /// `⊥` — undefined.
    Bot,
    /// Strictly positive.
    Pos,
    /// Exactly zero.
    Zero,
    /// Strictly negative.
    Neg,
    /// `⊤` — unknown sign (or not a number at all).
    Top,
}

impl SignVal {
    /// All five elements (the domain is tiny and flat).
    pub const ALL: [SignVal; 5] = [
        SignVal::Bot,
        SignVal::Pos,
        SignVal::Zero,
        SignVal::Neg,
        SignVal::Top,
    ];

    /// The sign of an integer.
    pub fn of_i64(n: i64) -> SignVal {
        match n.cmp(&0) {
            std::cmp::Ordering::Greater => SignVal::Pos,
            std::cmp::Ordering::Equal => SignVal::Zero,
            std::cmp::Ordering::Less => SignVal::Neg,
        }
    }

    /// The sign of a float.
    pub fn of_f64(x: f64) -> SignVal {
        if x > 0.0 {
            SignVal::Pos
        } else if x < 0.0 {
            SignVal::Neg
        } else {
            SignVal::Zero
        }
    }

    fn join(self, other: SignVal) -> SignVal {
        match (self, other) {
            (SignVal::Bot, x) | (x, SignVal::Bot) => x,
            (a, b) if a == b => a,
            _ => SignVal::Top,
        }
    }

    fn leq(self, other: SignVal) -> bool {
        self == SignVal::Bot || other == SignVal::Top || self == other
    }

    /// The set of orderings `a ? b` consistent with the signs, or `None`
    /// when either side is `⊥`. This single table derives every
    /// comparison operator soundly.
    fn possible_orderings(self, other: SignVal) -> Option<Vec<std::cmp::Ordering>> {
        use std::cmp::Ordering::*;
        if self == SignVal::Bot || other == SignVal::Bot {
            return None;
        }
        Some(match (self, other) {
            (SignVal::Zero, SignVal::Zero) => vec![Equal],
            (SignVal::Pos, SignVal::Zero | SignVal::Neg) => vec![Greater],
            (SignVal::Zero, SignVal::Neg) => vec![Greater],
            (SignVal::Neg, SignVal::Zero | SignVal::Pos) => vec![Less],
            (SignVal::Zero, SignVal::Pos) => vec![Less],
            _ => vec![Less, Equal, Greater],
        })
    }
}

impl fmt::Display for SignVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SignVal::Bot => "⊥",
            SignVal::Pos => "pos",
            SignVal::Zero => "zero",
            SignVal::Neg => "neg",
            SignVal::Top => "⊤",
        })
    }
}

/// The Sign facet (Example 1), a [`Facet`] over the numeric algebra.
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::{SignFacet, SignVal}, AbsVal, Facet, PeVal};
/// use ppe_lang::{Const, Prim, Value};
///
/// let f = SignFacet;
/// assert_eq!(f.alpha(&Value::Int(-7)).downcast_ref::<SignVal>(), Some(&SignVal::Neg));
/// let out = f.open_op_on(Prim::Lt, &[AbsVal::new(SignVal::Neg), AbsVal::new(SignVal::Pos)]);
/// assert_eq!(out, PeVal::constant(Const::Bool(true)));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SignFacet;

impl SignFacet {
    fn get(&self, v: &AbsVal) -> SignVal {
        *v.expect_ref::<SignVal>("sign")
    }

    fn abs(&self, s: SignVal) -> AbsVal {
        AbsVal::new(s)
    }

    fn args_signs(&self, args: &[FacetArg<'_>]) -> Vec<SignVal> {
        args.iter()
            .map(|a| {
                if *a.pe == PeVal::Bottom {
                    SignVal::Bot
                } else {
                    self.get(a.abs)
                }
            })
            .collect()
    }
}

impl Facet for SignFacet {
    fn name(&self) -> &'static str {
        "sign"
    }

    fn bottom(&self) -> AbsVal {
        self.abs(SignVal::Bot)
    }

    fn top(&self) -> AbsVal {
        self.abs(SignVal::Top)
    }

    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        self.abs(self.get(a).join(self.get(b)))
    }

    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        self.get(a).leq(self.get(b))
    }

    fn alpha(&self, v: &Value) -> AbsVal {
        self.abs(match v {
            Value::Int(n) => SignVal::of_i64(*n),
            Value::Float(x) => SignVal::of_f64(*x),
            _ => SignVal::Top,
        })
    }

    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        use SignVal::*;
        let s = self.args_signs(args);
        if s.contains(&Bot) {
            return self.bottom();
        }
        let out = match (p, s.as_slice()) {
            // The paper's +̂ (Example 1): zero is the identity, equal signs
            // are preserved, mixed signs join to ⊤.
            (Prim::Add, [a, b]) => match (a, b) {
                (Zero, x) | (x, Zero) => *x,
                (a, b) if a == b => *a,
                _ => Top,
            },
            (Prim::Sub, [a, b]) => {
                let neg_b = match b {
                    Pos => Neg,
                    Neg => Pos,
                    other => *other,
                };
                match (*a, neg_b) {
                    (Zero, x) | (x, Zero) => x,
                    (x, y) if x == y => x,
                    _ => Top,
                }
            }
            (Prim::Mul, [a, b]) => match (a, b) {
                (Zero, _) | (_, Zero) => Zero,
                (Pos, Pos) | (Neg, Neg) => Pos,
                (Pos, Neg) | (Neg, Pos) => Neg,
                _ => Top,
            },
            (Prim::Neg, [a]) => match a {
                Pos => Neg,
                Neg => Pos,
                Zero => Zero,
                other => *other,
            },
            // `mod` by a nonzero divisor is ≥ 0 (rem_euclid); without a
            // "nonneg" point the best sound answer is ⊤ — except that a
            // zero dividend gives zero.
            (Prim::Mod, [Zero, _]) => Zero,
            _ => Top,
        };
        self.abs(out)
    }

    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        use std::cmp::Ordering::*;
        let s = self.args_signs(args);
        if s.contains(&SignVal::Bot) {
            return PeVal::Bottom;
        }
        let accept: fn(std::cmp::Ordering) -> bool = match p {
            Prim::Lt => |o| o == Less,
            Prim::Le => |o| o != Greater,
            Prim::Gt => |o| o == Greater,
            Prim::Ge => |o| o != Less,
            Prim::Eq => |o| o == Equal,
            Prim::Ne => |o| o != Equal,
            _ => return PeVal::Top,
        };
        let [a, b] = [s[0], s[1]];
        // Comparisons only decide over numeric signs; ⊤ may stand for a
        // non-number, where the comparison errors (⊥), so deciding from ⊤
        // would still be safe — but nothing can be decided from ⊤ anyway.
        match a.possible_orderings(b) {
            None => PeVal::Bottom,
            Some(orderings) => {
                if a == SignVal::Top || b == SignVal::Top {
                    return PeVal::Top;
                }
                let outcomes: Vec<bool> = orderings.into_iter().map(accept).collect();
                if outcomes.iter().all(|&x| x) {
                    PeVal::constant(true.into())
                } else if outcomes.iter().all(|&x| !x) {
                    PeVal::constant(false.into())
                } else {
                    PeVal::Top
                }
            }
        }
    }

    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        let sign = self.get(abs);
        match sign {
            SignVal::Top => true,
            SignVal::Bot => false,
            s => match v {
                Value::Int(n) => SignVal::of_i64(*n) == s,
                Value::Float(x) => SignVal::of_f64(*x) == s,
                _ => false,
            },
        }
    }

    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        Some(SignVal::ALL.iter().map(|s| AbsVal::new(*s)).collect())
    }

    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        // Example 2: the Sign abstract facet is the Sign facet itself
        // under the identity facet mapping.
        mimic(SignFacet)
    }

    /// Constraint propagation: knowing `(p a b) = outcome` narrows the
    /// sign of one argument. Derived generically from the orderings
    /// table: the refined sign joins every base sign compatible with some
    /// ordering that yields `outcome`.
    fn assume(
        &self,
        p: Prim,
        args: &[FacetArg<'_>],
        outcome: bool,
        position: usize,
    ) -> Option<AbsVal> {
        use std::cmp::Ordering::*;
        if args.len() != 2 || position > 1 {
            return None;
        }
        let accept: fn(std::cmp::Ordering) -> bool = match p {
            Prim::Lt => |o| o == Less,
            Prim::Le => |o| o != Greater,
            Prim::Gt => |o| o == Greater,
            Prim::Ge => |o| o != Less,
            Prim::Eq => |o| o == Equal,
            Prim::Ne => |o| o != Equal,
            _ => return None,
        };
        let signs = self.args_signs(args);
        let other = signs[1 - position];
        if matches!(other, SignVal::Bot | SignVal::Top) {
            return None;
        }
        let mut refined = SignVal::Bot;
        for candidate in [SignVal::Pos, SignVal::Zero, SignVal::Neg] {
            let (a, b) = if position == 0 {
                (candidate, other)
            } else {
                (other, candidate)
            };
            let Some(orderings) = a.possible_orderings(b) else {
                continue;
            };
            if orderings.into_iter().any(|o| accept(o) == outcome) {
                refined = refined.join(candidate);
            }
        }
        // Meet with what is already known (flat domain).
        let current = signs[position];
        let out = match (current, refined) {
            (SignVal::Top, r) => r,
            (c, SignVal::Top) => c,
            (c, r) if c == r => c,
            // Contradiction: this branch is unreachable.
            _ => SignVal::Bot,
        };
        if out == current {
            None
        } else {
            Some(AbsVal::new(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::Const;

    fn a(s: SignVal) -> AbsVal {
        AbsVal::new(s)
    }

    #[test]
    fn alpha_classifies_numbers() {
        let f = SignFacet;
        assert_eq!(f.alpha(&Value::Int(0)).downcast_ref(), Some(&SignVal::Zero));
        assert_eq!(
            f.alpha(&Value::Float(-0.5)).downcast_ref(),
            Some(&SignVal::Neg)
        );
        assert_eq!(
            f.alpha(&Value::Bool(true)).downcast_ref(),
            Some(&SignVal::Top)
        );
    }

    #[test]
    fn add_follows_example_1() {
        let f = SignFacet;
        let plus = |x, y| {
            f.closed_op_on(Prim::Add, &[a(x), a(y)])
                .downcast_ref::<SignVal>()
                .copied()
                .unwrap()
        };
        assert_eq!(plus(SignVal::Zero, SignVal::Neg), SignVal::Neg);
        assert_eq!(plus(SignVal::Pos, SignVal::Zero), SignVal::Pos);
        assert_eq!(plus(SignVal::Pos, SignVal::Pos), SignVal::Pos);
        assert_eq!(plus(SignVal::Pos, SignVal::Neg), SignVal::Top);
        assert_eq!(plus(SignVal::Bot, SignVal::Pos), SignVal::Bot);
    }

    #[test]
    fn mul_knows_the_rule_of_signs() {
        let f = SignFacet;
        let times = |x, y| {
            f.closed_op_on(Prim::Mul, &[a(x), a(y)])
                .downcast_ref::<SignVal>()
                .copied()
                .unwrap()
        };
        assert_eq!(times(SignVal::Neg, SignVal::Neg), SignVal::Pos);
        assert_eq!(times(SignVal::Pos, SignVal::Neg), SignVal::Neg);
        assert_eq!(times(SignVal::Zero, SignVal::Top), SignVal::Zero);
    }

    #[test]
    fn lt_follows_example_1_table() {
        let f = SignFacet;
        let lt = |x, y| f.open_op_on(Prim::Lt, &[a(x), a(y)]);
        assert_eq!(
            lt(SignVal::Pos, SignVal::Neg),
            PeVal::constant(Const::Bool(false))
        );
        assert_eq!(
            lt(SignVal::Pos, SignVal::Zero),
            PeVal::constant(Const::Bool(false))
        );
        assert_eq!(
            lt(SignVal::Zero, SignVal::Pos),
            PeVal::constant(Const::Bool(true))
        );
        assert_eq!(
            lt(SignVal::Zero, SignVal::Zero),
            PeVal::constant(Const::Bool(false))
        );
        assert_eq!(
            lt(SignVal::Neg, SignVal::Pos),
            PeVal::constant(Const::Bool(true))
        );
        assert_eq!(
            lt(SignVal::Neg, SignVal::Zero),
            PeVal::constant(Const::Bool(true))
        );
        assert_eq!(lt(SignVal::Pos, SignVal::Pos), PeVal::Top);
        assert_eq!(lt(SignVal::Top, SignVal::Neg), PeVal::Top);
        assert_eq!(lt(SignVal::Bot, SignVal::Pos), PeVal::Bottom);
    }

    #[test]
    fn equality_decides_zero_zero() {
        let f = SignFacet;
        assert_eq!(
            f.open_op_on(Prim::Eq, &[a(SignVal::Zero), a(SignVal::Zero)]),
            PeVal::constant(Const::Bool(true))
        );
        assert_eq!(
            f.open_op_on(Prim::Ne, &[a(SignVal::Pos), a(SignVal::Zero)]),
            PeVal::constant(Const::Bool(true))
        );
        assert_eq!(
            f.open_op_on(Prim::Eq, &[a(SignVal::Pos), a(SignVal::Pos)]),
            PeVal::Top
        );
    }

    #[test]
    fn concretization_contains_alpha_image() {
        let f = SignFacet;
        for v in [
            Value::Int(-3),
            Value::Int(0),
            Value::Int(9),
            Value::Float(2.5),
        ] {
            let abs = f.alpha(&v);
            assert!(f.concretizes(&abs, &v), "{v:?} ∉ γ(α({v:?}))");
        }
    }

    #[test]
    fn enumerate_covers_the_domain() {
        let f = SignFacet;
        let all = f.enumerate().unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.contains(&f.bottom()) && all.contains(&f.top()));
    }
}
