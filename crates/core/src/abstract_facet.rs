//! The [`AbstractFacet`] trait — the paper's Definition 8.
//!
//! An abstract facet `[D̄; Ō]` abstracts a facet `[D̂; Ô]` by a facet mapping
//! `ᾱ_D̂ : D̂ → D̄` *with respect to `Values̄`*: closed operators compute new
//! abstract values as before, while an open operator *mimics* the facet's
//! open operator — instead of a constant it produces `Static`, instead of
//! `⊤` it produces `Dynamic` (Property 6). Facet analysis (Figure 4) runs
//! entirely at this level, before specialization.

use std::fmt::Debug;

use ppe_lang::{Prim, Value};

use crate::abs_val::AbsVal;
use crate::bt_val::BtVal;

/// One argument of an abstract-facet operator: the abstract facet's own
/// component plus the binding-time component of the same product value
/// (mirroring [`crate::FacetArg`]; compare `MkV̄ec : Values̄ → V̄` in
/// Section 6.2, which consumes the binding-time component).
#[derive(Clone, Copy, Debug)]
pub struct AbstractArg<'a> {
    /// The binding-time facet's view of this argument.
    pub bt: &'a BtVal,
    /// This abstract facet's view of the argument.
    pub abs: &'a AbsVal,
}

/// The offline abstraction of a [`crate::Facet`] (Definition 8).
///
/// The same safety obligations as for facets apply, with `Values̄` in place
/// of `Values` (Definition 2 via the mapping `τ̄`); [`crate::safety`] checks
/// them, including Property 6: if an open operator returns `Static`, the
/// corresponding facet operator returns a constant (or `⊥`) on all related
/// inputs.
///
/// As with [`crate::Facet`], default operator implementations are maximally
/// uninformative but safe: closed operators return `⊤`, open operators
/// return `Dynamic`, both strict in `⊥`.
pub trait AbstractFacet: Debug {
    /// A short identifier used in diagnostics and printed tables.
    fn name(&self) -> &'static str;

    /// The least element of the abstract domain `D̄`.
    fn bottom(&self) -> AbsVal;

    /// The greatest element of the abstract domain `D̄`.
    fn top(&self) -> AbsVal;

    /// Least upper bound.
    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal;

    /// The domain's partial order.
    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool;

    /// The facet mapping `ᾱ_D̂ : D̂ → D̄` from the *online* facet's domain
    /// into this abstract domain (Definition 8). For facets whose offline
    /// domain coincides with the online one (e.g. Sign, Example 2) this is
    /// the identity.
    fn alpha_facet(&self, online: &AbsVal) -> AbsVal;

    /// Abstraction of a concrete value straight to this level — the
    /// composition `Γ̄ = ᾱ_D̄ ∘ α̂_D̂` used by `K̄` in Figure 4. Implementors
    /// get it for free once `alpha_facet` is defined, via
    /// [`crate::AbstractFacetSet`]; this hook exists for facets that can
    /// do it more directly.
    fn alpha_value(&self, v: &Value) -> Option<AbsVal> {
        let _ = v;
        None
    }

    /// A closed operator `p̄ : D̄ⁿ → D̄`.
    fn closed_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> AbsVal {
        let _ = p;
        if args.iter().any(|a| self.arg_is_bottom(a)) {
            self.bottom()
        } else {
            self.top()
        }
    }

    /// An open operator `p̄ : D̄ⁿ → Values̄`.
    fn open_op(&self, p: Prim, args: &[AbstractArg<'_>]) -> BtVal {
        let _ = p;
        if args.iter().any(|a| self.arg_is_bottom(a)) {
            BtVal::Bottom
        } else {
            BtVal::Dynamic
        }
    }

    /// Enumerates the whole domain if small and finite.
    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        None
    }

    /// Widening for infinite-height domains; defaults to `join`.
    fn widen(&self, old: &AbsVal, new: &AbsVal) -> AbsVal {
        self.join(old, new)
    }

    /// True if either component of the argument is `⊥`.
    fn arg_is_bottom(&self, arg: &AbstractArg<'_>) -> bool {
        *arg.bt == BtVal::Bottom || *arg.abs == self.bottom()
    }

    /// Convenience wrapper: runs a closed operator over bare abstract
    /// values, supplying `Dynamic` binding-time components.
    fn closed_op_on(&self, p: Prim, args: &[AbsVal]) -> AbsVal
    where
        Self: Sized,
    {
        let dynamic = BtVal::Dynamic;
        let wrapped: Vec<AbstractArg<'_>> = args
            .iter()
            .map(|abs| AbstractArg { bt: &dynamic, abs })
            .collect();
        self.closed_op(p, &wrapped)
    }

    /// Convenience wrapper: runs an open operator over bare abstract
    /// values, supplying `Dynamic` binding-time components.
    fn open_op_on(&self, p: Prim, args: &[AbsVal]) -> BtVal
    where
        Self: Sized,
    {
        let dynamic = BtVal::Dynamic;
        let wrapped: Vec<AbstractArg<'_>> = args
            .iter()
            .map(|abs| AbstractArg { bt: &dynamic, abs })
            .collect();
        self.open_op(p, &wrapped)
    }
}
