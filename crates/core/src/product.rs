//! Products of facets (Definition 5) and their product operators, with the
//! partial evaluation facet at component 0 (Section 4.4).
//!
//! A [`FacetSet`] is the collection of user facets a partial evaluation is
//! parameterized by; a [`ProductVal`] is an element of the smashed product
//! `Values ⊗ D̂₁ ⊗ … ⊗ D̂ₘ`. The product operators of Definition 5 are
//! realized by [`FacetSet::prim_product`], whose result classification
//! ([`PrimOutcome`]) is exactly the case analysis of `K̂_P` in Figure 3.

use std::cell::OnceCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use ppe_lang::{Const, Prim, StdOpClass, Value};

use crate::abs_val::AbsVal;
use crate::abstract_product::AbstractFacetSet;
use crate::facet::{Facet, FacetArg};
use crate::lattice::Lattice;
use crate::pe_val::{pe_op, PeVal};

/// The set of facets a partial evaluation is parameterized by.
///
/// The partial evaluation facet (Definition 7) is always present implicitly
/// as component 0 of every [`ProductVal`]; an empty `FacetSet` therefore
/// yields exactly conventional partial evaluation (Figure 2).
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::SignFacet, FacetSet, ProductVal};
/// use ppe_lang::{Const, Prim};
///
/// let set = FacetSet::with_facets(vec![Box::new(SignFacet)]);
/// let three = ProductVal::from_const(Const::Int(3), &set);
/// assert!(three.pe().is_const());
/// ```
#[derive(Debug, Default)]
pub struct FacetSet {
    facets: Vec<Rc<dyn Facet>>,
}

impl FacetSet {
    /// An empty set: conventional (non-parameterized) partial evaluation.
    pub fn new() -> FacetSet {
        FacetSet { facets: Vec::new() }
    }

    /// Builds a set from user facets; order fixes component indices
    /// (component `i + 1` of the paper's product is `facets[i]`).
    pub fn with_facets(facets: Vec<Box<dyn Facet>>) -> FacetSet {
        FacetSet {
            facets: facets.into_iter().map(Rc::from).collect(),
        }
    }

    /// Adds a facet, returning its component index among user facets.
    pub fn push(&mut self, facet: Box<dyn Facet>) -> usize {
        self.facets.push(Rc::from(facet));
        self.facets.len() - 1
    }

    /// Number of user facets (the paper's `m - 1`, the PE facet excluded).
    pub fn len(&self) -> usize {
        self.facets.len()
    }

    /// True if only the partial evaluation facet is present.
    pub fn is_empty(&self) -> bool {
        self.facets.is_empty()
    }

    /// The user facets, in component order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Facet> {
        self.facets.iter().map(|f| f.as_ref())
    }

    /// The user facet at index `i`.
    pub fn facet(&self, i: usize) -> &dyn Facet {
        self.facets[i].as_ref()
    }

    /// Finds a user facet index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.facets.iter().position(|f| f.name() == name)
    }

    /// Derives the product of abstract facets (Definition 9) for offline
    /// partial evaluation, pairing each facet with its
    /// [`Facet::abstract_facet`].
    pub fn abstract_set(&self) -> AbstractFacetSet {
        AbstractFacetSet::from_facets(
            self.facets
                .iter()
                .map(|f| (Rc::clone(f), f.abstract_facet()))
                .collect(),
        )
    }

    /// The product operator `ω̂_p` for `p` (Definition 5), folded into the
    /// full `K̂_P` case analysis of Figure 3. Any `⊥` argument smashes the
    /// result to [`PrimOutcome::Bottom`].
    pub fn prim_product(&self, p: Prim, args: &[ProductVal]) -> PrimOutcome {
        if args.iter().any(|a| a.is_bottom(self)) {
            return PrimOutcome::Bottom;
        }
        let pes: Vec<PeVal> = args.iter().map(|a| *a.pe()).collect();
        let pe_result = pe_op(p, &pes);
        match p.std_class() {
            StdOpClass::Closed => {
                // Definition 5(a): componentwise; Figure 3 K̂_P[pᶜ]: a
                // constant can only come from the PE facet (component 0),
                // and then every facet re-abstracts from it (Theorem 1).
                if pe_result == PeVal::Bottom {
                    return PrimOutcome::Bottom;
                }
                if let Some(c) = pe_result.as_const() {
                    return PrimOutcome::Const(c);
                }
                // All-constant arguments with a defined, non-constant
                // result (e.g. `mkvec 3`): the value is fully computable,
                // so abstract it exactly into every facet instead of going
                // through the (necessarily weaker) abstract operators.
                let arg_consts: Option<Vec<Const>> =
                    args.iter().map(|a| a.pe().as_const()).collect();
                if let Some(cs) = arg_consts {
                    let values: Vec<Value> = cs.iter().map(|c| Value::from_const(*c)).collect();
                    if let Ok(v) = p.eval(&values) {
                        return PrimOutcome::Closed(ProductVal::from_value(&v, self));
                    }
                }
                let mut components = Vec::with_capacity(self.facets.len());
                for (i, facet) in self.facets.iter().enumerate() {
                    let wrapped: Vec<FacetArg<'_>> = args
                        .iter()
                        .map(|a| FacetArg {
                            pe: a.pe(),
                            abs: a.facet(i),
                        })
                        .collect();
                    let out = facet.closed_op(p, &wrapped);
                    if out == facet.bottom() {
                        return PrimOutcome::Bottom;
                    }
                    components.push(out);
                }
                PrimOutcome::Closed(ProductVal::from_parts(pe_result, components))
            }
            StdOpClass::Open => {
                // Definition 5(b): ⊥ dominates; otherwise the first facet
                // producing a constant wins; otherwise ⊤. Lemma 3
                // guarantees all *sound* constant-producing facets agree;
                // a disagreement therefore proves some facet is broken, so
                // rather than pick a side (or abort), the reduction is
                // abandoned and the expression stays residual — the
                // conservative outcome that is correct whichever facet was
                // at fault.
                let mut found: Option<Const> = None;
                let mut results = Vec::with_capacity(self.facets.len() + 1);
                results.push(pe_result);
                for (i, facet) in self.facets.iter().enumerate() {
                    let wrapped: Vec<FacetArg<'_>> = args
                        .iter()
                        .map(|a| FacetArg {
                            pe: a.pe(),
                            abs: a.facet(i),
                        })
                        .collect();
                    results.push(facet.open_op(p, &wrapped));
                }
                for r in &results {
                    match r {
                        PeVal::Bottom => return PrimOutcome::Bottom,
                        PeVal::Const(c) => {
                            if let Some(prev) = found {
                                if prev != *c {
                                    return PrimOutcome::Unknown;
                                }
                            }
                            found = Some(*c);
                        }
                        PeVal::Top => {}
                    }
                }
                match found {
                    Some(c) => PrimOutcome::Const(c),
                    None => PrimOutcome::Unknown,
                }
            }
        }
    }
}

/// Outcome of applying a primitive to product values — the case analysis
/// of `K̂_P` in Figure 3.
#[derive(Clone, Debug, PartialEq)]
pub enum PrimOutcome {
    /// The product smashed to `⊥`: keep the expression residual with value
    /// `⊥` (it denotes no value).
    Bottom,
    /// Some facet produced a constant (for a closed operator: the PE facet
    /// itself): the expression *reduces* to this constant.
    Const(Const),
    /// Closed operator with no constant: keep residual, carrying the
    /// computed product of abstract values.
    Closed(ProductVal),
    /// Open operator with no constant: keep residual; all facet components
    /// go to `⊤` (Figure 3's `(⊤_D̂₁, …, ⊤_D̂ₘ)`).
    Unknown,
}

/// An element of the smashed product `Values ⊗ D̂₁ ⊗ … ⊗ D̂ₘ`
/// (Definition 5), ordered componentwise.
///
/// Component 0 is always the partial evaluation facet's value ([`PeVal`]);
/// the remaining components belong to the user facets of the governing
/// [`FacetSet`], in order. Smashing means any `⊥` component makes the whole
/// value `⊥`; [`ProductVal::is_bottom`] tests that.
///
/// Cloning is O(1): the components live behind a shared reference-counted
/// payload (the value is immutable, so sharing is unobservable), equality
/// takes a pointer-identity fast path, and the smashed-bottom test is
/// computed once per payload. The specialization caches key on vectors of
/// these, so cheap `clone`/`Eq`/`Hash` here is what makes those keys cheap.
#[derive(Clone)]
pub struct ProductVal(Rc<ProductInner>);

struct ProductInner {
    pe: PeVal,
    facets: Vec<AbsVal>,
    /// Cached [`ProductVal::is_bottom`] (bottomness never changes — the
    /// payload is immutable, and every use site passes the same governing
    /// facet set).
    bottom: OnceCell<bool>,
}

impl ProductVal {
    fn from_parts(pe: PeVal, facets: Vec<AbsVal>) -> ProductVal {
        ProductVal(Rc::new(ProductInner {
            pe,
            facets,
            bottom: OnceCell::new(),
        }))
    }

    /// The bottom product (every component `⊥`).
    pub fn bottom(set: &FacetSet) -> ProductVal {
        ProductVal::from_parts(
            PeVal::Bottom,
            set.facets.iter().map(|f| f.bottom()).collect(),
        )
    }

    /// The fully dynamic product (every component `⊤`) — the value of an
    /// unknown program input about which no facet knows anything.
    pub fn dynamic(set: &FacetSet) -> ProductVal {
        ProductVal::from_parts(PeVal::Top, set.facets.iter().map(|f| f.top()).collect())
    }

    /// Abstracts a constant into every component — the propagation
    /// `(α̂₁(d), …, α̂ₘ(d))` performed by `K̂` in Figure 3.
    pub fn from_const(c: Const, set: &FacetSet) -> ProductVal {
        ProductVal::from_value(&Value::from_const(c), set)
    }

    /// Abstracts a concrete value into every component.
    pub fn from_value(v: &Value, set: &FacetSet) -> ProductVal {
        ProductVal::from_parts(
            PeVal::from_value(v),
            set.facets.iter().map(|f| f.alpha(v)).collect(),
        )
    }

    /// Builds a product from raw components.
    ///
    /// # Panics
    ///
    /// Panics if the number of facet components differs from `set.len()`.
    pub fn from_components(pe: PeVal, facets: Vec<AbsVal>, set: &FacetSet) -> ProductVal {
        assert_eq!(
            facets.len(),
            set.len(),
            "product arity must match the facet set"
        );
        ProductVal::from_parts(pe, facets)
    }

    /// The partial-evaluation component (component 0).
    pub fn pe(&self) -> &PeVal {
        &self.0.pe
    }

    /// A pointer-identity token for the shared payload: two handles with
    /// equal tokens share one immutable payload, so any value *derived*
    /// from one is valid for the other. Reification caches (the
    /// specializer's VM shortcut) memoize per-payload conversions on this
    /// token instead of re-deriving them per use.
    pub fn identity(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// The `i`-th user facet's component.
    pub fn facet(&self, i: usize) -> &AbsVal {
        &self.0.facets[i]
    }

    /// All user facet components, in order.
    pub fn facet_components(&self) -> &[AbsVal] {
        &self.0.facets
    }

    /// Returns a copy with the `i`-th user facet component replaced —
    /// used to state "this argument is dynamic but its size is 3".
    #[must_use]
    pub fn with_facet(&self, i: usize, abs: AbsVal) -> ProductVal {
        if self.0.facets[i] == abs {
            return self.clone();
        }
        let mut facets = self.0.facets.clone();
        facets[i] = abs;
        ProductVal::from_parts(self.0.pe, facets)
    }

    /// Returns a copy with the partial-evaluation component replaced.
    #[must_use]
    pub fn with_pe(&self, pe: PeVal) -> ProductVal {
        if self.0.pe == pe {
            return self.clone();
        }
        ProductVal::from_parts(pe, self.0.facets.clone())
    }

    /// True if the value is (smashed) `⊥`: some component is `⊥`.
    pub fn is_bottom(&self, set: &FacetSet) -> bool {
        *self.0.bottom.get_or_init(|| {
            self.0.pe == PeVal::Bottom
                || self
                    .0
                    .facets
                    .iter()
                    .zip(&set.facets)
                    .any(|(v, f)| *v == f.bottom())
        })
    }

    /// Componentwise join (the product lattice's least upper bound).
    /// Smashed bottoms are identities: `⊥ ⊔ x = x`.
    #[must_use]
    pub fn join(&self, other: &ProductVal, set: &FacetSet) -> ProductVal {
        if Rc::ptr_eq(&self.0, &other.0) {
            // x ⊔ x = x (idempotence is part of the Facet contract).
            return self.clone();
        }
        if self.is_bottom(set) {
            return other.clone();
        }
        if other.is_bottom(set) {
            return self.clone();
        }
        ProductVal::from_parts(
            self.0.pe.join(&other.0.pe),
            self.0
                .facets
                .iter()
                .zip(&other.0.facets)
                .zip(&set.facets)
                .map(|((a, b), f)| f.join(a, b))
                .collect(),
        )
    }

    /// Componentwise order (smashed: `⊥` below everything).
    pub fn leq(&self, other: &ProductVal, set: &FacetSet) -> bool {
        if Rc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        if self.is_bottom(set) {
            return true;
        }
        if other.is_bottom(set) {
            return false;
        }
        self.0.pe.leq(&other.0.pe)
            && self
                .0
                .facets
                .iter()
                .zip(&other.0.facets)
                .zip(&set.facets)
                .all(|((a, b), f)| f.leq(a, b))
    }

    /// Componentwise widening (for facets with infinite-height domains).
    /// Smashed bottoms are identities, as for [`ProductVal::join`].
    #[must_use]
    pub fn widen(&self, newer: &ProductVal, set: &FacetSet) -> ProductVal {
        if self.is_bottom(set) {
            return newer.clone();
        }
        if newer.is_bottom(set) {
            return self.clone();
        }
        ProductVal::from_parts(
            self.0.pe.join(&newer.0.pe),
            self.0
                .facets
                .iter()
                .zip(&newer.0.facets)
                .zip(&set.facets)
                .map(|((a, b), f)| f.widen(a, b))
                .collect(),
        )
    }

    /// Renders the product as the paper's `⟨v₁, …, vₘ⟩` tuples (Figure 9).
    pub fn display(&self) -> String {
        let mut s = format!("⟨{}", self.0.pe);
        for v in &self.0.facets {
            s.push_str(", ");
            s.push_str(&v.to_string());
        }
        s.push('⟩');
        s
    }
}

impl PartialEq for ProductVal {
    fn eq(&self, other: &ProductVal) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
            || (self.0.pe == other.0.pe && self.0.facets == other.0.facets)
    }
}

impl Eq for ProductVal {}

impl Hash for ProductVal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.pe.hash(state);
        self.0.facets.hash(state);
    }
}

impl fmt::Debug for ProductVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProductVal")
            .field("pe", &self.0.pe)
            .field("facets", &self.0.facets)
            .finish()
    }
}

impl fmt::Display for ProductVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facets::{SignFacet, SignVal};

    fn sign_set() -> FacetSet {
        FacetSet::with_facets(vec![Box::new(SignFacet)])
    }

    #[test]
    fn from_const_propagates_to_all_facets() {
        let set = sign_set();
        let v = ProductVal::from_const(Const::Int(-5), &set);
        assert_eq!(*v.pe(), PeVal::Const(Const::Int(-5)));
        assert_eq!(v.facet(0).downcast_ref::<SignVal>(), Some(&SignVal::Neg));
    }

    #[test]
    fn closed_op_with_constants_reduces_via_pe_facet() {
        let set = sign_set();
        let a = ProductVal::from_const(Const::Int(2), &set);
        let b = ProductVal::from_const(Const::Int(3), &set);
        assert_eq!(
            set.prim_product(Prim::Add, &[a, b]),
            PrimOutcome::Const(Const::Int(5))
        );
    }

    #[test]
    fn closed_op_with_signs_computes_the_sign() {
        let set = sign_set();
        let pos = ProductVal::dynamic(&set).with_facet(0, AbsVal::new(SignVal::Pos));
        let out = set.prim_product(Prim::Add, &[pos.clone(), pos]);
        match out {
            PrimOutcome::Closed(v) => {
                assert_eq!(*v.pe(), PeVal::Top);
                assert_eq!(v.facet(0).downcast_ref::<SignVal>(), Some(&SignVal::Pos));
            }
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn open_op_triggered_by_a_user_facet() {
        // zero < pos reduces to `true` via the Sign facet even though the
        // PE facet knows nothing (Example 1's ≺̂).
        let set = sign_set();
        let zero = ProductVal::dynamic(&set).with_facet(0, AbsVal::new(SignVal::Zero));
        let pos = ProductVal::dynamic(&set).with_facet(0, AbsVal::new(SignVal::Pos));
        assert_eq!(
            set.prim_product(Prim::Lt, &[zero, pos]),
            PrimOutcome::Const(Const::Bool(true))
        );
    }

    #[test]
    fn open_op_with_coarse_values_is_unknown() {
        let set = sign_set();
        let top = ProductVal::dynamic(&set);
        assert_eq!(
            set.prim_product(Prim::Lt, &[top.clone(), top]),
            PrimOutcome::Unknown
        );
    }

    #[test]
    fn bottom_smashes() {
        let set = sign_set();
        let bot = ProductVal::bottom(&set);
        let top = ProductVal::dynamic(&set);
        assert!(bot.is_bottom(&set));
        assert_eq!(
            set.prim_product(Prim::Add, &[bot.clone(), top]),
            PrimOutcome::Bottom
        );
        // A single ⊥ component also smashes.
        let half = ProductVal::dynamic(&set).with_pe(PeVal::Bottom);
        assert!(half.is_bottom(&set));
    }

    #[test]
    fn join_and_leq_are_componentwise() {
        let set = sign_set();
        let a = ProductVal::from_const(Const::Int(1), &set);
        let b = ProductVal::from_const(Const::Int(2), &set);
        let j = a.join(&b, &set);
        assert_eq!(*j.pe(), PeVal::Top);
        assert_eq!(j.facet(0).downcast_ref::<SignVal>(), Some(&SignVal::Pos));
        assert!(a.leq(&j, &set) && b.leq(&j, &set));
        assert!(!j.leq(&a, &set));
        assert!(ProductVal::bottom(&set).leq(&a, &set));
    }

    #[test]
    fn constant_mkvec_keeps_exact_facet_information() {
        // `(mkvec 3)` is defined but not a constant: the product must
        // carry ⊤ in the PE component and the exact size in the Size
        // facet (regression: this used to smash to ⊥).
        use crate::facets::{SizeFacet, SizeVal};
        let set = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
        let three = ProductVal::from_const(Const::Int(3), &set);
        match set.prim_product(Prim::MkVec, &[three]) {
            PrimOutcome::Closed(v) => {
                assert_eq!(*v.pe(), PeVal::Top);
                assert_eq!(
                    v.facet(0).downcast_ref::<SizeVal>(),
                    Some(&SizeVal::Known(3))
                );
            }
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn display_renders_tuples() {
        let set = sign_set();
        let v = ProductVal::from_const(Const::Int(3), &set);
        assert_eq!(v.display(), "⟨3, pos⟩");
    }

    #[test]
    fn empty_facet_set_is_conventional_pe() {
        let set = FacetSet::new();
        let a = ProductVal::from_const(Const::Int(10), &set);
        let b = ProductVal::dynamic(&set);
        assert_eq!(
            set.prim_product(Prim::Add, &[a.clone(), a.clone()]),
            PrimOutcome::Const(Const::Int(20))
        );
        // A closed operator over a partly dynamic argument stays residual,
        // carrying the (empty) product with a ⊤ PE component.
        match set.prim_product(Prim::Add, &[a, b.clone()]) {
            PrimOutcome::Closed(v) => assert_eq!(*v.pe(), PeVal::Top),
            other => panic!("expected Closed, got {other:?}"),
        }
        // An open operator over dynamic arguments is Unknown.
        assert_eq!(
            set.prim_product(Prim::Lt, &[b.clone(), b]),
            PrimOutcome::Unknown
        );
    }
}
