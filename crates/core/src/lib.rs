//! The facet framework of Consel & Khoo, *Parameterized Partial Evaluation*
//! (PLDI 1991).
//!
//! This crate implements the paper's algebraic machinery:
//!
//! - [`PeVal`] — the online partial-evaluation domain `Values`
//!   (`Const` lifted with `⊥` and `⊤`, Section 3.2);
//! - [`BtVal`] — the binding-time domain `Values̄`
//!   (`⊥ ⊑ Static ⊑ Dynamic`, Section 3.2);
//! - [`Facet`] — user-defined static properties as abstractions of a
//!   semantic algebra, with **closed** and **open** operators
//!   (Definitions 2–4);
//! - [`AbstractFacet`] — the offline abstraction of a facet
//!   (Definition 8);
//! - [`FacetSet`] / [`ProductVal`] — products of facets with the partial
//!   evaluation facet at component 0 (Definitions 5–7, Section 4.4);
//! - [`AbstractFacetSet`] / [`AbstractProductVal`] — products of abstract
//!   facets with the binding-time facet at component 0
//!   (Definitions 9–10, Section 5);
//! - [`safety`] — executable versions of the paper's safety conditions
//!   (Definition 2 condition 5, Properties 1–8), used by the test suite to
//!   validate every shipped facet and available to validate user facets;
//! - [`facets`] — a library of ready-made facets: the Sign facet of
//!   Examples 1–2, a Parity facet, an interval Range facet (with widening,
//!   per the paper's footnote on infinite-height lattices), and the vector
//!   Size facet of Section 6.
//!
//! # Defining a facet
//!
//! A facet supplies an abstract domain (a finite-height lattice), an
//! abstraction function `α`, and abstract versions of the primitive
//! operators, classified as closed (`D̂ⁿ → D̂`) or open (`D̂ⁿ → Values`):
//!
//! ```
//! use ppe_core::{facets::SignFacet, Facet, PeVal};
//! use ppe_lang::{Prim, Value};
//!
//! let sign = SignFacet;
//! let pos = sign.alpha(&Value::Int(3));
//! let neg = sign.alpha(&Value::Int(-2));
//! // `<` is an open operator: it *triggers computation* from properties.
//! let out = sign.open_op_on(Prim::Lt, &[neg, pos]);
//! assert_eq!(out, PeVal::constant(true.into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abs_val;
mod abstract_facet;
mod abstract_product;
mod bt_val;
pub mod consistency;
mod facet;
pub mod facets;
mod lattice;
mod pe_val;
mod product;
pub mod safety;

pub use abs_val::{AbsVal, AbstractValue};
pub use abstract_facet::{AbstractArg, AbstractFacet};
pub use abstract_product::{AbstractFacetSet, AbstractProductVal};
pub use bt_val::{bt_op, BtVal};
pub use facet::{Facet, FacetArg, OpClass};
pub use lattice::{check_lattice_laws, Lattice, LatticeLawViolation};
pub use pe_val::{pe_op, PeVal};
pub use product::{FacetSet, PrimOutcome, ProductVal};

/// Convenience: the Size-facet abstract value for a known vector size
/// (Section 6.1), as an [`AbsVal`].
pub fn size_of(n: i64) -> AbsVal {
    AbsVal::new(facets::SizeVal::Known(n))
}
