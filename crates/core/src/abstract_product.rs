//! Products of abstract facets (Definition 9) with the binding-time facet
//! at component 0 (Section 5.4) — the domain `SD̃` of facet analysis.

use std::cell::OnceCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use ppe_lang::{Const, Prim, StdOpClass, Value};

use crate::abs_val::AbsVal;
use crate::abstract_facet::{AbstractArg, AbstractFacet};
use crate::bt_val::{bt_op, BtVal};
use crate::facet::Facet;
use crate::lattice::Lattice;

/// The product of abstract facets derived from a [`crate::FacetSet`]
/// (Definition 9). Pairs each online facet with its offline abstraction so
/// that the composite `Γ̄ᵢ = ᾱ_D̄ᵢ ∘ α̂_D̂ᵢ` of Figure 4 can abstract
/// constants.
///
/// # Examples
///
/// ```
/// use ppe_core::{facets::SizeFacet, AbstractProductVal, FacetSet};
///
/// let set = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
/// let aset = set.abstract_set();
/// let dyn_all = AbstractProductVal::dynamic(&aset);
/// assert!(dyn_all.bt().is_dynamic());
/// ```
#[derive(Debug)]
pub struct AbstractFacetSet {
    pairs: Vec<(Rc<dyn Facet>, Rc<dyn AbstractFacet>)>,
}

impl AbstractFacetSet {
    /// Builds the set from (online facet, abstract facet) pairs.
    pub fn from_facets(pairs: Vec<(Rc<dyn Facet>, Rc<dyn AbstractFacet>)>) -> AbstractFacetSet {
        AbstractFacetSet { pairs }
    }

    /// Number of user facets.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if only the binding-time facet is present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `i`-th abstract facet.
    pub fn abstract_facet(&self, i: usize) -> &dyn AbstractFacet {
        self.pairs[i].1.as_ref()
    }

    /// The `i`-th online facet (used for `Γ̄` and by the specializer).
    pub fn online_facet(&self, i: usize) -> &dyn Facet {
        self.pairs[i].0.as_ref()
    }

    /// Iterates over the abstract facets in component order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn AbstractFacet> {
        self.pairs.iter().map(|(_, a)| a.as_ref())
    }

    /// `Γ̄ᵢ(v) = ᾱ_D̄ᵢ(α̂_D̂ᵢ(v))` — abstraction of a concrete value into the
    /// `i`-th abstract facet (Figure 4's `K̄`).
    pub fn gamma_bar(&self, i: usize, v: &Value) -> AbsVal {
        let (facet, abs) = &self.pairs[i];
        if let Some(direct) = abs.alpha_value(v) {
            return direct;
        }
        abs.alpha_facet(&facet.alpha(v))
    }

    /// The abstract product operator `ω̄_p` (Definition 9), folded into the
    /// `K̃_P` case analysis of Figure 4.
    pub fn abstract_prim(&self, p: Prim, args: &[AbstractProductVal]) -> AbstractPrimResult {
        if args.iter().any(|a| a.is_bottom(self)) {
            return AbstractPrimResult {
                value: AbstractProductVal::bottom(self),
                static_sources: Vec::new(),
            };
        }
        let bts: Vec<BtVal> = args.iter().map(|a| *a.bt()).collect();
        let bt_result = bt_op(p, &bts);
        match p.std_class() {
            StdOpClass::Closed => {
                // Definition 9(a): componentwise.
                if bt_result == BtVal::Bottom {
                    return AbstractPrimResult {
                        value: AbstractProductVal::bottom(self),
                        static_sources: Vec::new(),
                    };
                }
                let mut components = Vec::with_capacity(self.pairs.len());
                for (i, (_, abs)) in self.pairs.iter().enumerate() {
                    let wrapped: Vec<AbstractArg<'_>> = args
                        .iter()
                        .map(|a| AbstractArg {
                            bt: a.bt(),
                            abs: a.facet(i),
                        })
                        .collect();
                    let out = abs.closed_op(p, &wrapped);
                    if out == abs.bottom() {
                        return AbstractPrimResult {
                            value: AbstractProductVal::bottom(self),
                            static_sources: Vec::new(),
                        };
                    }
                    components.push(out);
                }
                let static_sources = if bt_result == BtVal::Static {
                    vec![0]
                } else {
                    Vec::new()
                };
                AbstractPrimResult {
                    value: AbstractProductVal::from_parts(bt_result, components),
                    static_sources,
                }
            }
            StdOpClass::Open => {
                // Definition 9(b): ⊥ dominates; any Static makes the
                // result Static; else Dynamic. Figure 4's K̃_P[p°] then
                // tops out every facet component.
                let mut results = Vec::with_capacity(self.pairs.len() + 1);
                results.push(bt_result);
                for (i, (_, abs)) in self.pairs.iter().enumerate() {
                    let wrapped: Vec<AbstractArg<'_>> = args
                        .iter()
                        .map(|a| AbstractArg {
                            bt: a.bt(),
                            abs: a.facet(i),
                        })
                        .collect();
                    results.push(abs.open_op(p, &wrapped));
                }
                if results.contains(&BtVal::Bottom) {
                    return AbstractPrimResult {
                        value: AbstractProductVal::bottom(self),
                        static_sources: Vec::new(),
                    };
                }
                let static_sources: Vec<usize> = results
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| **r == BtVal::Static)
                    .map(|(i, _)| i)
                    .collect();
                let d = if static_sources.is_empty() {
                    BtVal::Dynamic
                } else {
                    BtVal::Static
                };
                AbstractPrimResult {
                    value: AbstractProductVal::from_parts(
                        d,
                        self.pairs.iter().map(|(_, a)| a.top()).collect(),
                    ),
                    static_sources,
                }
            }
        }
    }
}

/// Result of [`AbstractFacetSet::abstract_prim`].
#[derive(Clone, Debug, PartialEq)]
pub struct AbstractPrimResult {
    /// The computed abstract product value.
    pub value: AbstractProductVal,
    /// Which components determined a `Static` outcome: `0` is the
    /// binding-time facet, `i + 1` is user facet `i`. The offline
    /// specializer uses this to *select the reduction operations prior to
    /// specialization* (Section 1's third contribution).
    pub static_sources: Vec<usize>,
}

/// An element of the smashed product `Values̄ ⊗ D̄₁ ⊗ … ⊗ D̄ₘ`
/// (Definition 9), ordered componentwise; the values manipulated by facet
/// analysis (Figure 4) and recorded in facet signatures.
///
/// Cloning is O(1): the components live behind a shared reference-counted
/// payload (the value is immutable, so sharing is unobservable), equality
/// takes a pointer-identity fast path, and the smashed-bottom test is
/// computed once per payload. Facet signatures snapshot and compare vectors
/// of these on every fixpoint iteration, so cheap `clone`/`Eq` here is what
/// makes the analysis loop cheap.
#[derive(Clone)]
pub struct AbstractProductVal(Rc<AbstractProductInner>);

struct AbstractProductInner {
    bt: BtVal,
    facets: Vec<AbsVal>,
    /// Cached [`AbstractProductVal::is_bottom`] (bottomness never changes —
    /// the payload is immutable, and every use site passes the same
    /// governing facet set).
    bottom: OnceCell<bool>,
}

impl AbstractProductVal {
    fn from_parts(bt: BtVal, facets: Vec<AbsVal>) -> AbstractProductVal {
        AbstractProductVal(Rc::new(AbstractProductInner {
            bt,
            facets,
            bottom: OnceCell::new(),
        }))
    }

    /// The bottom product.
    pub fn bottom(set: &AbstractFacetSet) -> AbstractProductVal {
        AbstractProductVal::from_parts(
            BtVal::Bottom,
            set.pairs.iter().map(|(_, a)| a.bottom()).collect(),
        )
    }

    /// The fully dynamic product: `Dynamic` with every facet `⊤`.
    pub fn dynamic(set: &AbstractFacetSet) -> AbstractProductVal {
        AbstractProductVal::from_parts(
            BtVal::Dynamic,
            set.pairs.iter().map(|(_, a)| a.top()).collect(),
        )
    }

    /// The fully static product with every facet `⊤` (a known input with
    /// no extra property information).
    pub fn static_top(set: &AbstractFacetSet) -> AbstractProductVal {
        AbstractProductVal::from_parts(
            BtVal::Static,
            set.pairs.iter().map(|(_, a)| a.top()).collect(),
        )
    }

    /// Abstracts a constant into every component — Figure 4's `K̄[c]`.
    pub fn from_const(c: Const, set: &AbstractFacetSet) -> AbstractProductVal {
        let v = Value::from_const(c);
        AbstractProductVal::from_parts(
            BtVal::Static,
            (0..set.len()).map(|i| set.gamma_bar(i, &v)).collect(),
        )
    }

    /// Builds a product from raw components.
    ///
    /// # Panics
    ///
    /// Panics if the number of facet components differs from `set.len()`.
    pub fn from_components(
        bt: BtVal,
        facets: Vec<AbsVal>,
        set: &AbstractFacetSet,
    ) -> AbstractProductVal {
        assert_eq!(
            facets.len(),
            set.len(),
            "product arity must match the facet set"
        );
        AbstractProductVal::from_parts(bt, facets)
    }

    /// The binding-time component (component 0).
    pub fn bt(&self) -> &BtVal {
        &self.0.bt
    }

    /// The `i`-th user facet's component.
    pub fn facet(&self, i: usize) -> &AbsVal {
        &self.0.facets[i]
    }

    /// All user facet components, in order.
    pub fn facet_components(&self) -> &[AbsVal] {
        &self.0.facets
    }

    /// Returns a copy with the `i`-th facet component replaced — "this
    /// argument is dynamic but its size is static" (`⟨Dyn, s⟩`, Figure 9).
    #[must_use]
    pub fn with_facet(&self, i: usize, abs: AbsVal) -> AbstractProductVal {
        if self.0.facets[i] == abs {
            return self.clone();
        }
        let mut facets = self.0.facets.clone();
        facets[i] = abs;
        AbstractProductVal::from_parts(self.0.bt, facets)
    }

    /// Returns a copy with the binding-time component replaced.
    #[must_use]
    pub fn with_bt(&self, bt: BtVal) -> AbstractProductVal {
        if self.0.bt == bt {
            return self.clone();
        }
        AbstractProductVal::from_parts(bt, self.0.facets.clone())
    }

    /// Returns a copy whose binding-time component is forced `Dynamic`
    /// while facet components are kept — the dynamic-conditional rule of
    /// Figure 4's `Ẽ[if]`.
    #[must_use]
    pub fn force_dynamic(&self) -> AbstractProductVal {
        self.with_bt(BtVal::Dynamic)
    }

    /// True if the value is (smashed) `⊥`.
    pub fn is_bottom(&self, set: &AbstractFacetSet) -> bool {
        *self.0.bottom.get_or_init(|| {
            self.0.bt == BtVal::Bottom
                || self
                    .0
                    .facets
                    .iter()
                    .zip(&set.pairs)
                    .any(|(v, (_, a))| *v == a.bottom())
        })
    }

    /// Componentwise join. Smashed bottoms are identities: `⊥ ⊔ x = x`.
    #[must_use]
    pub fn join(&self, other: &AbstractProductVal, set: &AbstractFacetSet) -> AbstractProductVal {
        if Rc::ptr_eq(&self.0, &other.0) {
            // x ⊔ x = x (idempotence is part of the AbstractFacet contract).
            return self.clone();
        }
        if self.is_bottom(set) {
            return other.clone();
        }
        if other.is_bottom(set) {
            return self.clone();
        }
        AbstractProductVal::from_parts(
            self.0.bt.join(&other.0.bt),
            self.0
                .facets
                .iter()
                .zip(&other.0.facets)
                .zip(&set.pairs)
                .map(|((a, b), (_, f))| f.join(a, b))
                .collect(),
        )
    }

    /// Componentwise order (smashed: `⊥` below everything).
    pub fn leq(&self, other: &AbstractProductVal, set: &AbstractFacetSet) -> bool {
        if Rc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        if self.is_bottom(set) {
            return true;
        }
        if other.is_bottom(set) {
            return false;
        }
        self.0.bt.leq(&other.0.bt)
            && self
                .0
                .facets
                .iter()
                .zip(&other.0.facets)
                .zip(&set.pairs)
                .all(|((a, b), (_, f))| f.leq(a, b))
    }

    /// Componentwise widening (for facets of infinite height). Smashed
    /// bottoms are identities, as for [`AbstractProductVal::join`].
    #[must_use]
    pub fn widen(&self, newer: &AbstractProductVal, set: &AbstractFacetSet) -> AbstractProductVal {
        if self.is_bottom(set) {
            return newer.clone();
        }
        if newer.is_bottom(set) {
            return self.clone();
        }
        AbstractProductVal::from_parts(
            self.0.bt.join(&newer.0.bt),
            self.0
                .facets
                .iter()
                .zip(&newer.0.facets)
                .zip(&set.pairs)
                .map(|((a, b), (_, f))| f.widen(a, b))
                .collect(),
        )
    }

    /// Renders the product as the paper's `⟨Dyn, s⟩` tuples (Figure 9).
    pub fn display(&self) -> String {
        let mut s = format!("⟨{}", self.0.bt);
        for v in &self.0.facets {
            s.push_str(", ");
            s.push_str(&v.to_string());
        }
        s.push('⟩');
        s
    }
}

impl PartialEq for AbstractProductVal {
    fn eq(&self, other: &AbstractProductVal) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
            || (self.0.bt == other.0.bt && self.0.facets == other.0.facets)
    }
}

impl Eq for AbstractProductVal {}

impl Hash for AbstractProductVal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.bt.hash(state);
        self.0.facets.hash(state);
    }
}

impl fmt::Debug for AbstractProductVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbstractProductVal")
            .field("bt", &self.0.bt)
            .field("facets", &self.0.facets)
            .finish()
    }
}

impl fmt::Display for AbstractProductVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facets::{SignFacet, SignVal};
    use crate::product::FacetSet;

    fn aset() -> AbstractFacetSet {
        FacetSet::with_facets(vec![Box::new(SignFacet)]).abstract_set()
    }

    #[test]
    fn from_const_abstracts_through_both_levels() {
        let s = aset();
        let v = AbstractProductVal::from_const(Const::Int(-3), &s);
        assert_eq!(*v.bt(), BtVal::Static);
        assert_eq!(v.facet(0).downcast_ref::<SignVal>(), Some(&SignVal::Neg));
    }

    #[test]
    fn closed_prim_static_args_stay_static() {
        let s = aset();
        let a = AbstractProductVal::from_const(Const::Int(2), &s);
        let r = s.abstract_prim(Prim::Add, &[a.clone(), a]);
        assert_eq!(*r.value.bt(), BtVal::Static);
        assert_eq!(r.static_sources, vec![0]);
        assert_eq!(
            r.value.facet(0).downcast_ref::<SignVal>(),
            Some(&SignVal::Pos)
        );
    }

    #[test]
    fn open_prim_static_via_sign_facet() {
        // Example 2's ≺̄: neg < pos is Static even with dynamic arguments.
        let s = aset();
        let neg = AbstractProductVal::dynamic(&s).with_facet(0, AbsVal::new(SignVal::Neg));
        let pos = AbstractProductVal::dynamic(&s).with_facet(0, AbsVal::new(SignVal::Pos));
        let r = s.abstract_prim(Prim::Lt, &[neg, pos]);
        assert_eq!(*r.value.bt(), BtVal::Static);
        assert_eq!(r.static_sources, vec![1]); // the Sign facet, not BT
                                               // Facet components are topped per Figure 4.
        assert_eq!(
            r.value.facet(0).downcast_ref::<SignVal>(),
            Some(&SignVal::Top)
        );
    }

    #[test]
    fn open_prim_dynamic_when_no_facet_helps() {
        let s = aset();
        let d = AbstractProductVal::dynamic(&s);
        let r = s.abstract_prim(Prim::Lt, &[d.clone(), d]);
        assert_eq!(*r.value.bt(), BtVal::Dynamic);
        assert!(r.static_sources.is_empty());
    }

    #[test]
    fn bottom_smashes() {
        let s = aset();
        let bot = AbstractProductVal::bottom(&s);
        let d = AbstractProductVal::dynamic(&s);
        let r = s.abstract_prim(Prim::Add, &[bot, d]);
        assert!(r.value.is_bottom(&s));
    }

    #[test]
    fn join_and_order() {
        let s = aset();
        let a = AbstractProductVal::from_const(Const::Int(1), &s);
        let d = AbstractProductVal::dynamic(&s);
        let j = a.join(&d, &s);
        assert_eq!(*j.bt(), BtVal::Dynamic);
        assert!(a.leq(&j, &s));
        assert!(AbstractProductVal::bottom(&s).leq(&a, &s));
        assert!(!d.leq(&a, &s));
    }

    #[test]
    fn display_matches_figure_9_style() {
        let s = aset();
        let v = AbstractProductVal::dynamic(&s).with_facet(0, AbsVal::new(SignVal::Pos));
        assert_eq!(v.display(), "⟨Dyn, pos⟩");
    }
}
