//! The lattice abstraction underlying every facet domain.
//!
//! Definition 2 requires each abstract domain to be an algebraic lattice of
//! finite height (or to come with a widening operator). [`Lattice`] captures
//! the operations the framework needs; [`check_lattice_laws`] makes the
//! algebraic laws executable over a sample of elements, and is used by the
//! test suite and the [`crate::safety`] checker.

use std::fmt::Debug;

/// A join-semilattice with distinguished bottom and top elements.
///
/// Implementors must satisfy, for all `a`, `b`, `c`:
///
/// - `join` is commutative, associative and idempotent;
/// - `bottom().join(a) == a` and `a.join(top()) == top()`;
/// - `a.leq(b)` iff `a.join(b) == b`.
///
/// These laws are what [`check_lattice_laws`] verifies on samples.
pub trait Lattice: Clone + PartialEq + Debug {
    /// The least element `⊥`.
    fn bottom() -> Self;
    /// The greatest element `⊤`.
    fn top() -> Self;
    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;
    /// The partial order `⊑`.
    fn leq(&self, other: &Self) -> bool;
}

/// A violation of a lattice law, reported by [`check_lattice_laws`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatticeLawViolation {
    /// Which law failed.
    pub law: &'static str,
    /// The offending elements, rendered with `Debug`.
    pub witness: String,
}

impl std::fmt::Display for LatticeLawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lattice law `{}` violated by {}", self.law, self.witness)
    }
}

impl std::error::Error for LatticeLawViolation {}

/// Checks the lattice laws over all pairs/triples drawn from `elems`.
///
/// # Errors
///
/// Returns the first violated law together with a witness.
///
/// # Examples
///
/// ```
/// use ppe_core::{BtVal, Lattice};
/// # use ppe_core::PeVal;
/// ppe_core::check_lattice_laws(&[BtVal::Bottom, BtVal::Static, BtVal::Dynamic])?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_lattice_laws<L: Lattice>(elems: &[L]) -> Result<(), LatticeLawViolation> {
    let bot = L::bottom();
    let top = L::top();
    for a in elems {
        if a.join(a) != *a {
            return Err(violation("idempotence", format!("{a:?}")));
        }
        if bot.join(a) != *a {
            return Err(violation("bottom is identity", format!("{a:?}")));
        }
        if a.join(&top) != top {
            return Err(violation("top is absorbing", format!("{a:?}")));
        }
        if !bot.leq(a) || !a.leq(&top) {
            return Err(violation("bounds", format!("{a:?}")));
        }
        if !a.leq(a) {
            return Err(violation("reflexivity", format!("{a:?}")));
        }
    }
    for a in elems {
        for b in elems {
            if a.join(b) != b.join(a) {
                return Err(violation("commutativity", format!("{a:?}}}, {b:?}")));
            }
            let j = a.join(b);
            if !a.leq(&j) || !b.leq(&j) {
                return Err(violation("join is an upper bound", format!("{a:?}, {b:?}")));
            }
            if a.leq(b) != (a.join(b) == *b) {
                return Err(violation("leq agrees with join", format!("{a:?}, {b:?}")));
            }
            if a.leq(b) && b.leq(a) && a != b {
                return Err(violation("antisymmetry", format!("{a:?}, {b:?}")));
            }
        }
    }
    for a in elems {
        for b in elems {
            for c in elems {
                if a.join(&b.join(c)) != a.join(b).join(c) {
                    return Err(violation("associativity", format!("{a:?}, {b:?}, {c:?}")));
                }
                if a.leq(b) && b.leq(c) && !a.leq(c) {
                    return Err(violation("transitivity", format!("{a:?}, {b:?}, {c:?}")));
                }
            }
        }
    }
    Ok(())
}

fn violation(law: &'static str, witness: String) -> LatticeLawViolation {
    LatticeLawViolation { law, witness }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately broken "lattice" to prove the checker catches bugs.
    #[derive(Clone, PartialEq, Debug)]
    struct BrokenMax(u8);

    impl Lattice for BrokenMax {
        fn bottom() -> Self {
            BrokenMax(0)
        }
        fn top() -> Self {
            BrokenMax(9)
        }
        fn join(&self, _other: &Self) -> Self {
            // Bug: not commutative.
            BrokenMax(self.0)
        }
        fn leq(&self, other: &Self) -> bool {
            self.0 <= other.0
        }
    }

    #[test]
    fn checker_catches_broken_join() {
        let err = check_lattice_laws(&[BrokenMax(0), BrokenMax(3), BrokenMax(9)]).unwrap_err();
        assert!(!err.law.is_empty());
    }
}
