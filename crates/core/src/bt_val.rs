//! The binding-time domain `Values̄` (Section 3.2) and the binding-time
//! facet operator (Definition 10).

use std::fmt;

use ppe_lang::Prim;

use crate::lattice::Lattice;
use crate::pe_val::PeVal;

/// An element of the binding-time chain `⊥ ⊑ Static ⊑ Dynamic`.
///
/// `Values̄` abstracts the online domain `Values` by the map `τ̄` (Section
/// 3.2): constants are `Static`, `⊤` is `Dynamic` — "an expression is static
/// if it partially evaluates to a constant".
///
/// # Examples
///
/// ```
/// use ppe_core::{BtVal, Lattice, PeVal};
/// use ppe_lang::Const;
///
/// assert_eq!(BtVal::from_pe(&PeVal::constant(Const::Int(1))), BtVal::Static);
/// assert_eq!(BtVal::from_pe(&PeVal::Top), BtVal::Dynamic);
/// assert!(BtVal::Static.leq(&BtVal::Dynamic));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum BtVal {
    /// `⊥` — undefined.
    Bottom,
    /// Known at specialization time.
    Static,
    /// Unknown until run time.
    Dynamic,
}

impl BtVal {
    /// The abstraction `τ̄ : Values → Values̄` of Section 3.2.
    pub fn from_pe(v: &PeVal) -> BtVal {
        match v {
            PeVal::Bottom => BtVal::Bottom,
            PeVal::Const(_) => BtVal::Static,
            PeVal::Top => BtVal::Dynamic,
        }
    }

    /// True if this is `Static`.
    pub fn is_static(&self) -> bool {
        matches!(self, BtVal::Static)
    }

    /// True if this is `Dynamic`.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, BtVal::Dynamic)
    }
}

impl Lattice for BtVal {
    fn bottom() -> BtVal {
        BtVal::Bottom
    }

    fn top() -> BtVal {
        BtVal::Dynamic
    }

    fn join(&self, other: &BtVal) -> BtVal {
        (*self).max(*other)
    }

    fn leq(&self, other: &BtVal) -> bool {
        self <= other
    }
}

impl fmt::Display for BtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtVal::Bottom => f.write_str("⊥"),
            BtVal::Static => f.write_str("Stat"),
            BtVal::Dynamic => f.write_str("Dyn"),
        }
    }
}

/// The binding-time facet's operator `p̄` (Definition 10): `⊥` if any
/// argument is `⊥`, `Static` if all arguments are `Static`, `Dynamic`
/// otherwise — "the primitive functions of a conventional binding time
/// analysis".
///
/// # Examples
///
/// ```
/// use ppe_core::{bt_op, BtVal};
/// use ppe_lang::Prim;
///
/// assert_eq!(bt_op(Prim::Add, &[BtVal::Static, BtVal::Static]), BtVal::Static);
/// assert_eq!(bt_op(Prim::Add, &[BtVal::Static, BtVal::Dynamic]), BtVal::Dynamic);
/// ```
pub fn bt_op(_p: Prim, args: &[BtVal]) -> BtVal {
    if args.contains(&BtVal::Bottom) {
        BtVal::Bottom
    } else if args.iter().all(|a| *a == BtVal::Static) {
        BtVal::Static
    } else {
        BtVal::Dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::check_lattice_laws;
    use ppe_lang::Const;

    #[test]
    fn chain_lattice_laws() {
        check_lattice_laws(&[BtVal::Bottom, BtVal::Static, BtVal::Dynamic]).unwrap();
    }

    #[test]
    fn tau_bar_matches_section_3_2() {
        assert_eq!(BtVal::from_pe(&PeVal::Bottom), BtVal::Bottom);
        assert_eq!(
            BtVal::from_pe(&PeVal::Const(Const::Bool(false))),
            BtVal::Static
        );
        assert_eq!(BtVal::from_pe(&PeVal::Top), BtVal::Dynamic);
    }

    #[test]
    fn bt_op_definition_10() {
        use BtVal::*;
        assert_eq!(bt_op(Prim::Mul, &[Static, Static]), Static);
        assert_eq!(bt_op(Prim::Mul, &[Dynamic, Static]), Dynamic);
        assert_eq!(bt_op(Prim::Mul, &[Bottom, Dynamic]), Bottom);
    }

    #[test]
    fn bt_op_abstracts_pe_op_property_8() {
        // Property 8 (safety of the BT facet): τ̄(p̂(v⃗)) ⊑ p̄(τ̄(v⃗)).
        let pe_samples = [
            PeVal::Bottom,
            PeVal::Const(Const::Int(0)),
            PeVal::Const(Const::Int(2)),
            PeVal::Top,
        ];
        for p in [Prim::Add, Prim::Lt, Prim::Eq] {
            for a in pe_samples {
                for b in pe_samples {
                    let online = crate::pe_val::pe_op(p, &[a, b]);
                    let offline = bt_op(p, &[BtVal::from_pe(&a), BtVal::from_pe(&b)]);
                    assert!(
                        BtVal::from_pe(&online).leq(&offline),
                        "{p:?}({a:?},{b:?}): τ̄({online:?}) ⋢ {offline:?}"
                    );
                }
            }
        }
    }
}
