//! Executable safety conditions for facet mappings (Definition 2) and the
//! paper's Properties 1–8.
//!
//! The paper proves its facets safe by hand; this module turns the proof
//! obligations into checks a facet author can run against samples (or
//! exhaustively, when [`crate::Facet::enumerate`] is available):
//!
//! - lattice laws of the abstract domain (Definition 2, condition 1);
//! - monotonicity of every operator (condition 2);
//! - the approximation conditions (condition 5):
//!   `α̂(p(d⃗)) ⊑ p̂(α̂(d⃗))` for closed operators and
//!   `τ̂(p(d⃗)) ⊑ p̂(α̂(d⃗))` for open ones — the latter specializes to
//!   Property 2: a constant answered by `p̂` equals the concrete result;
//! - for abstract facets, the corresponding conditions with respect to
//!   `Values̄` (Properties 6–8).
//!
//! Every shipped facet is validated by these checks in the test suite.

use ppe_lang::{Prim, Value, ALL_PRIMS};

use crate::abs_val::AbsVal;
use crate::abstract_facet::AbstractFacet;
use crate::bt_val::BtVal;
use crate::facet::Facet;
use crate::lattice::Lattice;
use crate::pe_val::PeVal;

/// A violated safety condition, with a human-readable witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    /// Which obligation failed.
    pub condition: &'static str,
    /// The facet under check.
    pub facet: &'static str,
    /// A rendering of the offending inputs and outputs.
    pub witness: String,
}

impl std::fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "facet `{}` violates `{}`: {}",
            self.facet, self.condition, self.witness
        )
    }
}

impl std::error::Error for SafetyViolation {}

fn fail(condition: &'static str, facet: &'static str, witness: String) -> SafetyViolation {
    SafetyViolation {
        condition,
        facet,
        witness,
    }
}

/// Checks the lattice laws of a facet's domain over `elems` (Definition 2,
/// condition 1 made testable).
///
/// # Errors
///
/// Returns the first violated law.
pub fn check_facet_lattice(facet: &dyn Facet, elems: &[AbsVal]) -> Result<(), SafetyViolation> {
    let bot = facet.bottom();
    let top = facet.top();
    for a in elems {
        if facet.join(a, a) != *a {
            return Err(fail("join idempotence", facet.name(), format!("{a:?}")));
        }
        if facet.join(&bot, a) != *a {
            return Err(fail("bottom identity", facet.name(), format!("{a:?}")));
        }
        if facet.join(a, &top) != top {
            return Err(fail("top absorbing", facet.name(), format!("{a:?}")));
        }
        if !facet.leq(&bot, a) || !facet.leq(a, &top) {
            return Err(fail("bounds", facet.name(), format!("{a:?}")));
        }
    }
    for a in elems {
        for b in elems {
            if facet.join(a, b) != facet.join(b, a) {
                return Err(fail(
                    "join commutativity",
                    facet.name(),
                    format!("{a:?}, {b:?}"),
                ));
            }
            let j = facet.join(a, b);
            if !facet.leq(a, &j) || !facet.leq(b, &j) {
                return Err(fail(
                    "join upper bound",
                    facet.name(),
                    format!("{a:?}, {b:?}"),
                ));
            }
            if facet.leq(a, b) != (facet.join(a, b) == *b) {
                return Err(fail(
                    "leq/join agreement",
                    facet.name(),
                    format!("{a:?}, {b:?}"),
                ));
            }
            for c in elems {
                if facet.join(a, &facet.join(b, c)) != facet.join(&facet.join(a, b), c) {
                    return Err(fail(
                        "join associativity",
                        facet.name(),
                        format!("{a:?}, {b:?}, {c:?}"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Elements to test a facet's operators on: the enumeration if available,
/// otherwise `⊥`, `⊤`, and the abstractions of the concrete samples.
pub fn test_elements(facet: &dyn Facet, concrete: &[Value]) -> Vec<AbsVal> {
    if let Some(all) = facet.enumerate() {
        return all;
    }
    let mut out = vec![facet.bottom(), facet.top()];
    for v in concrete {
        let a = facet.alpha(v);
        if !out.contains(&a) {
            out.push(a);
        }
    }
    out
}

/// Checks monotonicity of a facet's closed and open operators over
/// `elems`, for unary and binary primitives (Definition 2, condition 2).
///
/// # Errors
///
/// Returns a witness of the first monotonicity failure.
pub fn check_facet_monotone(
    facet: &dyn Facet,
    elems: &[AbsVal],
    prims: &[Prim],
) -> Result<(), SafetyViolation> {
    let pairs: Vec<(&AbsVal, &AbsVal)> = elems
        .iter()
        .flat_map(|a| elems.iter().map(move |b| (a, b)))
        .filter(|(a, b)| facet.leq(a, b))
        .collect();
    let pe_top = PeVal::Top;
    for &p in prims {
        if p.arity() > 2 {
            continue;
        }
        for (a1, a2) in &pairs {
            if p.arity() == 1 {
                check_mono_at(facet, p, &[(*a1).clone()], &[(*a2).clone()], &pe_top)?;
            } else {
                for c in elems {
                    check_mono_at(
                        facet,
                        p,
                        &[(*a1).clone(), c.clone()],
                        &[(*a2).clone(), c.clone()],
                        &pe_top,
                    )?;
                    check_mono_at(
                        facet,
                        p,
                        &[c.clone(), (*a1).clone()],
                        &[c.clone(), (*a2).clone()],
                        &pe_top,
                    )?;
                }
            }
        }
    }
    Ok(())
}

fn wrap_args<'a>(xs: &'a [AbsVal], pe: &'a PeVal) -> Vec<crate::facet::FacetArg<'a>> {
    xs.iter()
        .map(|abs| crate::facet::FacetArg { pe, abs })
        .collect()
}

fn check_mono_at(
    facet: &dyn Facet,
    p: Prim,
    lo: &[AbsVal],
    hi: &[AbsVal],
    pe_top: &PeVal,
) -> Result<(), SafetyViolation> {
    use ppe_lang::StdOpClass;
    match p.std_class() {
        StdOpClass::Closed => {
            let r1 = facet.closed_op(p, &wrap_args(lo, pe_top));
            let r2 = facet.closed_op(p, &wrap_args(hi, pe_top));
            if !facet.leq(&r1, &r2) {
                return Err(fail(
                    "closed operator monotonicity",
                    facet.name(),
                    format!("{p}: {lo:?} ⊑ {hi:?} but {r1:?} ⋢ {r2:?}"),
                ));
            }
        }
        StdOpClass::Open => {
            let r1 = facet.open_op(p, &wrap_args(lo, pe_top));
            let r2 = facet.open_op(p, &wrap_args(hi, pe_top));
            if !r1.leq(&r2) {
                return Err(fail(
                    "open operator monotonicity",
                    facet.name(),
                    format!("{p}: {lo:?} ⊑ {hi:?} but {r1:?} ⋢ {r2:?}"),
                ));
            }
        }
    }
    Ok(())
}

/// Checks the approximation condition (Definition 2, condition 5) over
/// concrete samples: for closed `p`, `α̂(p(d⃗)) ⊑ p̂(α̂(d⃗))`; for open `p`,
/// `τ̂(p(d⃗)) ⊑ p̂(α̂(d⃗))` — which includes Property 2 (an answered
/// constant is *the* concrete answer).
///
/// Unary and binary primitives are checked over all tuples of `concrete`;
/// erroring concrete applications denote `⊥` and are skipped (the
/// condition is vacuous at `⊥`).
///
/// # Errors
///
/// Returns a witness of the first approximation failure.
pub fn check_facet_safety(
    facet: &dyn Facet,
    concrete: &[Value],
    prims: &[Prim],
) -> Result<(), SafetyViolation> {
    use ppe_lang::StdOpClass;
    let pe_top = PeVal::Top;
    for &p in prims {
        let arity = p.arity();
        if arity > 2 {
            continue;
        }
        let tuples: Vec<Vec<&Value>> = if arity == 1 {
            concrete.iter().map(|v| vec![v]).collect()
        } else {
            concrete
                .iter()
                .flat_map(|a| concrete.iter().map(move |b| vec![a, b]))
                .collect()
        };
        for tuple in tuples {
            let owned: Vec<Value> = tuple.iter().map(|v| (*v).clone()).collect();
            let Ok(result) = p.eval(&owned) else {
                continue; // concrete ⊥: condition vacuous
            };
            let abs: Vec<AbsVal> = owned.iter().map(|v| facet.alpha(v)).collect();
            let wrapped: Vec<crate::facet::FacetArg<'_>> = abs
                .iter()
                .map(|a| crate::facet::FacetArg {
                    pe: &pe_top,
                    abs: a,
                })
                .collect();
            match p.std_class() {
                StdOpClass::Closed => {
                    let abstract_result = facet.closed_op(p, &wrapped);
                    let concrete_abstracted = facet.alpha(&result);
                    if !facet.leq(&concrete_abstracted, &abstract_result) {
                        return Err(fail(
                            "closed approximation α∘p ⊑ p̂∘α",
                            facet.name(),
                            format!(
                                "{p}({owned:?}) = {result:?}; α = {concrete_abstracted:?} ⋢ {abstract_result:?}"
                            ),
                        ));
                    }
                }
                StdOpClass::Open => {
                    let abstract_result = facet.open_op(p, &wrapped);
                    let concrete_pe = PeVal::from_value(&result);
                    if !concrete_pe.leq(&abstract_result) {
                        return Err(fail(
                            "open approximation τ̂∘p ⊑ p̂∘α (Property 2)",
                            facet.name(),
                            format!(
                                "{p}({owned:?}) = {result:?} but facet answered {abstract_result:?}"
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks that `v ∈ γ(α̂(v))` for every sample (the Galois-connection sanity
/// condition used by the consistency checker).
///
/// # Errors
///
/// Returns a witness value outside its own abstraction's concretization.
pub fn check_alpha_gamma(facet: &dyn Facet, concrete: &[Value]) -> Result<(), SafetyViolation> {
    for v in concrete {
        let a = facet.alpha(v);
        if !facet.concretizes(&a, v) {
            return Err(fail(
                "v ∈ γ(α(v))",
                facet.name(),
                format!("{v:?} ∉ γ({a:?})"),
            ));
        }
    }
    Ok(())
}

/// Checks the abstract-facet safety of Definition 8 over facet-level
/// samples: for closed `p`, `ᾱ(p̂(d̂⃗)) ⊑ p̄(ᾱ(d̂⃗))`; for open `p`,
/// `τ̄(p̂(d̂⃗)) ⊑ p̄(ᾱ(d̂⃗))` — which includes Property 6 (a `Static`
/// answer means the facet yields a constant).
///
/// # Errors
///
/// Returns a witness of the first failure.
pub fn check_abstract_facet_safety(
    facet: &dyn Facet,
    abs_facet: &dyn AbstractFacet,
    facet_elems: &[AbsVal],
    prims: &[Prim],
) -> Result<(), SafetyViolation> {
    use ppe_lang::StdOpClass;
    let pe_top = PeVal::Top;
    let bt_dyn = BtVal::Dynamic;
    for &p in prims {
        let arity = p.arity();
        if arity > 2 {
            continue;
        }
        let tuples: Vec<Vec<AbsVal>> = if arity == 1 {
            facet_elems.iter().map(|v| vec![v.clone()]).collect()
        } else {
            facet_elems
                .iter()
                .flat_map(|a| facet_elems.iter().map(move |b| vec![a.clone(), b.clone()]))
                .collect()
        };
        for tuple in tuples {
            let online_args: Vec<crate::facet::FacetArg<'_>> = tuple
                .iter()
                .map(|abs| crate::facet::FacetArg { pe: &pe_top, abs })
                .collect();
            let abstracted: Vec<AbsVal> = tuple.iter().map(|a| abs_facet.alpha_facet(a)).collect();
            let offline_args: Vec<crate::abstract_facet::AbstractArg<'_>> = abstracted
                .iter()
                .map(|abs| crate::abstract_facet::AbstractArg { bt: &bt_dyn, abs })
                .collect();
            match p.std_class() {
                StdOpClass::Closed => {
                    let online = facet.closed_op(p, &online_args);
                    let offline = abs_facet.closed_op(p, &offline_args);
                    let online_abstracted = abs_facet.alpha_facet(&online);
                    if !abs_facet.leq(&online_abstracted, &offline) {
                        return Err(fail(
                            "abstract closed approximation ᾱ∘p̂ ⊑ p̄∘ᾱ",
                            abs_facet.name(),
                            format!("{p}({tuple:?}): {online_abstracted:?} ⋢ {offline:?}"),
                        ));
                    }
                }
                StdOpClass::Open => {
                    let online = facet.open_op(p, &online_args);
                    let offline = abs_facet.open_op(p, &offline_args);
                    if !BtVal::from_pe(&online).leq(&offline) {
                        return Err(fail(
                            "abstract open approximation τ̄∘p̂ ⊑ p̄∘ᾱ (Property 6)",
                            abs_facet.name(),
                            format!("{p}({tuple:?}): online {online:?}, offline {offline:?}"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs the whole battery on a facet: lattice laws, monotonicity,
/// approximation safety, `γ∘α` sanity, and abstract-facet safety — over
/// the facet's enumeration (or abstractions of `concrete`) and all unary
/// and binary primitives.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_facet(facet: &dyn Facet, concrete: &[Value]) -> Result<(), SafetyViolation> {
    let elems = test_elements(facet, concrete);
    check_facet_lattice(facet, &elems)?;
    check_facet_monotone(facet, &elems, &ALL_PRIMS)?;
    check_facet_safety(facet, concrete, &ALL_PRIMS)?;
    check_alpha_gamma(facet, concrete)?;
    let abs = facet.abstract_facet();
    check_abstract_facet_safety(facet, abs.as_ref(), &elems, &ALL_PRIMS)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::default_candidates;
    use crate::facets::{ParityFacet, RangeFacet, SignFacet, SizeFacet};

    #[test]
    fn sign_facet_is_safe() {
        validate_facet(&SignFacet, &default_candidates()).unwrap();
    }

    #[test]
    fn parity_facet_is_safe() {
        validate_facet(&ParityFacet, &default_candidates()).unwrap();
    }

    #[test]
    fn range_facet_is_safe() {
        validate_facet(&RangeFacet, &default_candidates()).unwrap();
    }

    #[test]
    fn size_facet_is_safe() {
        validate_facet(&SizeFacet, &default_candidates()).unwrap();
    }

    #[test]
    fn a_broken_facet_is_caught() {
        use crate::abs_val::AbsVal;
        use crate::facets::SignVal;
        use std::rc::Rc;

        /// Sign facet with an unsound `<`: claims pos < pos is true.
        #[derive(Debug)]
        struct EvilSign;
        impl Facet for EvilSign {
            fn name(&self) -> &'static str {
                "evil-sign"
            }
            fn bottom(&self) -> AbsVal {
                SignFacet.bottom()
            }
            fn top(&self) -> AbsVal {
                SignFacet.top()
            }
            fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
                SignFacet.join(a, b)
            }
            fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
                SignFacet.leq(a, b)
            }
            fn alpha(&self, v: &Value) -> AbsVal {
                SignFacet.alpha(v)
            }
            fn open_op(&self, p: Prim, args: &[crate::facet::FacetArg<'_>]) -> PeVal {
                if p == Prim::Lt
                    && args[0].abs.downcast_ref::<SignVal>() == Some(&SignVal::Pos)
                    && args[1].abs.downcast_ref::<SignVal>() == Some(&SignVal::Pos)
                {
                    return PeVal::constant(true.into());
                }
                SignFacet.open_op(p, args)
            }
            fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
                SignFacet.concretizes(abs, v)
            }
            fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
                SignFacet.abstract_facet()
            }
        }

        let err = check_facet_safety(&EvilSign, &default_candidates(), &[Prim::Lt]).unwrap_err();
        assert!(err.condition.contains("Property 2"), "{err}");
    }
}
