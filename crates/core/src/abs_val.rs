//! Type-erased abstract values.
//!
//! Facets are *user-defined* (that is the point of parameterized partial
//! evaluation), so the framework cannot know their domains statically.
//! [`AbsVal`] erases the concrete element type behind a cheap, clonable
//! handle that still supports the equality and hashing the specialization
//! cache needs; the owning [`crate::Facet`] downcasts with
//! [`AbsVal::downcast_ref`].

use std::any::Any;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// Object-safe surface required of a facet-domain element.
///
/// Blanket-implemented for every `T: Any + Eq + Hash + Debug + Display`, so
/// facet authors implement nothing by hand — define an element enum/struct
/// with those derives and a `Display`, and it is ready for [`AbsVal::new`].
pub trait AbstractValue: Any + fmt::Debug + fmt::Display {
    /// Equality against another erased value (false across element types).
    fn dyn_eq(&self, other: &dyn AbstractValue) -> bool;
    /// Feeds the value into a hasher (prefixed by its type for soundness).
    fn dyn_hash(&self, state: &mut dyn Hasher);
    /// Upcast used for downcasting back to the element type.
    fn as_any(&self) -> &dyn Any;
}

impl<T> AbstractValue for T
where
    T: Any + Eq + Hash + fmt::Debug + fmt::Display,
{
    fn dyn_eq(&self, other: &dyn AbstractValue) -> bool {
        other
            .as_any()
            .downcast_ref::<T>()
            .is_some_and(|o| self == o)
    }

    fn dyn_hash(&self, mut state: &mut dyn Hasher) {
        self.type_id().hash(&mut state);
        self.hash(&mut state);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A type-erased element of some facet's abstract domain.
///
/// Equality, hashing and display delegate to the underlying element.
/// Cloning is O(1) (reference counted).
///
/// # Examples
///
/// ```
/// use ppe_core::AbsVal;
/// use ppe_core::facets::SignVal;
///
/// let a = AbsVal::new(SignVal::Pos);
/// let b = AbsVal::new(SignVal::Pos);
/// assert_eq!(a, b);
/// assert_eq!(a.downcast_ref::<SignVal>(), Some(&SignVal::Pos));
/// assert_eq!(a.to_string(), "pos");
/// ```
#[derive(Clone)]
pub struct AbsVal(Rc<dyn AbstractValue>);

impl AbsVal {
    /// Erases a domain element.
    pub fn new<T: AbstractValue>(value: T) -> AbsVal {
        AbsVal(Rc::new(value))
    }

    /// Recovers the element if it has type `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_any().downcast_ref::<T>()
    }

    /// Recovers the element, panicking with the facet's name on mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the value does not belong to `T`'s domain — which, inside
    /// a facet's operator implementations, indicates the framework passed a
    /// foreign facet's value (a bug, not a user error).
    pub fn expect_ref<T: Any>(&self, facet: &str) -> &T {
        match self.downcast_ref::<T>() {
            Some(v) => v,
            None => panic!(
                "facet `{facet}` was handed a foreign abstract value: {:?}",
                self.0
            ),
        }
    }
}

impl PartialEq for AbsVal {
    fn eq(&self, other: &AbsVal) -> bool {
        self.0.dyn_eq(other.0.as_ref())
    }
}

impl Eq for AbsVal {}

impl Hash for AbsVal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.dyn_hash(state);
    }
}

impl fmt::Debug for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[derive(PartialEq, Eq, Hash, Debug)]
    struct Tag(u8);

    impl fmt::Display for Tag {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "tag{}", self.0)
        }
    }

    #[derive(PartialEq, Eq, Hash, Debug)]
    struct Other(u8);

    impl fmt::Display for Other {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "other{}", self.0)
        }
    }

    #[test]
    fn equality_within_a_type() {
        assert_eq!(AbsVal::new(Tag(1)), AbsVal::new(Tag(1)));
        assert_ne!(AbsVal::new(Tag(1)), AbsVal::new(Tag(2)));
    }

    #[test]
    fn equality_across_types_is_false_even_with_same_bits() {
        assert_ne!(AbsVal::new(Tag(1)), AbsVal::new(Other(1)));
    }

    #[test]
    fn usable_as_hash_map_key() {
        let mut m = HashMap::new();
        m.insert(AbsVal::new(Tag(3)), "three");
        assert_eq!(m.get(&AbsVal::new(Tag(3))), Some(&"three"));
        assert_eq!(m.get(&AbsVal::new(Other(3))), None);
    }

    #[test]
    fn downcast_round_trips() {
        let v = AbsVal::new(Tag(7));
        assert_eq!(v.downcast_ref::<Tag>(), Some(&Tag(7)));
        assert_eq!(v.downcast_ref::<Other>(), None);
    }

    #[test]
    #[should_panic(expected = "foreign abstract value")]
    fn expect_ref_panics_on_foreign_values() {
        AbsVal::new(Tag(0)).expect_ref::<Other>("demo");
    }

    #[test]
    fn display_and_debug_delegate() {
        let v = AbsVal::new(Tag(5));
        assert_eq!(v.to_string(), "tag5");
        assert_eq!(format!("{v:?}"), "Tag(5)");
    }
}
