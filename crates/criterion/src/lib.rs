//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in environments with no network access to a crates
//! registry, so the benchmark entry points are provided here as a small
//! wall-clock harness. It keeps the same source-level API the benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`) but does plain
//! mean-of-N timing: no statistics, no plots, no comparisons.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and optional throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the number of elements processed per iteration so results are
    /// reported as a rate as well as a time.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), None, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), None, |b| f(b, input));
        self
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Build an id like `"name/param"`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration (accepted and ignored by this harness).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, _throughput: Option<Throughput>, mut f: F) {
    // Calibrate: time a single iteration, then pick an iteration count that
    // targets roughly 100ms of measurement, capped to keep total runtime sane.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(100);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed / (b.iters.max(1) as u32);
    println!("bench {label:<50} {mean:>12.2?}/iter ({iters} iters)");
}

/// Declare a group of benchmark functions, mirroring `criterion_group!`.
///
/// Only the simple `criterion_group!(name, fn_a, fn_b, ...)` form is
/// supported; configured forms are not used in this workspace.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        let mut ran = false;
        g.bench_function(BenchmarkId::new("add", 4), |b| {
            ran = true;
            b.iter(|| black_box(2 + 2));
        });
        g.finish();
        assert!(ran);
    }
}
