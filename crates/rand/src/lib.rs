//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no network access to a crates
//! registry, so the handful of `rand` APIs used by the benchmarks are
//! provided here as a tiny deterministic implementation. It is **not** a
//! general-purpose RNG: it exists so seeded benchmark data generation
//! (`StdRng::seed_from_u64` + `gen_range`) works reproducibly.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Produce the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1), scaled into the range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        let span = (self.end as i128 - self.start as i128) as u128;
        assert!(span > 0, "cannot sample from empty range");
        (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as i64
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let span = self.end - self.start;
        assert!(span > 0, "cannot sample from empty range");
        self.start + (rng.next_u64() % span as u64) as usize
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 the seed so 0 and small seeds still give full streams.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: z | 1, // never zero
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-1.0..1.0);
            let y: f64 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(1usize..4);
            assert!((1..4).contains(&u));
        }
    }
}
