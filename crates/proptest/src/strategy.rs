//! Generator combinators: the `Strategy` trait and the small set of
//! primitive strategies the workspace's tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no `ValueTree`/shrinking layer: a strategy
/// simply produces a value from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// lifts a strategy for subtrees into one for a node containing them.
    ///
    /// `depth` bounds the nesting; `_desired_size` and `_expected_branch`
    /// are accepted for source compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut tree = leaf.clone();
        for _ in 0..depth {
            // At each level, mix leaves back in so generated sizes vary.
            tree = Union::weighted(vec![(1, leaf.clone()), (2, recurse(tree).boxed())]).boxed();
        }
        tree
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of the same value type; the engine
/// behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice among `options`.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "Union of zero strategies");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union with zero total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, option) in &self.options {
            if pick < u64::from(*weight) {
                return option.generate(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weighted pick out of range")
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty i64 range");
        rng.int_in(self.start, self.end - 1)
    }
}

impl Strategy for RangeInclusive<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start() <= self.end(), "empty i64 range");
        rng.int_in(*self.start(), *self.end())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.float_in(self.start, self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<bool>()`, `any::<i64>()`, ...).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Canonical strategy marker for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(PhantomData)
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl Arbitrary for i64 {
    type Strategy = Any<i64>;

    fn arbitrary() -> Any<i64> {
        Any(PhantomData)
    }
}

impl Strategy for Any<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        // Bias toward boundary values the way real proptest's integer
        // strategies do, so overflow-adjacent behavior gets exercised.
        const SPECIAL: [i64; 7] = [0, 1, -1, i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1];
        if rng.below(8) == 0 {
            SPECIAL[rng.below(SPECIAL.len() as u64) as usize]
        } else {
            rng.next_u64() as i64
        }
    }
}

/// Simple-regex string strategy: `&'static str` patterns like
/// `"[ -~\\n]{0,80}"` or `"\\PC{0,40}"` generate matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (pool, lo, hi) = parse_simple_regex(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| pool[rng.below(pool.len() as u64) as usize])
            .collect()
    }
}

/// Parse `ATOM{lo,hi}` where `ATOM` is a `[...]` character class or `\PC`
/// (any printable character). Returns the character pool and length bounds.
fn unsupported(pattern: &str) -> ! {
    panic!(
        "proptest stub supports only `[class]{{lo,hi}}` / `\\PC{{lo,hi}}` \
         string patterns, got: {pattern:?}"
    )
}

fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let (atom, rep) = match pattern.rfind('{') {
        Some(idx) if pattern.ends_with('}') => pattern.split_at(idx),
        _ => unsupported(pattern),
    };
    let body = &rep[1..rep.len() - 1];
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => match (lo.trim().parse(), hi.trim().parse()) {
            (Ok(lo), Ok(hi)) => (lo, hi),
            _ => unsupported(pattern),
        },
        None => match body.trim().parse::<usize>() {
            Ok(n) => (n, n),
            Err(_) => unsupported(pattern),
        },
    };
    if hi < lo {
        unsupported(pattern);
    }

    let pool = if atom == "\\PC" {
        printable_pool()
    } else if let Some(class) = atom.strip_prefix('[').and_then(|a| a.strip_suffix(']')) {
        char_class_pool(class, pattern)
    } else {
        unsupported(pattern)
    };
    if pool.is_empty() {
        unsupported(pattern);
    }
    (pool, lo, hi)
}

fn char_class_pool(class: &str, pattern: &str) -> Vec<char> {
    let mut items: Vec<char> = Vec::new();
    let mut chars = class.chars().peekable();
    let mut pool = Vec::new();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('r') => '\r',
                Some(escaped) => escaped,
                None => unsupported(pattern),
            }
        } else {
            c
        };
        items.push(c);
    }
    let mut i = 0;
    while i < items.len() {
        // `a-z` range (a literal `-` at either end is itself a member).
        if i + 2 < items.len() && items[i + 1] == '-' {
            let (start, end) = (items[i], items[i + 2]);
            if start > end {
                unsupported(pattern);
            }
            pool.extend(start..=end);
            i += 3;
        } else {
            pool.push(items[i]);
            i += 1;
        }
    }
    pool
}

/// A spread of printable characters standing in for `\PC`: full printable
/// ASCII plus a sampling of multi-byte code points (Latin-1, Greek, CJK,
/// symbols, emoji) to exercise UTF-8 handling.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (' '..='~').collect();
    pool.extend("¡¢£¤¥àáâãäåæçèéêëìíîïß€λμπΣΩЖद中文日本語한글→∀∃≤≥≠∑∏√∞🦀😀🚀".chars());
    pool
}
