//! Offline stand-in for the `proptest` property-testing crate.
//!
//! This workspace builds in environments with no network access to a crates
//! registry, so the subset of proptest that the test suite uses is provided
//! here. Semantics: each `proptest!` test runs `Config::cases` iterations
//! with a deterministic per-test RNG (seeded from the test's name), failing
//! with a panic that reports the case number on the first failed case.
//!
//! Differences from real proptest, on purpose:
//! - **no shrinking** — a failing case is reported as-is;
//! - string strategies support only simple `[class]{lo,hi}` / `\PC{lo,hi}`
//!   regex patterns (the ones used in this repo's tests);
//! - strategies are generators only (`generate(&self, rng)`), there is no
//!   `ValueTree` layer.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` and elements
    /// drawn from `elem`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Create a strategy generating vectors of `elem` with a length in
    /// `size` (half-open, like the real `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Choose uniformly among several strategies for the same value type.
///
/// Only the unweighted `prop_oneof![s1, s2, ...]` form is supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($item) ),+
        ])
    };
}

/// Fail the current test case unless `$cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Define property tests. Mirrors the real `proptest!` block form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..10, e in arb_expr()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                $crate::test_runner::seed_from_name(stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, bool)> {
        (0i64..100, any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -6i64..=6, n in 1usize..120) {
            prop_assert!((-6..=6).contains(&x));
            prop_assert!((1..120).contains(&n));
        }

        #[test]
        fn tuples_and_oneof_work(p in arb_pair(), v in prop_oneof![Just(1i64), Just(2i64)]) {
            prop_assert!((0..100).contains(&p.0));
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn ascii_strings_match_class(s in "[ -~\\n]{0,80}") {
            prop_assert!(s.len() <= 80);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }

        #[test]
        fn unicode_strings_bounded(s in "\\PC{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }

        #[test]
        fn recursive_strategies_terminate(v in arb_nested()) {
            prop_assert!(depth_of(&v) <= 40);
        }

        #[test]
        fn collection_vec_respects_size(xs in crate::collection::vec(0i64..5, 1..4)) {
            prop_assert!((1..4).contains(&xs.len()));
            prop_assert!(xs.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[derive(Clone, Debug)]
    enum Nested {
        Leaf(i64),
        Node(Box<Nested>, Box<Nested>),
    }

    fn depth_of(n: &Nested) -> usize {
        match n {
            Nested::Leaf(_) => 1,
            Nested::Node(a, b) => 1 + depth_of(a).max(depth_of(b)),
        }
    }

    fn arb_nested() -> impl Strategy<Value = Nested> {
        let leaf = (-10i64..10).prop_map(Nested::Leaf);
        leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Nested::Node(Box::new(a), Box::new(b)))
        })
    }

    #[test]
    fn same_name_same_stream() {
        let mut a =
            crate::test_runner::TestRng::deterministic(crate::test_runner::seed_from_name("t"));
        let mut b =
            crate::test_runner::TestRng::deterministic(crate::test_runner::seed_from_name("t"));
        let s = (0i64..1000, any::<bool>());
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
