//! Deterministic test driver: RNG, configuration, and case failure type.

use std::fmt;

/// Derive a stable 64-bit seed from a test's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Deterministic xorshift64* RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build an RNG whose stream is fully determined by `seed`.
    pub fn deterministic(seed: u64) -> TestRng {
        // splitmix64 the seed so 0 and small seeds still give full streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng { state: z | 1 }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `lo..=hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        (lo as i128 + (self.next_u64() as u128 % span) as i128) as i64
    }

    /// Uniform value in `lo..hi`.
    pub fn float_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config differing from the default only in the case count.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias for one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;
