//! The conventional simple partial evaluator — Figure 2 of the paper,
//! implemented independently of the facet machinery.
//!
//! This is the baseline the parameterized evaluator generalizes: an
//! expression is static exactly when it partially evaluates to a constant;
//! `SK_P` reduces a primitive only when *all* arguments are constants. A
//! differential test in the workspace checks that [`crate::OnlinePe`] with
//! an empty facet set computes identical residual programs (partial
//! evaluation subsumes the PE facet alone, Definition 7).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use ppe_lang::{Const, Expr, FunDef, Program, Symbol, Value};

use crate::config::PeConfig;
use crate::error::PeError;
use crate::governor::Governor;
use crate::input::{PeStats, Residual};
use crate::spec_eval::{self, SpecState};

/// One input to the simple partial evaluator: a first-order constant or
/// nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimpleInput {
    /// A known constant.
    Known(Const),
    /// An unknown input.
    Dynamic,
}

/// The simple (conventional) partial evaluator of Figure 2.
///
/// # Examples
///
/// ```
/// use ppe_lang::{parse_program, Const};
/// use ppe_online::{SimpleInput, SimplePe};
///
/// let p = parse_program(
///     "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
/// )?;
/// let pe = SimplePe::new(&p);
/// let residual = pe.specialize_main(&[
///     SimpleInput::Dynamic,
///     SimpleInput::Known(Const::Int(3)),
/// ])?;
/// // power(x, 3) unfolds to (* x (* x (* x 1))).
/// assert_eq!(residual.program.defs().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SimplePe<'a> {
    program: &'a Program,
    config: PeConfig,
}

struct Env {
    stack: Vec<(Symbol, Expr)>,
}

impl Env {
    fn lookup(&self, x: Symbol) -> Option<&Expr> {
        self.stack
            .iter()
            .rev()
            .find(|(n, _)| *n == x)
            .map(|(_, e)| e)
    }
}

/// Specialization pattern: the static part of the argument list.
type Pattern = Vec<Option<Const>>;

struct St {
    cache: HashMap<(Symbol, Pattern), Symbol>,
    def_order: Vec<Symbol>,
    defs: HashMap<Symbol, Option<FunDef>>,
    used_names: HashSet<Symbol>,
    tmp_counter: u64,
    stats: PeStats,
    gov: Governor,
    /// VM shortcut state when [`PeConfig::spec_eval`] installs a backend.
    spec: Option<SpecState>,
}

/// Mints a fresh residual function name. A free function over the name set
/// (rather than a method on [`St`]) so it can run while a cache entry handle
/// still borrows `St::cache`.
fn fresh_fn(used_names: &mut HashSet<Symbol>, base: Symbol) -> Symbol {
    let mut n = 1u64;
    loop {
        let candidate = Symbol::intern(&format!("{base}_{n}"));
        if !used_names.contains(&candidate) {
            used_names.insert(candidate);
            return candidate;
        }
        n += 1;
    }
}

impl St {
    fn fresh_tmp(&mut self) -> Symbol {
        loop {
            self.tmp_counter += 1;
            let candidate = Symbol::intern(&format!("tmp_{}", self.tmp_counter));
            if !self.used_names.contains(&candidate) {
                return candidate;
            }
        }
    }

    fn spend(&mut self) -> Result<(), PeError> {
        self.stats.steps += 1;
        self.gov.tick()
    }
}

impl<'a> SimplePe<'a> {
    /// Creates a simple partial evaluator with the default policy.
    pub fn new(program: &'a Program) -> SimplePe<'a> {
        SimplePe {
            program,
            config: PeConfig::default(),
        }
    }

    /// Creates a simple partial evaluator with an explicit policy.
    pub fn with_config(program: &'a Program, config: PeConfig) -> SimplePe<'a> {
        SimplePe { program, config }
    }

    /// Specializes the main function (the paper's `SPE_Prog`).
    ///
    /// # Errors
    ///
    /// See [`PeError`].
    pub fn specialize_main(&self, inputs: &[SimpleInput]) -> Result<Residual, PeError> {
        self.specialize(self.program.main().name, inputs)
    }

    /// Specializes a named function.
    ///
    /// # Errors
    ///
    /// See [`PeError`].
    pub fn specialize(&self, name: Symbol, inputs: &[SimpleInput]) -> Result<Residual, PeError> {
        let def = self
            .program
            .lookup(name)
            .ok_or(PeError::UnknownFunction(name))?;
        if def.arity() != inputs.len() {
            return Err(PeError::InputArity {
                function: name,
                expected: def.arity(),
                got: inputs.len(),
            });
        }
        let mut used_names: HashSet<Symbol> = self.program.defs().iter().map(|d| d.name).collect();
        for d in self.program.defs() {
            used_names.extend(d.params.iter().copied());
        }
        let mut st = St {
            cache: HashMap::new(),
            def_order: Vec::new(),
            defs: HashMap::new(),
            used_names,
            tmp_counter: 0,
            stats: PeStats::default(),
            gov: Governor::new(&self.config),
            // The simple evaluator has no facet products, so only scalar
            // (constant) parameters reify; `contents_idx` stays `None`.
            spec: self
                .config
                .spec_eval
                .clone()
                .map(|backend| SpecState::new(backend, None)),
        };
        let mut env = Env { stack: Vec::new() };
        let mut kept_params = Vec::new();
        for (param, input) in def.params.iter().zip(inputs) {
            match input {
                SimpleInput::Known(c) => env.stack.push((*param, Expr::Const(*c))),
                SimpleInput::Dynamic => {
                    kept_params.push(*param);
                    env.stack.push((*param, Expr::Var(*param)));
                }
            }
        }
        let body = self.pe(&def.body, &mut env, 0, &mut st)?;
        st.gov.add_residual_size(body.size(), name)?;
        // Drop parameters the residual no longer mentions (mirrors the
        // parameterized specializer, keeping the two residual-equivalent).
        let mut free = Vec::new();
        body.free_vars(&mut free);
        kept_params.retain(|p| free.contains(p));
        let mut defs = vec![FunDef::new(name, kept_params, body)];
        for dname in &st.def_order {
            match st.defs.remove(dname) {
                Some(Some(d)) => defs.push(d),
                _ => {
                    return Err(PeError::MalformedResidual(format!(
                        "specialized function `{dname}` was never completed"
                    )))
                }
            }
        }
        let program = Program::new(defs)
            .and_then(|p| p.validate().map(|()| p))
            .map_err(PeError::MalformedResidual)?;
        Ok(Residual {
            program,
            stats: st.stats,
            report: st.gov.into_report(),
        })
    }

    /// The valuation function `SPE` of Figure 2, behind the governor's
    /// recursion guard (see [`crate::Governor::enter_recursion`]).
    fn pe(&self, e: &Expr, env: &mut Env, depth: u32, st: &mut St) -> Result<Expr, PeError> {
        st.gov.enter_recursion()?;
        let out = self.pe_inner(e, env, depth, st);
        st.gov.exit_recursion();
        out
    }

    fn pe_inner(&self, e: &Expr, env: &mut Env, depth: u32, st: &mut St) -> Result<Expr, PeError> {
        st.spend()?;
        if st.spec.is_some()
            && st.gov.ticks() >= spec_eval::WARMUP_TICKS
            && matches!(e, Expr::Prim(..) | Expr::Let(..))
        {
            if let Some(hit) = self.try_spec_vm(e, env, st)? {
                return Ok(hit);
            }
        }
        match e {
            Expr::Const(c) => Ok(Expr::Const(*c)),
            Expr::Var(x) => env
                .lookup(*x)
                .cloned()
                .ok_or_else(|| PeError::MalformedResidual(format!("unbound `{x}`"))),
            // SK_P: reduce iff every argument is a constant.
            Expr::Prim(p, args) => {
                let mut residuals = Vec::with_capacity(args.len());
                for a in args {
                    residuals.push(self.pe(a, env, depth, st)?);
                }
                let consts: Option<Vec<Const>> = residuals.iter().map(|r| r.as_const()).collect();
                if let Some(cs) = consts {
                    let vals: Vec<Value> = cs.iter().map(|c| Value::from_const(*c)).collect();
                    if let Ok(v) = p.eval(&vals) {
                        if let Some(c) = v.to_const() {
                            st.stats.reductions += 1;
                            return Ok(Expr::Const(c));
                        }
                    }
                }
                st.stats.residual_prims += 1;
                Ok(Expr::Prim(*p, residuals))
            }
            Expr::If(c, t, f) => {
                let cr = self.pe(c, env, depth, st)?;
                if let Expr::Const(cc) = cr {
                    if let Some(b) = cc.as_bool() {
                        st.stats.static_branches += 1;
                        return self.pe(if b { t } else { f }, env, depth, st);
                    }
                }
                st.stats.dynamic_branches += 1;
                let tr = self.pe(t, env, depth, st)?;
                let fr = self.pe(f, env, depth, st)?;
                Ok(Expr::If(Box::new(cr), Box::new(tr), Box::new(fr)))
            }
            Expr::Let(x, b, body) => {
                let br = self.pe(b, env, depth, st)?;
                let mark = env.stack.len();
                if matches!(br, Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_)) {
                    env.stack.push((*x, br));
                    let out = self.pe(body, env, depth, st);
                    env.stack.truncate(mark);
                    out
                } else {
                    env.stack.push((*x, Expr::Var(*x)));
                    let bodyr = self.pe(body, env, depth, st)?;
                    env.stack.truncate(mark);
                    Ok(Expr::Let(*x, Box::new(br), Box::new(bodyr)))
                }
            }
            Expr::Call(f, args) => {
                let mut residuals = Vec::with_capacity(args.len());
                for a in args {
                    residuals.push(self.pe(a, env, depth, st)?);
                }
                self.app(*f, residuals, depth, st)
            }
            Expr::FnRef(f) => {
                let spec = self.generalized_spec(*f, st)?;
                Ok(Expr::FnRef(spec))
            }
            Expr::Lambda(params, body) => {
                let mark = env.stack.len();
                for p in params {
                    env.stack.push((*p, Expr::Var(*p)));
                }
                let br = self.pe(body, env, depth, st)?;
                env.stack.truncate(mark);
                Ok(Expr::Lambda(params.clone(), Box::new(br)))
            }
            Expr::App(f, args) => {
                let fr = self.pe(f, env, depth, st)?;
                let mut residuals = Vec::with_capacity(args.len());
                for a in args {
                    residuals.push(self.pe(a, env, depth, st)?);
                }
                match fr {
                    Expr::FnRef(g) => {
                        let original = self.unspecialized_name(g);
                        self.app(original, residuals, depth, st)
                    }
                    Expr::Lambda(params, body)
                        if depth < self.config.max_unfold_depth && !st.gov.is_exhausted() =>
                    {
                        st.stats.unfolds += 1;
                        let mut inner = Env { stack: Vec::new() };
                        let mut lets = Vec::new();
                        for (p, r) in params.iter().zip(residuals) {
                            bind_param(*p, r, &mut inner, &mut lets, st);
                        }
                        let out = self.pe(&body, &mut inner, depth + 1, st)?;
                        Ok(wrap_lets(lets, out))
                    }
                    other => Ok(Expr::App(Box::new(other), residuals)),
                }
            }
        }
    }

    /// The VM shortcut for a fully-static subtree (see [`crate::spec_eval`]
    /// for the contract). Mirrors [`crate::OnlinePe`]'s hook, restricted to
    /// scalar parameters — the simple evaluator's environment holds residual
    /// expressions only, so a parameter reifies exactly when its residual is
    /// a constant. `Ok(None)` means "walk normally, nothing was charged".
    #[inline(never)]
    fn try_spec_vm(&self, e: &Expr, env: &Env, st: &mut St) -> Result<Option<Expr>, PeError> {
        let Some(spec) = st.spec.as_mut() else {
            return Ok(None);
        };
        let Some(info) = spec.memo.info(e) else {
            return Ok(None);
        };
        let extra = u32::try_from(info.size).unwrap_or(u32::MAX);
        if !st.gov.recursion_headroom(extra) || st.gov.remaining_fuel() < info.size - 1 {
            return Ok(None);
        }
        spec.args_buf.clear();
        for &p in &info.params {
            match env.lookup(p) {
                Some(Expr::Const(c)) => spec.args_buf.push(Value::from_const(*c)),
                _ => return Ok(None),
            }
        }
        let Some(out) = spec.backend.eval(info.key, e, &info.params, &spec.args_buf) else {
            return Ok(None);
        };
        let Some(c) = out.to_const() else {
            return Ok(None);
        };
        st.gov.charge(info.size - 1)?;
        st.stats.steps += info.size - 1;
        st.stats.reductions += info.n_prims;
        Ok(Some(Expr::Const(c)))
    }

    fn unspecialized_name(&self, g: Symbol) -> Symbol {
        if self.program.lookup(g).is_some() {
            return g;
        }
        let s = g.as_str();
        if let Some(i) = s.rfind('_') {
            if s[i + 1..].chars().all(|c| c.is_ascii_digit()) {
                let base = Symbol::intern(&s[..i]);
                if self.program.lookup(base).is_some() {
                    return base;
                }
            }
        }
        g
    }

    fn app(
        &self,
        f: Symbol,
        residuals: Vec<Expr>,
        depth: u32,
        st: &mut St,
    ) -> Result<Expr, PeError> {
        let def = self.program.lookup(f).ok_or(PeError::UnknownFunction(f))?;
        let has_static = residuals
            .iter()
            .any(|r| matches!(r, Expr::Const(_) | Expr::FnRef(_) | Expr::Lambda(..)));
        if has_static && st.gov.may_unfold(depth, self.config.max_unfold_depth, f) {
            st.stats.unfolds += 1;
            let mut inner = Env { stack: Vec::new() };
            let mut lets = Vec::new();
            for (p, r) in def.params.iter().zip(residuals) {
                bind_param(*p, r, &mut inner, &mut lets, st);
            }
            let out = self.pe(&def.body, &mut inner, depth + 1, st)?;
            return Ok(wrap_lets(lets, out));
        }
        // Fold onto the (single, fully dynamic) specialization of `f`.
        let spec = self.generalized_spec(f, st)?;
        Ok(Expr::Call(spec, residuals))
    }

    fn generalized_spec(&self, f: Symbol, st: &mut St) -> Result<Symbol, PeError> {
        let def = self.program.lookup(f).ok_or(PeError::UnknownFunction(f))?;
        let pattern: Pattern = vec![None; def.arity()];
        let cache_len = st.cache.len();
        // One probe answers both "already cached?" and "where to insert".
        let name = match st.cache.entry((f, pattern)) {
            Entry::Occupied(entry) => {
                st.stats.cache_hits += 1;
                return Ok(*entry.get());
            }
            Entry::Vacant(slot) => {
                if cache_len >= self.config.max_specializations {
                    // Degrade admits the entry (every simple-PE pattern is
                    // already fully dynamic, so the cache is bounded by the
                    // number of source functions); Fail errors out as
                    // before.
                    st.gov.cache_full(self.config.max_specializations, f)?;
                }
                let name = fresh_fn(&mut st.used_names, f);
                slot.insert(name);
                name
            }
        };
        st.def_order.push(name);
        st.defs.insert(name, None);
        st.stats.specializations += 1;
        let mut inner = Env { stack: Vec::new() };
        for p in &def.params {
            inner.stack.push((*p, Expr::Var(*p)));
        }
        let body = self.pe(&def.body, &mut inner, 0, st)?;
        st.gov.add_residual_size(body.size(), f)?;
        st.defs
            .insert(name, Some(FunDef::new(name, def.params.clone(), body)));
        Ok(name)
    }
}

fn bind_param(
    param: Symbol,
    residual: Expr,
    inner: &mut Env,
    lets: &mut Vec<(Symbol, Expr)>,
    st: &mut St,
) {
    if matches!(residual, Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_)) {
        inner.stack.push((param, residual));
    } else {
        let tmp = st.fresh_tmp();
        lets.push((tmp, residual));
        inner.stack.push((param, Expr::Var(tmp)));
    }
}

fn wrap_lets(lets: Vec<(Symbol, Expr)>, body: Expr) -> Expr {
    let mut out = body;
    for (name, bound) in lets.into_iter().rev() {
        out = Expr::Let(name, Box::new(bound), Box::new(out));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::{parse_program, pretty_program, Evaluator};

    fn specialize(src: &str, inputs: &[SimpleInput]) -> Residual {
        let p = parse_program(src).unwrap();
        SimplePe::new(&p).specialize_main(inputs).unwrap()
    }

    #[test]
    fn power_unfolds_on_a_static_exponent() {
        let r = specialize(
            "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            &[SimpleInput::Dynamic, SimpleInput::Known(Const::Int(3))],
        );
        let printed = pretty_program(&r.program);
        assert!(printed.contains("(* x (* x (* x 1)))"), "{printed}");
        assert_eq!(r.stats.unfolds, 3);
        assert_eq!(r.stats.specializations, 0);
    }

    #[test]
    fn fully_static_input_computes_the_answer() {
        let r = specialize(
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
            &[SimpleInput::Known(Const::Int(5))],
        );
        assert_eq!(r.program.main().body, Expr::int(120));
        assert!(r.program.main().params.is_empty());
    }

    #[test]
    fn fully_dynamic_input_folds_to_one_specialization() {
        let r = specialize(
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
            &[SimpleInput::Dynamic],
        );
        // fact is specialized once; the recursive call folds onto it.
        assert_eq!(r.stats.specializations, 1);
        assert_eq!(r.program.defs().len(), 2);
    }

    #[test]
    fn residual_agrees_with_source_on_dynamic_inputs() {
        let src = "(define (f x n) (if (= n 0) x (+ x (f x (- n 1)))))";
        let p = parse_program(src).unwrap();
        let r = SimplePe::new(&p)
            .specialize_main(&[SimpleInput::Dynamic, SimpleInput::Known(Const::Int(4))])
            .unwrap();
        let mut ev_src = Evaluator::new(&p);
        let mut ev_res = Evaluator::new(&r.program);
        for x in [-3i64, 0, 10] {
            let expected = ev_src.run_main(&[Value::Int(x), Value::Int(4)]).unwrap();
            let got = ev_res.run_main(&[Value::Int(x)]).unwrap();
            assert_eq!(expected, got, "x = {x}");
        }
    }

    #[test]
    fn let_insertion_preserves_non_trivial_arguments() {
        // The argument (+ x 1) must not be duplicated into both uses of y.
        let src = "(define (main x) (g (+ x 1) 2))
                   (define (g y n) (if (= n 0) 0 (+ y (g y (- n 1)))))";
        let r = specialize(src, &[SimpleInput::Dynamic]);
        let printed = pretty_program(&r.program);
        let occurrences = printed.matches("(+ x 1)").count();
        assert_eq!(occurrences, 1, "{printed}");
    }

    #[test]
    fn dynamic_conditional_keeps_both_branches() {
        let r = specialize(
            "(define (f x) (if (< x 0) (neg x) x))",
            &[SimpleInput::Dynamic],
        );
        assert_eq!(r.stats.dynamic_branches, 1);
        let printed = pretty_program(&r.program);
        assert!(printed.contains("(if (< x 0) (neg x) x)"), "{printed}");
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = parse_program("(define (f x) x)").unwrap();
        let err = SimplePe::new(&p).specialize_main(&[]).unwrap_err();
        assert!(matches!(err, PeError::InputArity { .. }));
    }

    #[test]
    fn non_terminating_static_recursion_is_generalized() {
        // f(n) = f(n + 1): unfolding cannot consume the static argument;
        // the generalization fallback must terminate with a residual loop.
        let src = "(define (f n) (if (< n 0) 0 (f (+ n 1))))";
        let p = parse_program(src).unwrap();
        let config = PeConfig {
            max_unfold_depth: 16,
            ..PeConfig::default()
        };
        let r = SimplePe::with_config(&p, config)
            .specialize_main(&[SimpleInput::Known(Const::Int(0))])
            .unwrap();
        assert_eq!(r.stats.specializations, 1);
    }

    #[test]
    fn higher_order_known_target_is_inlined() {
        let src = "(define (main x) (twice inc x))
                   (define (twice f x) (f (f x)))
                   (define (inc x) (+ x 1))";
        let r = specialize(src, &[SimpleInput::Known(Const::Int(5))]);
        assert_eq!(r.program.main().body, Expr::int(7));
    }
}
