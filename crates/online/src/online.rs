//! The online parameterized partial evaluator — Figure 3 of the paper.
//!
//! `PE` threads `(residual expression, product of facet values)` through
//! the program; the specialization cache `Sf` maps `(function, product
//! pattern)` to residual function names, achieving "instantiation and
//! folding … and uniqueness of specialized functions" (Section 2). The
//! call policy (the paper's abstracted `APP`) is:
//!
//! - a call with some *constant* argument is **unfolded**, up to
//!   [`crate::PeConfig::max_unfold_depth`] (with let-insertion for
//!   non-trivial argument expressions, preserving strictness);
//! - a call with facet information but no constants is **specialized**:
//!   folded onto a cache entry keyed by the products of facet values;
//! - past the unfold budget, arguments are **generalized** to fully
//!   dynamic before specializing, guaranteeing one cache entry per
//!   function and hence termination.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use ppe_core::{FacetSet, PeVal, PrimOutcome, ProductVal};
use ppe_lang::{Expr, FunDef, Program, Symbol};

use ppe_lang::Value;

use crate::config::PeConfig;
use crate::error::PeError;
use crate::governor::Governor;
use crate::input::{PeInput, PeStats, Residual};
use crate::spec_eval::{self, SpecState};

/// The online parameterized partial evaluator (Figure 3).
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct OnlinePe<'a> {
    program: &'a Program,
    facets: &'a FacetSet,
    config: PeConfig,
}

/// The specialization environment `ρ : Var → (Exp × D̂)` of Figure 3,
/// scoped as a stack.
struct PeEnv {
    stack: Vec<(Symbol, Expr, ProductVal)>,
}

impl PeEnv {
    fn new() -> PeEnv {
        PeEnv { stack: Vec::new() }
    }

    fn lookup(&self, x: Symbol) -> Option<(&Expr, &ProductVal)> {
        self.stack
            .iter()
            .rev()
            .find(|(n, _, _)| *n == x)
            .map(|(_, e, v)| (e, v))
    }

    fn push(&mut self, x: Symbol, e: Expr, v: ProductVal) {
        self.stack.push((x, e, v));
    }

    fn mark(&self) -> usize {
        self.stack.len()
    }

    fn reset(&mut self, mark: usize) {
        self.stack.truncate(mark);
    }
}

/// Mutable specialization state: the cache `Sf`, the residual definitions
/// under construction, naming, and counters.
struct St {
    /// `Sf`: pattern → (residual name, result product once known). The
    /// result product lets callers keep facet information across folded
    /// calls (`None` while the body is still being specialized, i.e. on
    /// recursive re-entry).
    cache: HashMap<(Symbol, Vec<ProductVal>), (Symbol, Option<ProductVal>)>,
    def_order: Vec<Symbol>,
    defs: HashMap<Symbol, Option<FunDef>>,
    used_names: HashSet<Symbol>,
    tmp_counter: u64,
    stats: PeStats,
    gov: Governor,
    /// VM shortcut state when [`PeConfig::spec_eval`] installs a backend.
    spec: Option<SpecState>,
}

/// Mints a fresh residual function name. A free function over the name set
/// (rather than a method on [`St`]) so it can run while a cache entry handle
/// still borrows `St::cache`.
fn fresh_fn(used_names: &mut HashSet<Symbol>, base: Symbol) -> Symbol {
    let mut n = 1u64;
    loop {
        let candidate = Symbol::intern(&format!("{base}_{n}"));
        if !used_names.contains(&candidate) {
            used_names.insert(candidate);
            return candidate;
        }
        n += 1;
    }
}

impl St {
    fn fresh_tmp(&mut self) -> Symbol {
        loop {
            self.tmp_counter += 1;
            let candidate = Symbol::intern(&format!("tmp_{}", self.tmp_counter));
            if !self.used_names.contains(&candidate) {
                return candidate;
            }
        }
    }

    fn spend(&mut self) -> Result<(), PeError> {
        self.stats.steps += 1;
        self.gov.tick()
    }
}

impl<'a> OnlinePe<'a> {
    /// Creates a specializer for `program` parameterized by `facets`, with
    /// the default policy.
    pub fn new(program: &'a Program, facets: &'a FacetSet) -> OnlinePe<'a> {
        OnlinePe {
            program,
            facets,
            config: PeConfig::default(),
        }
    }

    /// Creates a specializer with an explicit policy.
    pub fn with_config(
        program: &'a Program,
        facets: &'a FacetSet,
        config: PeConfig,
    ) -> OnlinePe<'a> {
        OnlinePe {
            program,
            facets,
            config,
        }
    }

    /// Specializes the program's main function with respect to `inputs`
    /// (the paper's `PE_Prog`).
    ///
    /// # Errors
    ///
    /// See [`PeError`] for the failure modes (unknown facet, arity
    /// mismatch, exhausted budgets).
    pub fn specialize_main(&self, inputs: &[PeInput]) -> Result<Residual, PeError> {
        self.specialize(self.program.main().name, inputs)
    }

    /// Specializes an arbitrary defined function with respect to `inputs`.
    ///
    /// The residual program's entry point keeps the original function name
    /// and only the parameters whose inputs were not first-order
    /// constants.
    ///
    /// # Errors
    ///
    /// As for [`OnlinePe::specialize_main`].
    pub fn specialize(&self, name: Symbol, inputs: &[PeInput]) -> Result<Residual, PeError> {
        let def = self
            .program
            .lookup(name)
            .ok_or(PeError::UnknownFunction(name))?;
        if def.arity() != inputs.len() {
            return Err(PeError::InputArity {
                function: name,
                expected: def.arity(),
                got: inputs.len(),
            });
        }
        let mut st = St {
            cache: HashMap::new(),
            def_order: Vec::new(),
            defs: HashMap::new(),
            used_names: self.reserved_names(),
            tmp_counter: 0,
            stats: PeStats::default(),
            gov: Governor::new(&self.config),
            spec: self
                .config
                .spec_eval
                .clone()
                .map(|backend| SpecState::new(backend, self.facets.index_of("contents"))),
        };
        let mut env = PeEnv::new();
        let mut kept_params = Vec::new();
        let candidates = if self.config.check_consistency {
            ppe_core::consistency::default_candidates()
        } else {
            Vec::new()
        };
        for (param, input) in def.params.iter().zip(inputs) {
            let product = input.to_product(self.facets)?;
            if self.config.check_consistency {
                ppe_core::consistency::check_consistent(&product, self.facets, &candidates)
                    .map_err(|_| PeError::InconsistentInput(format!("{param} = {product}")))?;
            }
            if let PeVal::Const(c) = product.pe() {
                env.push(*param, Expr::Const(*c), product);
            } else {
                kept_params.push(*param);
                env.push(*param, Expr::Var(*param), product);
            }
        }
        let (body, _) = self.pe(&def.body, &mut env, 0, &mut st)?;
        st.gov.add_residual_size(body.size(), name)?;
        // Drop parameters the residual no longer mentions (e.g. an input
        // that was fully consumed through its facets, like the bytecode
        // vector in interpreter specialization).
        let mut free = Vec::new();
        body.free_vars(&mut free);
        kept_params.retain(|p| free.contains(p));
        let mut defs = vec![FunDef::new(name, kept_params, body)];
        for dname in &st.def_order {
            match st.defs.remove(dname) {
                Some(Some(d)) => defs.push(d),
                _ => {
                    return Err(PeError::MalformedResidual(format!(
                        "specialized function `{dname}` was never completed"
                    )))
                }
            }
        }
        let program = Program::new(defs)
            .and_then(|p| p.validate().map(|()| p))
            .map_err(PeError::MalformedResidual)?;
        Ok(Residual {
            program,
            stats: st.stats,
            report: st.gov.into_report(),
        })
    }

    /// Names that residual functions and let-inserted temporaries must
    /// avoid: every function name and every binder in the source program.
    fn reserved_names(&self) -> HashSet<Symbol> {
        fn binders(e: &Expr, out: &mut HashSet<Symbol>) {
            match e {
                Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => {}
                Expr::Prim(_, args) | Expr::Call(_, args) => {
                    args.iter().for_each(|a| binders(a, out));
                }
                Expr::If(a, b, c) => {
                    binders(a, out);
                    binders(b, out);
                    binders(c, out);
                }
                Expr::Let(x, a, b) => {
                    out.insert(*x);
                    binders(a, out);
                    binders(b, out);
                }
                Expr::Lambda(ps, b) => {
                    out.extend(ps.iter().copied());
                    binders(b, out);
                }
                Expr::App(f, args) => {
                    binders(f, out);
                    args.iter().for_each(|a| binders(a, out));
                }
            }
        }
        let mut out = HashSet::new();
        for d in self.program.defs() {
            out.insert(d.name);
            out.extend(d.params.iter().copied());
            binders(&d.body, &mut out);
        }
        out
    }

    /// The valuation function `PE` of Figure 3, behind the governor's
    /// recursion guard: a runaway walk surfaces as
    /// [`PeError::DepthLimit`] instead of a native stack overflow.
    fn pe(
        &self,
        e: &Expr,
        env: &mut PeEnv,
        depth: u32,
        st: &mut St,
    ) -> Result<(Expr, ProductVal), PeError> {
        st.gov.enter_recursion()?;
        let out = self.pe_inner(e, env, depth, st);
        st.gov.exit_recursion();
        out
    }

    fn pe_inner(
        &self,
        e: &Expr,
        env: &mut PeEnv,
        depth: u32,
        st: &mut St,
    ) -> Result<(Expr, ProductVal), PeError> {
        st.spend()?;
        if st.spec.is_some()
            && st.gov.ticks() >= spec_eval::WARMUP_TICKS
            && matches!(e, Expr::Prim(..) | Expr::Let(..))
        {
            if let Some(hit) = self.try_spec_vm(e, env, st)? {
                return Ok(hit);
            }
        }
        match e {
            // PE[c] = K̂[c]: the constant propagates into every facet.
            Expr::Const(c) => Ok((Expr::Const(*c), ProductVal::from_const(*c, self.facets))),
            // PE[x] = ρ[x].
            Expr::Var(x) => {
                let (res, val) = env
                    .lookup(*x)
                    .ok_or_else(|| PeError::MalformedResidual(format!("unbound `{x}`")))?;
                Ok((res.clone(), val.clone()))
            }
            // PE[p(e…)] = K̂_P[p] — the product operator ω̂_p decides.
            Expr::Prim(p, args) => {
                let mut residuals = Vec::with_capacity(args.len());
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let (r, v) = self.pe(a, env, depth, st)?;
                    residuals.push(r);
                    vals.push(v);
                }
                match self.facets.prim_product(*p, &vals) {
                    PrimOutcome::Const(c) => {
                        st.stats.reductions += 1;
                        Ok((Expr::Const(c), ProductVal::from_const(c, self.facets)))
                    }
                    PrimOutcome::Closed(v) => {
                        st.stats.residual_prims += 1;
                        Ok((Expr::Prim(*p, residuals), v))
                    }
                    PrimOutcome::Unknown => {
                        st.stats.residual_prims += 1;
                        Ok((Expr::Prim(*p, residuals), ProductVal::dynamic(self.facets)))
                    }
                    PrimOutcome::Bottom => {
                        st.stats.residual_prims += 1;
                        Ok((Expr::Prim(*p, residuals), ProductVal::bottom(self.facets)))
                    }
                }
            }
            // PE[if e₁ e₂ e₃]: reduce when the test is a constant,
            // otherwise specialize both branches and join their values.
            Expr::If(c, t, f) => {
                let (cr, _cv) = self.pe(c, env, depth, st)?;
                if let Expr::Const(cc) = cr {
                    if let Some(b) = cc.as_bool() {
                        st.stats.static_branches += 1;
                        return self.pe(if b { t } else { f }, env, depth, st);
                    }
                }
                st.stats.dynamic_branches += 1;
                let (tr, tv) = self.pe_branch(t, &cr, true, env, depth, st)?;
                let (fr, fv) = self.pe_branch(f, &cr, false, env, depth, st)?;
                Ok((
                    Expr::If(Box::new(cr), Box::new(tr), Box::new(fr)),
                    tv.join(&fv, self.facets),
                ))
            }
            // `let` is not in Figure 3 (it is sugar) but its treatment is
            // forced: bind and drop when the bound residual is trivial,
            // keep the binding otherwise.
            Expr::Let(x, b, body) => {
                let (br, bv) = self.pe(b, env, depth, st)?;
                let mark = env.mark();
                if matches!(br, Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_)) {
                    env.push(*x, br, bv);
                    let out = self.pe(body, env, depth, st);
                    env.reset(mark);
                    out
                } else {
                    env.push(*x, Expr::Var(*x), bv);
                    let (bodyr, bodyv) = self.pe(body, env, depth, st)?;
                    env.reset(mark);
                    Ok((Expr::Let(*x, Box::new(br), Box::new(bodyr)), bodyv))
                }
            }
            // PE[f(e…)] = APP.
            Expr::Call(f, args) => {
                let mut residuals = Vec::with_capacity(args.len());
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let (r, v) = self.pe(a, env, depth, st)?;
                    residuals.push(r);
                    vals.push(v);
                }
                self.app(*f, residuals, vals, depth, st)
            }
            // Higher-order forms (Section 5.5; "the techniques for higher
            // order online partial evaluation are now known").
            Expr::FnRef(f) => {
                // Keep the reference applicable in the residual program by
                // pointing it at a fully generalized specialization.
                let spec = self.generalized_spec(*f, st)?;
                Ok((Expr::FnRef(spec), ProductVal::dynamic(self.facets)))
            }
            Expr::Lambda(params, body) => {
                let mark = env.mark();
                for p in params {
                    env.push(*p, Expr::Var(*p), ProductVal::dynamic(self.facets));
                }
                let (br, _) = self.pe(body, env, depth, st)?;
                env.reset(mark);
                Ok((
                    Expr::Lambda(params.clone(), Box::new(br)),
                    ProductVal::dynamic(self.facets),
                ))
            }
            Expr::App(f, args) => {
                let (fr, _fv) = self.pe(f, env, depth, st)?;
                let mut residuals = Vec::with_capacity(args.len());
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let (r, v) = self.pe(a, env, depth, st)?;
                    residuals.push(r);
                    vals.push(v);
                }
                match fr {
                    // A known top-level target turns into a first-order
                    // call and enjoys the full APP treatment.
                    Expr::FnRef(g) => {
                        let original = self.unspecialized_name(g);
                        self.app(original, residuals, vals, depth, st)
                    }
                    // A manifest λ β-reduces (with let-insertion) while the
                    // unfold budget and the governor allow it.
                    Expr::Lambda(params, body)
                        if depth < self.config.max_unfold_depth && !st.gov.is_exhausted() =>
                    {
                        st.stats.unfolds += 1;
                        let mut inner = PeEnv::new();
                        let mut lets = Vec::new();
                        for ((p, r), v) in params.iter().zip(residuals).zip(vals) {
                            self.bind_param(*p, r, v, &mut inner, &mut lets, st);
                        }
                        let (out, val) = self.pe(&body, &mut inner, depth + 1, st)?;
                        Ok((wrap_lets(lets, out), val))
                    }
                    other => Ok((
                        Expr::App(Box::new(other), residuals),
                        ProductVal::dynamic(self.facets),
                    )),
                }
            }
        }
    }

    /// The VM shortcut for a fully-static subtree (see [`crate::spec_eval`]
    /// for the contract and the parity argument). Returns `Ok(None)` on any
    /// ineligibility — the caller proceeds with the ordinary walk, which has
    /// not been charged anything.
    #[inline(never)]
    fn try_spec_vm(
        &self,
        e: &Expr,
        env: &PeEnv,
        st: &mut St,
    ) -> Result<Option<(Expr, ProductVal)>, PeError> {
        let Some(spec) = st.spec.as_mut() else {
            return Ok(None);
        };
        let Some(info) = spec.memo.info(e) else {
            return Ok(None);
        };
        // Budget gates: fire only where the tree walk would complete the
        // subtree without tripping (or soft-degrading) any budget, so that
        // skipping the walk is observationally invisible. The walk would
        // tick `size - 1` more times (the root's tick is already spent) and
        // recurse at most `size` frames deep.
        let extra = u32::try_from(info.size).unwrap_or(u32::MAX);
        if !st.gov.recursion_headroom(extra) || st.gov.remaining_fuel() < info.size - 1 {
            return Ok(None);
        }
        spec.args_buf.clear();
        for &p in &info.params {
            let Some((res, val)) = env.lookup(p) else {
                return Ok(None);
            };
            match res {
                // A constant residual is exactly the concrete value the
                // walk would fold with.
                Expr::Const(c) => spec.args_buf.push(Value::from_const(*c)),
                // A dynamic variable may still denote one concrete vector
                // when its contents facet pins every element.
                Expr::Var(_) => {
                    let Some(ci) = spec.contents_idx else {
                        return Ok(None);
                    };
                    match spec.reify.get_or_reify(val, ci) {
                        Some(v) => spec.args_buf.push(v),
                        None => return Ok(None),
                    }
                }
                _ => return Ok(None),
            }
        }
        let Some(out) = spec.backend.eval(info.key, e, &info.params, &spec.args_buf) else {
            return Ok(None);
        };
        // A non-constant result (a vector flowing out) is not foldable;
        // fall back, uncharged.
        let Some(c) = out.to_const() else {
            return Ok(None);
        };
        // Mirror the walk's accounting exactly: `size - 1` further ticks
        // (same deadline-probe boundaries) and one reduction per primitive.
        st.gov.charge(info.size - 1)?;
        st.stats.steps += info.size - 1;
        st.stats.reductions += info.n_prims;
        Ok(Some((
            Expr::Const(c),
            spec.products.get_or_insert(c, self.facets),
        )))
    }

    /// Specializes one branch of a residual conditional; when constraint
    /// propagation is enabled (Section 4.4's future work, Redfun-style),
    /// the knowledge that the test evaluated to `outcome` is pushed into
    /// the branch environment first.
    fn pe_branch(
        &self,
        branch: &Expr,
        cond_residual: &Expr,
        outcome: bool,
        env: &mut PeEnv,
        depth: u32,
        st: &mut St,
    ) -> Result<(Expr, ProductVal), PeError> {
        if !self.config.propagate_constraints {
            return self.pe(branch, env, depth, st);
        }
        let mark = env.mark();
        self.assume_cond(cond_residual, outcome, env);
        let out = self.pe(branch, env, depth, st);
        env.reset(mark);
        out
    }

    /// Pushes refined bindings implied by `cond_residual == outcome` onto
    /// `env` (scoped by the caller via mark/reset).
    fn assume_cond(&self, cond: &Expr, outcome: bool, env: &mut PeEnv) {
        match cond {
            // A bare boolean variable: it *is* `outcome` in this branch.
            Expr::Var(x) => {
                if let Some((res, val)) = env.lookup(*x) {
                    let (res, val) = (res.clone(), val.clone());
                    if !val.pe().is_const() {
                        let c = ppe_lang::Const::Bool(outcome);
                        let _ = res;
                        env.push(*x, Expr::Const(c), ProductVal::from_const(c, self.facets));
                    }
                }
            }
            // (not e): recurse with the outcome flipped.
            Expr::Prim(ppe_lang::Prim::Not, args) => {
                self.assume_cond(&args[0], !outcome, env);
            }
            // A binary comparison over variables/constants.
            Expr::Prim(p, cargs) if cargs.len() == 2 => {
                use ppe_lang::Prim;
                if !matches!(
                    p,
                    Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge | Prim::Eq | Prim::Ne
                ) {
                    return;
                }
                // Values of both sides, available only for trivial
                // residuals (which is where refinement is useful anyway).
                let side_val = |e: &Expr| -> Option<(Option<Symbol>, Expr, ProductVal)> {
                    match e {
                        Expr::Var(x) => env
                            .lookup(*x)
                            .map(|(res, val)| (Some(*x), res.clone(), val.clone())),
                        Expr::Const(c) => {
                            Some((None, e.clone(), ProductVal::from_const(*c, self.facets)))
                        }
                        _ => None,
                    }
                };
                let Some(left) = side_val(&cargs[0]) else {
                    return;
                };
                let Some(right) = side_val(&cargs[1]) else {
                    return;
                };
                let vals = [left.2.clone(), right.2.clone()];
                let is_equality = (*p == Prim::Eq && outcome) || (*p == Prim::Ne && !outcome);
                let mut pending: Vec<(Symbol, Expr, ProductVal)> = Vec::new();
                for (position, side) in [&left, &right].into_iter().enumerate() {
                    let Some(x) = side.0 else { continue };
                    let other = &vals[1 - position];
                    // Equality against a constant: the variable *is* that
                    // constant in this branch.
                    if is_equality {
                        if let Some(c) = other.pe().as_const() {
                            pending.push((
                                x,
                                Expr::Const(c),
                                ProductVal::from_const(c, self.facets),
                            ));
                            continue;
                        }
                    }
                    // Facet-level refinement through `assume`.
                    let mut val = side.2.clone();
                    let mut changed = false;
                    for (i, facet) in self.facets.iter().enumerate() {
                        let wrapped: Vec<ppe_core::FacetArg<'_>> = vals
                            .iter()
                            .map(|v| ppe_core::FacetArg {
                                pe: v.pe(),
                                abs: v.facet(i),
                            })
                            .collect();
                        if let Some(abs) = facet.assume(*p, &wrapped, outcome, position) {
                            val = val.with_facet(i, abs);
                            changed = true;
                        }
                    }
                    if changed {
                        pending.push((x, side.1.clone(), val));
                    }
                }
                for (x, res, val) in pending {
                    env.push(x, res, val);
                }
            }
            _ => {}
        }
    }

    /// Maps a residual function name back to its source function if it was
    /// produced by `generalized_spec`, so `(fnref f)` applied directly is
    /// specialized like an ordinary call.
    fn unspecialized_name(&self, g: Symbol) -> Symbol {
        if self.program.lookup(g).is_some() {
            return g;
        }
        // `g` is `f_n` for some source `f`; recover it. Only a numeric
        // suffix can come from `fresh_fn`, so only that shape is stripped.
        let s = g.as_str();
        if let Some(i) = s.rfind('_') {
            if !s[i + 1..].is_empty() && s[i + 1..].chars().all(|c| c.is_ascii_digit()) {
                let base = Symbol::intern(&s[..i]);
                if self.program.lookup(base).is_some() {
                    return base;
                }
            }
        }
        g
    }

    /// Binds one parameter for unfolding: trivial residuals substitute
    /// directly, non-trivial ones go through a fresh `let` (preserving
    /// strictness and avoiding duplication).
    fn bind_param(
        &self,
        param: Symbol,
        residual: Expr,
        val: ProductVal,
        inner: &mut PeEnv,
        lets: &mut Vec<(Symbol, Expr)>,
        st: &mut St,
    ) {
        if matches!(residual, Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_)) {
            inner.push(param, residual, val);
        } else {
            let tmp = st.fresh_tmp();
            lets.push((tmp, residual));
            inner.push(param, Expr::Var(tmp), val);
        }
    }

    /// The call treatment `APP` (abstracted in Figure 3; policy documented
    /// at module level).
    fn app(
        &self,
        f: Symbol,
        residuals: Vec<Expr>,
        vals: Vec<ProductVal>,
        depth: u32,
        st: &mut St,
    ) -> Result<(Expr, ProductVal), PeError> {
        let def = self.program.lookup(f).ok_or(PeError::UnknownFunction(f))?;
        // Static information worth unfolding over: a constant argument, or
        // a *known function value* (the lever of higher-order
        // specialization: combinators unfold when their functional
        // arguments are manifest).
        let has_static = vals.iter().any(|v| v.pe().is_const())
            || residuals
                .iter()
                .any(|r| matches!(r, Expr::FnRef(_) | Expr::Lambda(..)));
        if has_static && st.gov.may_unfold(depth, self.config.max_unfold_depth, f) {
            // Unfold: static data present.
            st.stats.unfolds += 1;
            let mut inner = PeEnv::new();
            let mut lets = Vec::new();
            for ((p, r), v) in def.params.iter().zip(residuals).zip(vals) {
                self.bind_param(*p, r, v, &mut inner, &mut lets, st);
            }
            let (out, val) = self.pe(&def.body, &mut inner, depth + 1, st)?;
            return Ok((wrap_lets(lets, out), val));
        }
        // Specialize. Past the unfold budget (or once the governor is
        // exhausted) the pattern is generalized to fully dynamic so that
        // the cache stays finite.
        let pattern: Vec<ProductVal> =
            if st.gov.must_generalize(depth, self.config.max_unfold_depth) {
                vec![ProductVal::dynamic(self.facets); vals.len()]
            } else {
                vals.iter()
                    .map(|v| {
                        if v.is_bottom(self.facets) {
                            ProductVal::bottom(self.facets)
                        } else {
                            v.clone()
                        }
                    })
                    .collect()
            };
        let (spec, value) = self.specialized_fn(f, def, pattern, st)?;
        Ok((Expr::Call(spec, residuals), value))
    }

    /// A specialization of `f` at a fully dynamic pattern, for residual
    /// function references.
    fn generalized_spec(&self, f: Symbol, st: &mut St) -> Result<Symbol, PeError> {
        let def = self.program.lookup(f).ok_or(PeError::UnknownFunction(f))?;
        let pattern = vec![ProductVal::dynamic(self.facets); def.arity()];
        Ok(self.specialized_fn(f, def, pattern, st)?.0)
    }

    /// Looks up or creates the specialized version of `f` at `pattern` —
    /// the cache `Sf` with instantiation and folding.
    fn specialized_fn(
        &self,
        f: Symbol,
        def: &FunDef,
        pattern: Vec<ProductVal>,
        st: &mut St,
    ) -> Result<(Symbol, ProductVal), PeError> {
        // Product values clone by reference count, so holding a second
        // handle on the pattern for the environment costs only the vector.
        let pattern_env = pattern.clone();
        let cache_len = st.cache.len();
        // One probe answers both "already cached?" and "where to insert".
        let name = match st.cache.entry((f, pattern)) {
            Entry::Occupied(entry) => {
                st.stats.cache_hits += 1;
                // A `None` value means we are inside this very
                // specialization (recursion): answer conservatively.
                let (name, value) = entry.get();
                let v = value
                    .clone()
                    .unwrap_or_else(|| ProductVal::dynamic(self.facets));
                return Ok((*name, v));
            }
            Entry::Vacant(slot) => {
                if cache_len >= self.config.max_specializations {
                    let generalized = vec![ProductVal::dynamic(self.facets); def.arity()];
                    if slot.key().1 != generalized {
                        drop(slot);
                        st.gov.cache_full(self.config.max_specializations, f)?;
                        // Degrade: fold onto the fully generalized
                        // specialization instead of minting another
                        // precise one.
                        return self.specialized_fn(f, def, generalized, st);
                    }
                    // A fully generalized entry is admitted past the cap —
                    // there is at most one per source function, so the
                    // cache stays finite.
                }
                let name = fresh_fn(&mut st.used_names, f);
                slot.insert((name, None));
                name
            }
        };
        st.def_order.push(name);
        st.defs.insert(name, None);
        st.stats.specializations += 1;
        let mut inner = PeEnv::new();
        for (p, v) in def.params.iter().zip(&pattern_env) {
            inner.push(*p, Expr::Var(*p), v.clone());
        }
        // Depth resets inside a specialization body: unfolding is budgeted
        // per call chain, and the cache guarantees overall termination.
        let (body, body_val) = self.pe(&def.body, &mut inner, 0, st)?;
        st.gov.add_residual_size(body.size(), f)?;
        // The call's value: keep the facet components of the body's value
        // but force the PE component to ⊤ — a residual call is not a
        // constant (the facet properties hold for the value *if* the call
        // terminates, the paper's "modulo termination" reading).
        let value = body_val.with_pe(PeVal::Top);
        st.defs
            .insert(name, Some(FunDef::new(name, def.params.clone(), body)));
        if let Some(entry) = st.cache.get_mut(&(f, pattern_env)) {
            entry.1 = Some(value.clone());
        }
        Ok((name, value))
    }
}

/// Wraps `body` in the collected `let`s, innermost last.
fn wrap_lets(lets: Vec<(Symbol, Expr)>, body: Expr) -> Expr {
    let mut out = body;
    for (name, bound) in lets.into_iter().rev() {
        out = Expr::Let(name, Box::new(bound), Box::new(out));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeInput;
    use ppe_core::facets::{ParityFacet, ParityVal, SignFacet, SignVal, SizeFacet};
    use ppe_core::{size_of, AbsVal};
    use ppe_lang::{parse_program, pretty_program, Const, Evaluator, Value};

    const IPROD: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

    fn size_facets() -> FacetSet {
        FacetSet::with_facets(vec![Box::new(SizeFacet)])
    }

    fn sign_facets() -> FacetSet {
        FacetSet::with_facets(vec![Box::new(SignFacet)])
    }

    #[test]
    fn inner_product_unrolls_to_figure_8() {
        let p = parse_program(IPROD).unwrap();
        let facets = size_facets();
        let pe = OnlinePe::new(&p, &facets);
        let r = pe
            .specialize_main(&[
                PeInput::dynamic().with_facet("size", size_of(3)),
                PeInput::dynamic().with_facet("size", size_of(3)),
            ])
            .unwrap();
        // One residual function (iprod), non-recursive, fully unrolled.
        assert_eq!(r.program.defs().len(), 1);
        let printed = pretty_program(&r.program);
        // Figure 8's shape: three vref pairs at indices 3, 2, 1; no
        // conditional, no call to dotprod.
        for i in 1..=3 {
            assert!(printed.contains(&format!("(vref a {i})")), "{printed}");
            assert!(printed.contains(&format!("(vref b {i})")), "{printed}");
        }
        assert!(!printed.contains("dotprod"), "{printed}");
        assert!(!printed.contains("if"), "{printed}");
        assert_eq!(r.stats.static_branches, 4); // n = 3, 2, 1, 0
    }

    #[test]
    fn figure_8_residual_computes_the_inner_product() {
        let p = parse_program(IPROD).unwrap();
        let facets = size_facets();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[
                PeInput::dynamic().with_facet("size", size_of(3)),
                PeInput::dynamic().with_facet("size", size_of(3)),
            ])
            .unwrap();
        let a = Value::vector(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(3.0),
        ]);
        let b = Value::vector(vec![
            Value::Float(4.0),
            Value::Float(5.0),
            Value::Float(6.0),
        ]);
        let expected = Evaluator::new(&p)
            .run_main(&[a.clone(), b.clone()])
            .unwrap();
        let got = Evaluator::new(&r.program).run_main(&[a, b]).unwrap();
        assert_eq!(expected, got);
        assert_eq!(got, Value::Float(32.0));
    }

    #[test]
    fn known_vector_inputs_work_like_size_refinements() {
        let p = parse_program(IPROD).unwrap();
        let facets = size_facets();
        let a = Value::vector(vec![Value::Float(1.0), Value::Float(2.0)]);
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::known(a), PeInput::dynamic()])
            .unwrap();
        // Size of `a` is known (2); `b`'s size is not needed for the
        // unrolling because only (vsize a) is consulted.
        let printed = pretty_program(&r.program);
        assert!(printed.contains("(vref a 2)"), "{printed}");
        assert!(!printed.contains("dotprod"), "{printed}");
    }

    #[test]
    fn sign_facet_eliminates_dead_branches() {
        // abs(x) with x known positive loses its conditional entirely.
        let src = "(define (abs x) (if (< x 0) (neg x) x))";
        let p = parse_program(src).unwrap();
        let facets = sign_facets();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos))])
            .unwrap();
        assert_eq!(r.program.main().body, Expr::var("x"));
        assert_eq!(r.stats.static_branches, 1);
    }

    #[test]
    fn closed_operators_propagate_facet_values_through_lets() {
        // y = x * x is `pos` when x is neg, so the branch on y < 0 dies.
        let src = "(define (f x) (let ((y (* x x))) (if (< y 0) 0 1)))";
        let p = parse_program(src).unwrap();
        let facets = sign_facets();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg))])
            .unwrap();
        let printed = pretty_program(&r.program);
        assert!(!printed.contains("if"), "{printed}");
    }

    #[test]
    fn specialization_is_keyed_by_facet_values() {
        // A recursive function whose argument keeps its sign: the online
        // evaluator folds the recursion onto a sign-keyed specialization.
        let src = "(define (walk x) (if (= x 0) 0 (walk (* x x))))";
        let p = parse_program(src).unwrap();
        let facets = sign_facets();
        let config = PeConfig {
            max_unfold_depth: 4,
            ..PeConfig::default()
        };
        let r = OnlinePe::with_config(&p, &facets, config)
            .specialize_main(&[PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos))])
            .unwrap();
        // pos * pos = pos: (= x 0) cannot be decided (x may be any pos),
        // so walk specializes on the `pos` pattern and folds.
        assert!(r.stats.specializations >= 1);
        let mut ev = Evaluator::new(&r.program);
        // walk(pos) diverges unless x*x hits 0 — it never does for pos.
        // Instead check against a terminating variant is not possible;
        // just check residual validity by construction (validate ran).
        let _ = &mut ev;
    }

    #[test]
    fn fully_static_call_reduces_to_a_constant() {
        let src = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::known(Value::Int(6))])
            .unwrap();
        assert_eq!(r.program.main().body, Expr::int(720));
        assert!(r.program.main().params.is_empty());
    }

    #[test]
    fn empty_facet_set_matches_simple_pe() {
        use crate::simple::{SimpleInput, SimplePe};
        let srcs = [
            "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            "(define (f x n) (if (= n 0) x (+ x (f x (- n 1)))))",
        ];
        for src in srcs {
            let p = parse_program(src).unwrap();
            let facets = FacetSet::new();
            let online = OnlinePe::new(&p, &facets)
                .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(3))])
                .unwrap();
            let simple = SimplePe::new(&p)
                .specialize_main(&[SimpleInput::Dynamic, SimpleInput::Known(Const::Int(3))])
                .unwrap();
            assert_eq!(
                pretty_program(&online.program),
                pretty_program(&simple.program),
                "simple PE and PE-facet-only parameterized PE disagree on {src}"
            );
        }
    }

    #[test]
    fn products_of_facets_cooperate() {
        // Parity decides (= x 0) is false for odd x; sign then keeps the
        // recursion well-founded... here we just check both facets feed
        // reductions in one pass: parity kills the equality test, sign
        // kills the comparison.
        let src = "(define (f x) (if (= x 0) 100 (if (< x 0) 200 300)))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(ParityFacet)]);
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::dynamic()
                .with_facet("sign", AbsVal::new(SignVal::Pos))
                .with_facet("parity", AbsVal::new(ParityVal::Odd))])
            .unwrap();
        assert_eq!(r.program.main().body, Expr::int(300));
    }

    #[test]
    fn generalization_terminates_growing_static_recursion() {
        let src = "(define (count n) (if (< n 0) 0 (count (+ n 1))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let config = PeConfig {
            max_unfold_depth: 8,
            ..PeConfig::default()
        };
        let r = OnlinePe::with_config(&p, &facets, config)
            .specialize_main(&[PeInput::known(Value::Int(0))])
            .unwrap();
        // The unfold budget is consumed, then the recursion folds onto a
        // generalized specialization.
        assert_eq!(r.stats.specializations, 1);
        assert!(r.stats.unfolds >= 8);
    }

    #[test]
    fn bottom_expressions_stay_residual() {
        // (/ 1 0) denotes ⊥: it must not be "reduced", and the residual
        // program must still error at run time.
        let src = "(define (f x) (+ x (/ 1 0)))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        let printed = pretty_program(&r.program);
        assert!(printed.contains("(/ 1 0)"), "{printed}");
        let err = Evaluator::new(&r.program)
            .run_main(&[Value::Int(1)])
            .unwrap_err();
        assert_eq!(err, ppe_lang::EvalError::DivByZero);
    }

    #[test]
    fn stats_count_reductions_and_unfolds() {
        let src = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::dynamic(), PeInput::known(Value::Int(4))])
            .unwrap();
        assert_eq!(r.stats.unfolds, 4);
        assert_eq!(r.stats.static_branches, 5);
        assert!(r.stats.reductions >= 9); // 4×(= n 0) + 4×(- n 1) + final (= 0 0)
    }

    #[test]
    fn unknown_facet_name_is_rejected() {
        let p = parse_program("(define (f x) x)").unwrap();
        let facets = FacetSet::new();
        let err = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos))])
            .unwrap_err();
        assert_eq!(err, PeError::UnknownFacet("sign".into()));
    }

    #[test]
    fn residual_entry_drops_constant_parameters_only() {
        let src = "(define (f x y z) (+ x (+ y z)))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[
                PeInput::dynamic(),
                PeInput::known(Value::Int(10)),
                PeInput::dynamic(),
            ])
            .unwrap();
        let params: Vec<&str> = r.program.main().params.iter().map(|s| s.as_str()).collect();
        assert_eq!(params, vec!["x", "z"]);
    }
}

#[cfg(test)]
mod constraint_tests {
    use super::*;
    use crate::input::PeInput;
    use ppe_core::facets::{RangeFacet, SignFacet};
    use ppe_core::FacetSet;
    use ppe_lang::{parse_program, pretty_program, Evaluator, Value};

    fn with_constraints() -> PeConfig {
        PeConfig {
            propagate_constraints: true,
            ..PeConfig::default()
        }
    }

    #[test]
    fn sign_constraints_kill_redundant_tests() {
        // Inside the then-branch of (< x 0), x is known negative, so the
        // nested identical test dies.
        let src = "(define (f x) (if (< x 0) (if (< x 0) 1 2) 3))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let r = OnlinePe::with_config(&p, &facets, with_constraints())
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        let printed = pretty_program(&r.program);
        assert_eq!(
            r.program.main().body,
            Expr::If(
                Box::new(Expr::prim(
                    ppe_lang::Prim::Lt,
                    vec![Expr::var("x"), Expr::int(0)]
                )),
                Box::new(Expr::int(1)),
                Box::new(Expr::int(3)),
            ),
            "{printed}"
        );
    }

    #[test]
    fn negated_constraints_flow_to_the_else_branch() {
        // In the else branch of (< x 0), x is ≥ 0 — expressible in the
        // Range facet (the flat Sign domain has no "non-negative" point),
        // so the nested identical test dies there.
        let src = "(define (f x) (if (< x 0) (neg x) (if (< x 0) (neg x) x)))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
        let r = OnlinePe::with_config(&p, &facets, with_constraints())
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        let printed = pretty_program(&r.program);
        // The nested conditional is gone: exactly one `if` remains and the
        // else branch collapsed to `x`.
        assert_eq!(printed.matches("(if").count(), 1, "{printed}");
        assert!(printed.contains("(if (< x 0) (neg x) x)"), "{printed}");
    }

    #[test]
    fn equality_constant_binds_the_variable() {
        let src = "(define (f x) (if (= x 5) (* x x) 0))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let r = OnlinePe::with_config(&p, &facets, with_constraints())
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        let printed = pretty_program(&r.program);
        assert!(printed.contains("(if (= x 5) 25 0)"), "{printed}");
    }

    #[test]
    fn range_constraints_narrow_intervals() {
        // After (< n 10) in the then branch, n ≤ 9; combined with the
        // input range n ≥ 0 the nested (< n 100) is decidable.
        let src = "(define (f n) (if (< n 10) (if (< n 100) 1 2) 3))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
        let r = OnlinePe::with_config(&p, &facets, with_constraints())
            .specialize_main(&[PeInput::dynamic().with_facet(
                "range",
                ppe_core::AbsVal::new(ppe_core::facets::RangeVal::at_least(0)),
            )])
            .unwrap();
        let printed = pretty_program(&r.program);
        assert!(printed.contains("(if (< n 10) 1 3)"), "{printed}");
    }

    #[test]
    fn boolean_variable_conditions_bind_in_branches() {
        let src = "(define (f b) (if b (if b 1 2) (if b 3 4)))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let r = OnlinePe::with_config(&p, &facets, with_constraints())
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        let printed = pretty_program(&r.program);
        assert!(printed.contains("(if b 1 4)"), "{printed}");
    }

    #[test]
    fn not_flips_the_outcome() {
        // (not (< x 0)) true ⇒ x ≥ 0 (a Range fact): the nested test
        // reduces to its else branch.
        let src = "(define (f x) (if (not (< x 0)) (if (< x 0) 1 2) 3))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(RangeFacet)]);
        let r = OnlinePe::with_config(&p, &facets, with_constraints())
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        let printed = pretty_program(&r.program);
        assert!(printed.contains("2"), "{printed}");
        assert!(!printed.contains("(if (< x 0) 1 2)"), "{printed}");
    }

    #[test]
    fn refined_residuals_stay_correct() {
        // Semantic check across inputs: constraints must never change
        // observable behaviour.
        let src = "(define (f x) (if (< x 0) (if (<= x 0) (neg x) -99) (if (>= x 0) x -77)))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(RangeFacet)]);
        let r = OnlinePe::with_config(&p, &facets, with_constraints())
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        for x in [-5i64, -1, 0, 1, 5] {
            let expected = Evaluator::new(&p).run_main(&[Value::Int(x)]).unwrap();
            let got = Evaluator::new(&r.program)
                .run_main(&[Value::Int(x)])
                .unwrap();
            assert_eq!(expected, got, "x = {x}");
        }
        // And the impossible branches are gone.
        let printed = pretty_program(&r.program);
        assert!(!printed.contains("-99"), "{printed}");
        assert!(!printed.contains("-77"), "{printed}");
    }

    #[test]
    fn constraints_off_by_default_preserves_figure_2_equivalence() {
        let src = "(define (f x) (if (= x 5) (* x x) 0))";
        let p = parse_program(src).unwrap();
        let facets = FacetSet::new();
        let r = OnlinePe::new(&p, &facets)
            .specialize_main(&[PeInput::dynamic()])
            .unwrap();
        // Without propagation the nested (* x x) stays dynamic.
        assert!(pretty_program(&r.program).contains("(* x x)"));
    }
}

#[cfg(test)]
mod consistency_tests {
    use super::*;
    use crate::input::PeInput;
    use ppe_core::facets::{ParityFacet, ParityVal, SignFacet, SignVal};
    use ppe_core::AbsVal;
    use ppe_lang::parse_program;

    #[test]
    fn inconsistent_inputs_are_rejected_when_checking() {
        // sign = zero ∧ parity = odd describes no integer.
        let p = parse_program("(define (f x) x)").unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(ParityFacet)]);
        let config = PeConfig {
            check_consistency: true,
            ..PeConfig::default()
        };
        let err = OnlinePe::with_config(&p, &facets, config)
            .specialize_main(&[PeInput::dynamic()
                .with_facet("sign", AbsVal::new(SignVal::Zero))
                .with_facet("parity", AbsVal::new(ParityVal::Odd))])
            .unwrap_err();
        assert!(matches!(err, PeError::InconsistentInput(_)), "{err:?}");
    }

    #[test]
    fn consistent_inputs_pass_the_check() {
        let p = parse_program("(define (f x) x)").unwrap();
        let facets = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(ParityFacet)]);
        let config = PeConfig {
            check_consistency: true,
            ..PeConfig::default()
        };
        OnlinePe::with_config(&p, &facets, config)
            .specialize_main(&[PeInput::dynamic()
                .with_facet("sign", AbsVal::new(SignVal::Pos))
                .with_facet("parity", AbsVal::new(ParityVal::Odd))])
            .unwrap();
    }
}
