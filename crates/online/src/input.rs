//! Inputs to and outputs of the online specializer.

use ppe_core::{AbsVal, FacetSet, ProductVal};
use ppe_lang::{Program, Value};

use crate::error::PeError;

/// Description of one program input for specialization.
///
/// Mirrors the paper's `PE_Prog` interface, which receives for each input
/// both a residual expression and a product of facet values: an input is
/// fully known, fully dynamic, or dynamic with facet information (the
/// paper's `⟨A, ⟨⊤_Values, 3⟩⟩` of Section 6.1).
///
/// # Examples
///
/// ```
/// use ppe_core::size_of;
/// use ppe_online::PeInput;
/// use ppe_lang::Value;
///
/// let known = PeInput::known(Value::Int(3));
/// let sized = PeInput::dynamic().with_facet("size", size_of(3));
/// assert!(matches!(known, PeInput::Known(_)));
/// assert!(matches!(sized, PeInput::Dynamic { .. }));
/// ```
#[derive(Clone, Debug)]
pub enum PeInput {
    /// The input's concrete value is available. First-order constants are
    /// propagated as constants; structured values (vectors) are propagated
    /// through the facets only — their PE component is `⊤` because they
    /// have no textual representation, exactly like the paper's vectors.
    Known(Value),
    /// The input is unknown, with optional facet refinements.
    Dynamic {
        /// Per-facet refinements: `(facet name, abstract value)`.
        refinements: Vec<(String, AbsVal)>,
    },
}

impl PeInput {
    /// A fully known input.
    pub fn known(v: Value) -> PeInput {
        PeInput::Known(v)
    }

    /// A fully dynamic input.
    pub fn dynamic() -> PeInput {
        PeInput::Dynamic {
            refinements: Vec::new(),
        }
    }

    /// Adds a facet refinement to a dynamic input (builder-style).
    ///
    /// # Panics
    ///
    /// Panics when called on a [`PeInput::Known`] input — a known value
    /// already determines every facet via `α̂`.
    #[must_use]
    pub fn with_facet(self, facet_name: &str, value: AbsVal) -> PeInput {
        match self {
            PeInput::Known(_) => {
                panic!("with_facet on a known input: facets are derived from the value")
            }
            PeInput::Dynamic { mut refinements } => {
                refinements.push((facet_name.to_owned(), value));
                PeInput::Dynamic { refinements }
            }
        }
    }

    /// Lowers the input to a product of facet values over `set`.
    ///
    /// # Errors
    ///
    /// Returns [`PeError::UnknownFacet`] if a refinement names a facet not
    /// in `set`.
    pub fn to_product(&self, set: &FacetSet) -> Result<ProductVal, PeError> {
        match self {
            PeInput::Known(v) => Ok(ProductVal::from_value(v, set)),
            PeInput::Dynamic { refinements } => {
                let mut out = ProductVal::dynamic(set);
                for (name, abs) in refinements {
                    let idx = set
                        .index_of(name)
                        .ok_or_else(|| PeError::UnknownFacet(name.clone()))?;
                    out = out.with_facet(idx, abs.clone());
                }
                Ok(out)
            }
        }
    }
}

/// Counters describing what the specializer did — the raw material for the
/// paper's efficiency discussion (Sections 1 and 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Primitive applications reduced to constants.
    pub reductions: u64,
    /// Primitive applications left residual.
    pub residual_prims: u64,
    /// Conditionals decided statically.
    pub static_branches: u64,
    /// Conditionals left residual (both branches specialized).
    pub dynamic_branches: u64,
    /// Function calls unfolded.
    pub unfolds: u64,
    /// Specialized function definitions created.
    pub specializations: u64,
    /// Calls folded onto an existing specialization.
    pub cache_hits: u64,
    /// Expression nodes processed.
    pub steps: u64,
}

/// The result of specialization: the residual program plus statistics.
#[derive(Clone, Debug)]
pub struct Residual {
    /// The residual program; its first definition is the specialized entry
    /// point (same name as the source entry, dynamic parameters only).
    pub program: Program,
    /// What happened during specialization.
    pub stats: PeStats,
    /// Which budgets tripped and were degraded (or, under
    /// [`crate::ExhaustionPolicy::Fail`], silently generalized — the
    /// unfold budget) while producing this residual. Empty on a fully
    /// within-budget run.
    pub report: crate::governor::DegradationReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_core::facets::{SignFacet, SignVal};
    use ppe_core::PeVal;
    use ppe_lang::Const;

    #[test]
    fn known_inputs_become_constant_products() {
        let set = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let p = PeInput::known(Value::Int(-2)).to_product(&set).unwrap();
        assert_eq!(*p.pe(), PeVal::Const(Const::Int(-2)));
        assert_eq!(p.facet(0).downcast_ref::<SignVal>(), Some(&SignVal::Neg));
    }

    #[test]
    fn known_vectors_have_dynamic_pe_component() {
        let set = FacetSet::with_facets(vec![Box::new(ppe_core::facets::SizeFacet)]);
        let v = Value::vector(vec![Value::Float(0.0); 3]);
        let p = PeInput::known(v).to_product(&set).unwrap();
        assert_eq!(*p.pe(), PeVal::Top);
        assert_eq!(p.facet(0).to_string(), "3");
    }

    #[test]
    fn refinements_land_in_the_right_component() {
        let set = FacetSet::with_facets(vec![Box::new(SignFacet)]);
        let p = PeInput::dynamic()
            .with_facet("sign", AbsVal::new(SignVal::Pos))
            .to_product(&set)
            .unwrap();
        assert_eq!(*p.pe(), PeVal::Top);
        assert_eq!(p.facet(0).downcast_ref::<SignVal>(), Some(&SignVal::Pos));
    }

    #[test]
    fn unknown_facet_is_an_error() {
        let set = FacetSet::new();
        let err = PeInput::dynamic()
            .with_facet("size", AbsVal::new(SignVal::Pos))
            .to_product(&set)
            .unwrap_err();
        assert_eq!(err, PeError::UnknownFacet("size".into()));
    }

    #[test]
    #[should_panic(expected = "known input")]
    fn refining_a_known_input_panics() {
        let _ = PeInput::known(Value::Int(1)).with_facet("sign", AbsVal::new(SignVal::Pos));
    }
}
