//! Errors raised by the partial evaluators.

use std::error::Error;
use std::fmt;

use ppe_lang::Symbol;

/// An error raised during specialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PeError {
    /// The subject program does not define the requested function.
    UnknownFunction(Symbol),
    /// The number of inputs does not match the function's arity.
    InputArity {
        /// The function being specialized.
        function: Symbol,
        /// Its declared arity.
        expected: usize,
        /// Number of inputs supplied.
        got: usize,
    },
    /// An input referenced a facet name not present in the facet set.
    UnknownFacet(String),
    /// The specialization cache outgrew
    /// [`crate::PeConfig::max_specializations`] — the specialization
    /// patterns do not stabilize.
    SpecializationLimit(usize),
    /// The work budget ([`crate::PeConfig::fuel`]) was exhausted — the
    /// specializer itself failed to terminate within bounds.
    OutOfFuel,
    /// An input's product of facet values is inconsistent (Definition 6):
    /// no concrete value satisfies all components at once.
    InconsistentInput(String),
    /// The residual program failed validation (an internal invariant).
    MalformedResidual(String),
    /// The wall-clock budget ([`crate::PeConfig::deadline`]) expired.
    DeadlineExceeded,
    /// The residual program outgrew
    /// [`crate::PeConfig::max_residual_size`] nodes.
    ResidualSizeLimit(usize),
    /// The specializer's recursion guard
    /// ([`crate::PeConfig::max_recursion_depth`]) fired — the structured
    /// stand-in for a native stack overflow.
    DepthLimit(u32),
}

impl fmt::Display for PeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeError::UnknownFunction(g) => write!(f, "unknown function `{g}`"),
            PeError::InputArity {
                function,
                expected,
                got,
            } => write!(f, "`{function}` expects {expected} inputs, got {got}"),
            PeError::UnknownFacet(name) => write!(f, "unknown facet `{name}`"),
            PeError::SpecializationLimit(n) => {
                write!(f, "specialization cache exceeded {n} entries")
            }
            PeError::OutOfFuel => f.write_str("specialization fuel exhausted"),
            PeError::InconsistentInput(what) => {
                write!(f, "inconsistent product of facet values for input: {what}")
            }
            PeError::MalformedResidual(msg) => {
                write!(f, "internal error: residual program is malformed: {msg}")
            }
            PeError::DeadlineExceeded => f.write_str("specialization deadline exceeded"),
            PeError::ResidualSizeLimit(n) => {
                write!(f, "residual program exceeded {n} expression nodes")
            }
            PeError::DepthLimit(n) => {
                write!(f, "specializer recursion depth exceeded {n}")
            }
        }
    }
}

impl Error for PeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            PeError::UnknownFacet("sign".into()).to_string(),
            "unknown facet `sign`"
        );
        assert!(PeError::OutOfFuel.to_string().contains("fuel"));
    }
}
