//! Specialization policy knobs.
//!
//! The paper abstracts the treatment of function calls behind `APP`
//! ("because this treatment vastly differs from one partial evaluator to
//! another", Section 2). [`PeConfig`] is our `APP` policy: when to unfold,
//! when to fold into a specialized function, and the budgets that keep the
//! process finite on programs whose static data does not decrease.
//!
//! The budgets are enforced by the [`crate::Governor`]; what happens when
//! one trips is decided by [`ExhaustionPolicy`].

use std::sync::Arc;
use std::time::Duration;

pub use crate::governor::ExhaustionPolicy;
use crate::spec_eval::SpecEvalBackend;

/// Policy and budgets for the partial evaluators.
///
/// # Examples
///
/// ```
/// use ppe_online::PeConfig;
///
/// let tight = PeConfig { max_unfold_depth: 8, ..PeConfig::default() };
/// assert!(tight.max_unfold_depth < PeConfig::default().max_unfold_depth);
/// ```
#[derive(Clone, Debug)]
pub struct PeConfig {
    /// Maximum call-unfolding depth. A call is unfolded when some argument
    /// carries static information; past this depth the arguments are
    /// generalized and the call is specialized (folded) instead.
    pub max_unfold_depth: u32,
    /// Upper bound on the number of distinct specialized functions; hitting
    /// it aborts with [`crate::PeError::SpecializationLimit`] rather than
    /// looping on an infinite family of specialization patterns.
    pub max_specializations: usize,
    /// Overall work budget (expression nodes processed); a stand-in for
    /// non-termination of the specializer itself.
    pub fuel: u64,
    /// Propagate constraints from residual conditional tests into the
    /// branches (the paper's Section 4.4 future work, after Redfun):
    /// inside `(if (< x 0) e₁ e₂)`, `x` is refined via each facet's
    /// [`ppe_core::Facet::assume`] in `e₁` (test true) and `e₂` (test
    /// false), and `(= x c)` binds `x` to `c` in the consequent.
    ///
    /// Off by default so that the parameterized evaluator with an empty
    /// facet set remains *exactly* the Figure 2 simple partial evaluator.
    pub propagate_constraints: bool,
    /// Check each input's product of facet values for *consistency*
    /// (Definition 6: the components must describe at least one common
    /// concrete value) before specializing, using the facets'
    /// concretizations over a candidate sample. The paper assumes programs
    /// are "always specialized with respect to consistent products"; this
    /// makes the assumption checkable.
    pub check_consistency: bool,
    /// Upper bound on the total size (expression nodes) of the residual
    /// program. Residual growth is accounted at function-completion
    /// points, so small overshoots (one function body) are possible.
    pub max_residual_size: usize,
    /// Wall-clock budget for the whole run, measured from construction of
    /// the run's [`crate::Governor`]. `None` (the default) disables the
    /// deadline. Checked every 256 ticks, so trips land well within a
    /// millisecond of the deadline.
    pub deadline: Option<Duration>,
    /// Hard cap on the specializer's own recursion depth (its native stack
    /// use), converting would-be stack overflows — an uncatchable abort —
    /// into structured [`crate::PeError::DepthLimit`] errors. The default
    /// is far above what default unfold budgets can reach but low enough
    /// to fire before native exhaustion on the stacks this workspace
    /// configures (see `.cargo/config.toml`).
    pub max_recursion_depth: u32,
    /// What to do when a budget trips: fail with a structured error, or
    /// degrade — generalize the offending work to fully-dynamic and finish
    /// with a sound residual plus a [`crate::DegradationReport`].
    pub on_exhaustion: ExhaustionPolicy,
    /// Optional accelerator for fully-static subterms: eligible subtrees
    /// (see [`crate::spec_eval`]) are lowered once and replayed on the
    /// backend instead of being re-folded by the tree walk, with identical
    /// residuals, budget accounting, and error classification. `None` (the
    /// default) keeps the pure tree walk; `ppe_vm::VmStaticEval` is the
    /// production backend.
    pub spec_eval: Option<Arc<dyn SpecEvalBackend>>,
}

impl Default for PeConfig {
    fn default() -> PeConfig {
        PeConfig {
            max_unfold_depth: 100,
            max_specializations: 4_096,
            fuel: 20_000_000,
            propagate_constraints: false,
            check_consistency: false,
            max_residual_size: 1 << 20,
            deadline: None,
            max_recursion_depth: 8_192,
            on_exhaustion: ExhaustionPolicy::Fail,
            spec_eval: None,
        }
    }
}
