//! Specialization policy knobs.
//!
//! The paper abstracts the treatment of function calls behind `APP`
//! ("because this treatment vastly differs from one partial evaluator to
//! another", Section 2). [`PeConfig`] is our `APP` policy: when to unfold,
//! when to fold into a specialized function, and the budgets that keep the
//! process finite on programs whose static data does not decrease.

/// Policy and budgets for the partial evaluators.
///
/// # Examples
///
/// ```
/// use ppe_online::PeConfig;
///
/// let tight = PeConfig { max_unfold_depth: 8, ..PeConfig::default() };
/// assert!(tight.max_unfold_depth < PeConfig::default().max_unfold_depth);
/// ```
#[derive(Clone, Debug)]
pub struct PeConfig {
    /// Maximum call-unfolding depth. A call is unfolded when some argument
    /// carries static information; past this depth the arguments are
    /// generalized and the call is specialized (folded) instead.
    pub max_unfold_depth: u32,
    /// Upper bound on the number of distinct specialized functions; hitting
    /// it aborts with [`crate::PeError::SpecializationLimit`] rather than
    /// looping on an infinite family of specialization patterns.
    pub max_specializations: usize,
    /// Overall work budget (expression nodes processed); a stand-in for
    /// non-termination of the specializer itself.
    pub fuel: u64,
    /// Propagate constraints from residual conditional tests into the
    /// branches (the paper's Section 4.4 future work, after Redfun):
    /// inside `(if (< x 0) e₁ e₂)`, `x` is refined via each facet's
    /// [`ppe_core::Facet::assume`] in `e₁` (test true) and `e₂` (test
    /// false), and `(= x c)` binds `x` to `c` in the consequent.
    ///
    /// Off by default so that the parameterized evaluator with an empty
    /// facet set remains *exactly* the Figure 2 simple partial evaluator.
    pub propagate_constraints: bool,
    /// Check each input's product of facet values for *consistency*
    /// (Definition 6: the components must describe at least one common
    /// concrete value) before specializing, using the facets'
    /// concretizations over a candidate sample. The paper assumes programs
    /// are "always specialized with respect to consistent products"; this
    /// makes the assumption checkable.
    pub check_consistency: bool,
}

impl Default for PeConfig {
    fn default() -> PeConfig {
        PeConfig {
            max_unfold_depth: 100,
            max_specializations: 4_096,
            fuel: 20_000_000,
            propagate_constraints: false,
            check_consistency: false,
        }
    }
}
