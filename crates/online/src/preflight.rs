//! Structural pre-flight checks the online engine can run before
//! specializing: the static counterpart of the [`Governor`]'s runtime
//! budgets.
//!
//! The classic online-PE failure mode is unbounded unfolding: a recursive
//! call the specializer keeps unfolding because nothing dynamic ever
//! forces it to residualize. At runtime the [`Governor`] catches this with
//! fuel and depth budgets; [`unguarded_recursion`] catches the *certain*
//! subset statically — recursion that is not guarded by any conditional
//! at all, so specialization (and plain evaluation) of it can never
//! terminate. The `ppe-analyze` crate builds its unfold-safety warnings on
//! this same function, so the engine and the analyzer agree on what
//! "structurally unbounded" means.
//!
//! [`Governor`]: crate::Governor

use std::collections::{HashMap, HashSet};

use ppe_lang::{Expr, Program, Symbol};

/// Returns every `(caller, callee)` pair where a call participating in a
/// call-graph cycle occurs *outside* every conditional branch of the
/// caller's body — i.e. the call is evaluated unconditionally, so the
/// recursion has no base case any engine could reach. Pairs are sorted by
/// spelling and deduplicated; an empty result means every recursion in
/// the program is at least conditionally guarded.
///
/// Only direct first-order calls are considered (higher-order call edges
/// through function values are invisible to this structural check; the
/// Governor remains the backstop for those).
///
/// # Examples
///
/// ```
/// use ppe_lang::parse_program;
/// use ppe_online::preflight::unguarded_recursion;
///
/// let looping = parse_program("(define (spin n) (spin (+ n 1)))")?;
/// assert_eq!(unguarded_recursion(&looping).len(), 1);
///
/// let fine = parse_program(
///     "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
/// )?;
/// assert!(unguarded_recursion(&fine).is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn unguarded_recursion(program: &Program) -> Vec<(Symbol, Symbol)> {
    // Direct-call adjacency.
    let mut edges: HashMap<Symbol, HashSet<Symbol>> = HashMap::new();
    for def in program.defs() {
        let callees = edges.entry(def.name).or_default();
        collect_calls(&def.body, callees);
    }
    // Reachability-based cycle membership: (f, g) lies on a cycle iff g is
    // reachable from f's callees *and* f is reachable from g. Programs are
    // small, so quadratic reachability is fine and keeps this dependency-
    // free.
    let reach: HashMap<Symbol, HashSet<Symbol>> =
        edges.keys().map(|&f| (f, reachable(f, &edges))).collect();
    let mut out = Vec::new();
    for def in program.defs() {
        let mut unguarded = HashSet::new();
        collect_unguarded_calls(&def.body, false, &mut unguarded);
        for g in unguarded {
            let on_cycle = reach
                .get(&g)
                .is_some_and(|from_g| from_g.contains(&def.name))
                || g == def.name;
            if on_cycle {
                out.push((def.name, g));
            }
        }
    }
    out.sort_by_key(|(f, g)| (f.to_string(), g.to_string()));
    out.dedup();
    out
}

/// All functions reachable from `f` by one or more call edges.
fn reachable(f: Symbol, edges: &HashMap<Symbol, HashSet<Symbol>>) -> HashSet<Symbol> {
    let mut seen = HashSet::new();
    let mut stack: Vec<Symbol> = edges
        .get(&f)
        .map(|s| s.iter().copied().collect())
        .unwrap_or_default();
    while let Some(g) = stack.pop() {
        if seen.insert(g) {
            if let Some(next) = edges.get(&g) {
                stack.extend(next.iter().copied());
            }
        }
    }
    seen
}

/// Every function directly called anywhere in `e`.
fn collect_calls(e: &Expr, out: &mut HashSet<Symbol>) {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => {}
        Expr::Prim(_, args) => args.iter().for_each(|a| collect_calls(a, out)),
        Expr::Call(f, args) => {
            out.insert(*f);
            args.iter().for_each(|a| collect_calls(a, out));
        }
        Expr::If(c, t, f) => {
            collect_calls(c, out);
            collect_calls(t, out);
            collect_calls(f, out);
        }
        Expr::Let(_, b, body) => {
            collect_calls(b, out);
            collect_calls(body, out);
        }
        Expr::Lambda(_, body) => collect_calls(body, out),
        Expr::App(f, args) => {
            collect_calls(f, out);
            args.iter().for_each(|a| collect_calls(a, out));
        }
    }
}

/// Functions called on a path that evaluates unconditionally (`guarded`
/// is true once we are inside a conditional *branch* — the test itself
/// always evaluates). Lambda bodies only run when applied, so they count
/// as guarded.
fn collect_unguarded_calls(e: &Expr, guarded: bool, out: &mut HashSet<Symbol>) {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => {}
        Expr::Prim(_, args) => args
            .iter()
            .for_each(|a| collect_unguarded_calls(a, guarded, out)),
        Expr::Call(f, args) => {
            if !guarded {
                out.insert(*f);
            }
            args.iter()
                .for_each(|a| collect_unguarded_calls(a, guarded, out));
        }
        Expr::If(c, t, f) => {
            collect_unguarded_calls(c, guarded, out);
            collect_unguarded_calls(t, true, out);
            collect_unguarded_calls(f, true, out);
        }
        Expr::Let(_, b, body) => {
            collect_unguarded_calls(b, guarded, out);
            collect_unguarded_calls(body, guarded, out);
        }
        Expr::Lambda(_, body) => collect_unguarded_calls(body, true, out),
        Expr::App(f, args) => {
            collect_unguarded_calls(f, guarded, out);
            args.iter()
                .for_each(|a| collect_unguarded_calls(a, guarded, out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::parse_program;

    #[test]
    fn self_loop_without_conditional_is_flagged() {
        let p = parse_program("(define (spin n) (spin (+ n 1)))").unwrap();
        let pairs = unguarded_recursion(&p);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.to_string(), "spin");
        assert_eq!(pairs[0].1.to_string(), "spin");
    }

    #[test]
    fn call_in_the_test_position_is_unguarded() {
        let p = parse_program("(define (f n) (if (f n) 1 2))").unwrap();
        assert_eq!(unguarded_recursion(&p).len(), 1);
    }

    #[test]
    fn guarded_recursion_is_clean() {
        let p =
            parse_program("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))").unwrap();
        assert!(unguarded_recursion(&p).is_empty());
    }

    #[test]
    fn mutual_unguarded_recursion_is_flagged_on_the_cycle_edge() {
        let p = parse_program(
            "(define (a n) (b (+ n 1)))
             (define (b n) (if (= n 0) 0 (a n)))",
        )
        .unwrap();
        // a calls b unguarded and a↔b form a cycle: flagged. b's call of a
        // is guarded: not flagged.
        let pairs = unguarded_recursion(&p);
        assert_eq!(pairs.len(), 1);
        assert_eq!(
            (pairs[0].0.to_string(), pairs[0].1.to_string()),
            ("a".to_string(), "b".to_string())
        );
    }

    #[test]
    fn acyclic_unconditional_calls_are_fine() {
        let p = parse_program(
            "(define (f x) (g x))
             (define (g x) (+ x 1))",
        )
        .unwrap();
        assert!(unguarded_recursion(&p).is_empty());
    }

    #[test]
    fn lambda_bodies_do_not_count_as_unconditional() {
        let p = parse_program("(define (f x) ((lambda (y) (f y)) x))").unwrap();
        // The direct recursion happens through an application of a lambda
        // whose body is only reached when applied; the structural check
        // stays conservative and does not flag it.
        assert!(unguarded_recursion(&p).is_empty());
    }
}
