//! The VM-backed static-evaluation shortcut: eligibility analysis and the
//! backend contract.
//!
//! When a specializer walk reaches a subterm it is about to evaluate
//! *fully statically* — every reachable primitive folds to a constant —
//! the tree walk re-derives that constant one `prim_product`/`Prim::eval`
//! at a time, allocating products along the way. Interpreter-style
//! workloads (the paper's Section 6 examples, the E8 bench) re-walk the
//! same source subterms once per unfolding, so the same static arithmetic
//! is re-derived thousands of times. The shortcut lowers such a subterm
//! to a `ppe-vm` chunk once — keyed by its hash-consed [`Term`]
//! fingerprint — and replays it on concrete [`Value`]s thereafter.
//!
//! # The lowering contract (what qualifies as "fully static")
//!
//! A subtree is *eligible* when it is built from `Const`, `Var`, `Let`,
//! and `Prim` nodes only, the primitives exclude the vector *creators*
//! (`mkvec`, `updvec`), and it contains at least one primitive. At a
//! particular visit it actually *fires* only if every free variable
//! reifies to a concrete first-order [`Value`] (see
//! [`ReifyCache`]) and the VM produces a first-order constant. On any
//! other outcome — a type error, an out-of-range index, a non-constant
//! result — the engine falls back to the tree walk, **uncharged**, which
//! is trivially identical to not having tried.
//!
//! Byte-identity of residuals between the two paths is inductive over
//! that grammar: a VM success means every primitive in the subtree
//! evaluated concretely to a defined value, and on such subtrees the
//! engines fold every primitive to exactly that value (the PE facet is
//! concrete evaluation; sound facets must agree with a defined concrete
//! result, Lemma 3). Conversely any subterm the walk would residualize
//! (a `⊥`-denoting primitive, a dynamic variable) makes the VM run fail
//! or the reification bail, so the walk runs unchanged. Budget parity is
//! exact as well: eligible subtrees have no branches, so the walk visits
//! exactly `size` nodes; the engine pre-checks that `size - 1` fuel
//! remains (else it falls back, reproducing the walk's trip point
//! bit-for-bit) and charges `size - 1` ticks through
//! [`crate::Governor::charge`] after a VM success.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;
use std::sync::Arc;

use ppe_core::facets::{ContentsVal, ElemVal};
use ppe_core::{FacetSet, PeVal, ProductVal};
use ppe_lang::{term::Term, Const, Expr, Prim, Symbol, Value};

/// An engine-pluggable evaluator for eligible static subtrees.
///
/// Implemented by `ppe_vm::VmStaticEval` (chunk-cached bytecode); the
/// trait lives here so `PeConfig` can carry a handle without inverting
/// the crate dependency order.
pub trait SpecEvalBackend: fmt::Debug + Send + Sync {
    /// Evaluates `body` with `params` bound positionally to `args`.
    ///
    /// `key` is the hash-consed fingerprint of `body` (see
    /// [`StaticSubtree::key`]); implementations use it to cache the
    /// lowered form. Returns `None` on *any* failure — compile trouble, a
    /// runtime error, an internal limit — in which case the engine takes
    /// the tree-walk path as if the call had never happened.
    fn eval(&self, key: u64, body: &Expr, params: &[Symbol], args: &[Value]) -> Option<Value>;
}

/// Per-run shortcut state an engine carries when a backend is installed:
/// the handle plus the eligibility memo and reification cache.
#[derive(Debug)]
pub struct SpecState {
    /// The installed backend (from [`crate::PeConfig::spec_eval`]).
    pub backend: Arc<dyn SpecEvalBackend>,
    /// Eligibility facts per source node.
    pub memo: SubtreeMemo,
    /// Vector reifications per product payload.
    pub reify: ReifyCache,
    /// Index of the `contents` facet in the run's facet set, when present
    /// — the only facet precise enough to reify a vector. Engines without
    /// products (simple, offline) leave it `None` and reify scalars only.
    pub contents_idx: Option<usize>,
    /// Reused argument buffer for backend calls. One attempt is live at a
    /// time, and eligible visits happen once per primitive the walk
    /// folds, so reusing the allocation matters.
    pub args_buf: Vec<Value>,
    /// Products of backend result constants, memoized per run.
    pub products: ConstProducts,
}

impl SpecState {
    /// Shortcut state for one specialization run.
    pub fn new(backend: Arc<dyn SpecEvalBackend>, contents_idx: Option<usize>) -> SpecState {
        SpecState {
            backend,
            memo: SubtreeMemo::new(),
            reify: ReifyCache::new(),
            contents_idx,
            args_buf: Vec::new(),
            products: ConstProducts::default(),
        }
    }
}

/// Per-run memo of the [`ProductVal`]s backend results abstract into.
/// Interpreter-style workloads fold the same constants (program counters,
/// opcodes, test outcomes) once per unfolding, and
/// [`ProductVal::from_const`] allocates a fresh product — with one
/// abstraction per facet — every time. Bounded; cleared wholesale on
/// overflow (products are pure functions of the constant and the run's
/// facet set, so eviction is only a performance event).
#[derive(Debug, Default)]
pub struct ConstProducts {
    map: HashMap<Const, ProductVal, BuildHasherDefault<AddrHasher>>,
}

impl ConstProducts {
    const CAP: usize = 4096;

    /// The product `c` abstracts into under `facets`, memoized.
    pub fn get_or_insert(&mut self, c: Const, facets: &FacetSet) -> ProductVal {
        if let Some(found) = self.map.get(&c) {
            return found.clone();
        }
        let out = ProductVal::from_const(c, facets);
        if self.map.len() >= ConstProducts::CAP {
            self.map.clear();
        }
        self.map.insert(c, out.clone());
        out
    }
}

/// Smallest eligible subtree worth shipping to the backend: `size 3` is
/// one binary primitive, already a net win once the chunk is warm
/// because a fold through the product machinery allocates where the VM
/// replay does not.
pub const MIN_SUBTREE_SIZE: u64 = 3;

/// Governor ticks a run must spend before the shortcut starts firing.
///
/// Firing is observationally invisible (same residual, same budget
/// accounting), so gating it on run length is sound; what it buys is that
/// micro-runs — which would pay per-node analysis and memo setup they can
/// never amortize — keep the plain tree walk. The threshold is calibrated
/// against the bench suite: the smallest workload (E1 `n = 4`) completes
/// in 84 ticks and so never engages the shortcut, while every other
/// suite run spends 300+ ticks and loses at most 96 ticks of coverage —
/// a few percent of its savings on the interpreter benches, which spend
/// thousands.
pub const WARMUP_TICKS: u64 = 96;

/// Structural facts about one eligible subtree, computed once per source
/// node and memoized by address (engines walk a borrowed `&Program`, so
/// node addresses are stable for the whole run).
#[derive(Debug)]
pub struct StaticSubtree {
    /// Free variables in first-occurrence order — the parameters of the
    /// lowered chunk.
    pub params: Vec<Symbol>,
    /// [`Term`] fingerprint of the subtree: the backend's cache key.
    pub key: u64,
    /// Node count: exactly the ticks the tree walk would spend on it.
    pub size: u64,
    /// Primitive applications inside: the walk's `reductions` delta.
    pub n_prims: u64,
}

/// Hasher for node-address and small scalar keys: one multiply–xor-shift
/// round per word. These memos are probed on every `Prim`/`Let` the walk
/// visits, so the default hasher's per-probe setup cost would tax the
/// whole specialization; a single multiply mixes an (aligned,
/// low-entropy) address or constant well enough for a bounded per-run
/// table.
#[derive(Default)]
pub struct AddrHasher(u64);

/// [`BuildHasherDefault`] alias for [`AddrHasher`]-keyed memos (the
/// offline engine keys its own shortcut memo on annotated-node
/// addresses).
pub type BuildAddrHasher = BuildHasherDefault<AddrHasher>;

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        let x = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Fold the high bits down: the table indexes with low bits.
        self.0 = x ^ (x >> 32);
    }

    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

impl fmt::Debug for AddrHasher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AddrHasher").field(&self.0).finish()
    }
}

/// Per-run memo of [`StaticSubtree`] facts, keyed by node address.
#[derive(Debug, Default)]
pub struct SubtreeMemo {
    map: HashMap<usize, Option<Rc<StaticSubtree>>, BuildHasherDefault<AddrHasher>>,
}

impl SubtreeMemo {
    /// An empty memo.
    pub fn new() -> SubtreeMemo {
        SubtreeMemo::default()
    }

    /// The eligibility facts for `e`, computed on first sight.
    pub fn info(&mut self, e: &Expr) -> Option<Rc<StaticSubtree>> {
        let at = e as *const Expr as usize;
        if let Some(found) = self.map.get(&at) {
            return found.clone();
        }
        let computed = analyze(e);
        self.map.insert(at, computed.clone());
        computed
    }
}

/// Checks the eligibility grammar and collects the subtree facts.
///
/// Public for engines that cannot memoize on `&Expr` addresses directly
/// (the offline walk keys on annotated nodes and analyzes the stripped
/// expression it builds for them).
pub fn analyze(e: &Expr) -> Option<Rc<StaticSubtree>> {
    let mut n_prims = 0u64;
    let mut stack = vec![e];
    while let Some(x) = stack.pop() {
        match x {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Prim(p, args) => {
                // Vector creators are excluded: their defined results are
                // not constants, so the walk keeps them residual while
                // the VM would happily compute past them.
                if matches!(p, Prim::MkVec | Prim::UpdVec) {
                    return None;
                }
                n_prims += 1;
                stack.extend(args.iter());
            }
            Expr::Let(_, bound, body) => {
                stack.push(bound);
                stack.push(body);
            }
            _ => return None,
        }
    }
    if n_prims == 0 {
        return None;
    }
    let size = e.size() as u64;
    if size < MIN_SUBTREE_SIZE {
        return None;
    }
    let mut params = Vec::new();
    e.free_vars(&mut params);
    let key = Term::from_expr(e).fingerprint();
    Some(Rc::new(StaticSubtree {
        params,
        key,
        size,
        n_prims,
    }))
}

/// How many reified vectors one run keeps by payload identity. E8-style
/// workloads thread a couple of static vectors (code, constants) through
/// every unfolding; each reifies once.
const REIFY_CACHE_SLOTS: usize = 8;

/// Memoized product → [`Value`] reification for *vector* products.
///
/// A dynamic variable whose contents facet is `Exact` with every element
/// `Known` denotes exactly one concrete vector; rebuilding it per
/// primitive would swamp the shortcut, so conversions are cached on
/// [`ProductVal::identity`] (products are immutable and shared by
/// reference count, so one payload reifies once per run).
#[derive(Debug, Default)]
pub struct ReifyCache {
    slots: Vec<(usize, Value)>,
}

impl ReifyCache {
    /// An empty cache.
    pub fn new() -> ReifyCache {
        ReifyCache::default()
    }

    /// The concrete vector `v` denotes, if its contents facet pins every
    /// element; `contents_idx` is the facet's index in the governing set.
    pub fn get_or_reify(&mut self, v: &ProductVal, contents_idx: usize) -> Option<Value> {
        let id = v.identity();
        if let Some((_, val)) = self.slots.iter().find(|(k, _)| *k == id) {
            return Some(val.clone());
        }
        let out = reify_vector(v, contents_idx)?;
        if self.slots.len() >= REIFY_CACHE_SLOTS {
            self.slots.remove(0);
        }
        self.slots.push((id, out.clone()));
        Some(out)
    }
}

fn reify_vector(v: &ProductVal, contents_idx: usize) -> Option<Value> {
    // `⊥` products denote no value; a constant product is scalar and is
    // reified from its residual, not here.
    if *v.pe() != PeVal::Top {
        return None;
    }
    match v.facet(contents_idx).downcast_ref::<ContentsVal>()? {
        ContentsVal::Exact(elems) => {
            let mut out = Vec::with_capacity(elems.len());
            for e in elems {
                match e {
                    ElemVal::Known(c) => out.push(Value::from_const(*c)),
                    ElemVal::Unknown => return None,
                }
            }
            Some(Value::vector(out))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_core::facets::ContentsFacet;
    use ppe_core::{AbsVal, FacetSet};
    use ppe_lang::parse_program;
    use ppe_lang::Const;

    fn body_of(src: &str) -> Expr {
        parse_program(src).unwrap().main().body.clone()
    }

    #[test]
    fn straight_line_arithmetic_is_eligible() {
        let e = body_of("(define (f x y) (+ (* x 2) (let ((t (- y 1))) (* t t))))");
        let mut memo = SubtreeMemo::new();
        let info = memo.info(&e).expect("eligible");
        assert_eq!(info.size, e.size() as u64);
        assert_eq!(info.n_prims, 4);
        assert_eq!(info.params, vec![Symbol::intern("x"), Symbol::intern("y")]);
        // Memo answers by address.
        let again = memo.info(&e).expect("memo hit");
        assert_eq!(again.key, info.key);
    }

    #[test]
    fn branches_calls_and_vector_creators_are_not() {
        for src in [
            "(define (f x) (if (< x 0) 0 x))",
            "(define (f x) (f (+ x 1)))",
            "(define (f x) (vsize (mkvec 3)))",
            "(define (f v i) (updvec v i 0))",
            "(define (f x) x)",       // no primitive
            "(define (f x) (neg x))", // below MIN_SUBTREE_SIZE? size 2
        ] {
            let e = body_of(src);
            assert!(SubtreeMemo::new().info(&e).is_none(), "{src}");
        }
    }

    #[test]
    fn vref_and_vsize_consumers_stay_eligible() {
        let e = body_of("(define (f v i) (+ (vref v i) (vsize v)))");
        let info = SubtreeMemo::new().info(&e).expect("eligible");
        assert_eq!(info.n_prims, 3);
    }

    #[test]
    fn shadowed_binders_are_not_params() {
        let e = body_of("(define (f x) (let ((y (+ x 1))) (* y y)))");
        let info = SubtreeMemo::new().info(&e).expect("eligible");
        assert_eq!(info.params, vec![Symbol::intern("x")]);
    }

    #[test]
    fn reify_cache_pins_fully_known_vectors() {
        let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
        let known = ProductVal::dynamic(&facets).with_facet(
            0,
            AbsVal::new(ContentsVal::known(vec![Const::Int(7), Const::Int(9)])),
        );
        let mut cache = ReifyCache::new();
        let v = cache.get_or_reify(&known, 0).expect("reifies");
        assert_eq!(v, Value::vector(vec![Value::Int(7), Value::Int(9)]));
        // Identity hit: same payload, same value.
        assert_eq!(cache.get_or_reify(&known, 0), Some(v));

        let fuzzy = ProductVal::dynamic(&facets)
            .with_facet(0, AbsVal::new(ContentsVal::Exact(vec![ElemVal::Unknown])));
        assert_eq!(cache.get_or_reify(&fuzzy, 0), None);
    }
}
