//! Online parameterized partial evaluation (Figure 3 of Consel & Khoo,
//! *Parameterized Partial Evaluation*, PLDI 1991), together with the
//! conventional simple partial evaluator of Figure 2 as an independently
//! implemented baseline.
//!
//! The online specializer threads triples `(residual expression,
//! product-of-facet-values, cache)` through the program. Constants produced
//! by *any* facet (via its open operators) reduce expressions; closed
//! operators propagate abstract values; the cache `Sf` folds repeated
//! specializations of the same function at the same abstract pattern.
//!
//! # Example: the paper's Section 6.1
//!
//! ```
//! use ppe_core::{facets::SizeFacet, size_of, FacetSet};
//! use ppe_lang::parse_program;
//! use ppe_online::{OnlinePe, PeInput};
//!
//! let program = parse_program(
//!     "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
//!      (define (dotprod a b n)
//!        (if (= n 0) 0.0
//!            (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
//! )?;
//! let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
//! let pe = OnlinePe::new(&program, &facets);
//! let residual = pe.specialize_main(&[
//!     PeInput::dynamic().with_facet("size", size_of(3)),
//!     PeInput::dynamic().with_facet("size", size_of(3)),
//! ])?;
//! // Fully unrolled — Figure 8 of the paper: no residual recursion.
//! assert_eq!(residual.program.defs().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod governor;
mod input;
mod online;
pub mod preflight;
mod simple;
pub mod spec_eval;

pub use config::PeConfig;
pub use error::PeError;
pub use governor::{Budget, DegradationEvent, DegradationReport, ExhaustionPolicy, Governor};
pub use input::{PeInput, PeStats, Residual};
pub use online::OnlinePe;
pub use simple::{SimpleInput, SimplePe};
pub use spec_eval::SpecEvalBackend;
