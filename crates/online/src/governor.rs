//! Unified resource governance for the specializers.
//!
//! The paper's online specializer (Figure 3) is not guaranteed to
//! terminate; the engines therefore run under budgets. Before this module
//! each budget was threaded ad hoc (a `fuel` counter here, an unfold
//! `depth` there) and every trip was a hard failure that threw away all
//! specialization work done so far. The [`Governor`] centralizes the
//! budgets — fuel, wall-clock deadline, unfold depth, specialization-cache
//! size, residual size, and native recursion depth — behind one `tick()` /
//! `check` API, and supports two exhaustion policies:
//!
//! - [`ExhaustionPolicy::Fail`] (the default): a tripped budget aborts
//!   specialization with the corresponding [`PeError`], exactly as before;
//! - [`ExhaustionPolicy::Degrade`]: a tripped budget *generalizes* instead
//!   — remaining calls are treated as fully dynamic (no more unfolding, all
//!   specialization patterns widened to ⊤), so the engine always completes
//!   with a correct, if less specialized, residual program. This is the
//!   termination-insurance reading of generalization from the
//!   specialization literature (Gallagher & Glück): degrade precision, not
//!   availability.
//!
//! Every degradation is recorded in a [`DegradationReport`] returned with
//! the residual, so callers can see which budget tripped, where, and how
//! often.

use std::fmt;
use std::time::{Duration, Instant};

use ppe_lang::Symbol;

use crate::config::PeConfig;
use crate::error::PeError;

/// What to do when a resource budget is exhausted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExhaustionPolicy {
    /// Abort specialization with a structured error (classic behavior).
    #[default]
    Fail,
    /// Generalize the offending work to fully-dynamic and keep going:
    /// specialization always completes with a sound residual, and the
    /// degradations are listed in the [`DegradationReport`].
    Degrade,
}

/// The budget that tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Budget {
    /// The work budget ([`PeConfig::fuel`]).
    Fuel,
    /// The wall-clock deadline ([`PeConfig::deadline`]).
    Deadline,
    /// The unfold-depth budget ([`PeConfig::max_unfold_depth`]): a call
    /// with static information was generalized instead of unfolded.
    UnfoldDepth,
    /// The specialization-cache cap ([`PeConfig::max_specializations`]).
    SpecializationCache,
    /// The residual-size cap ([`PeConfig::max_residual_size`]).
    ResidualSize,
    /// The specializer's own recursion-depth guard
    /// ([`PeConfig::max_recursion_depth`]), which converts would-be native
    /// stack overflows into structured outcomes.
    RecursionDepth,
    /// A shared residual-cache byte budget (the `ppe-server` sharded
    /// cache): the residual was computed correctly but was too large to
    /// retain, so future identical requests pay recomputation instead of
    /// a hit. A capacity degradation, not a precision one.
    CacheBytes,
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Budget::Fuel => "fuel",
            Budget::Deadline => "deadline",
            Budget::UnfoldDepth => "unfold depth",
            Budget::SpecializationCache => "specialization cache",
            Budget::ResidualSize => "residual size",
            Budget::RecursionDepth => "recursion depth",
            Budget::CacheBytes => "cache bytes",
        })
    }
}

/// One kind of degradation that happened during specialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Which budget tripped.
    pub budget: Budget,
    /// The function being processed when it first tripped, when known.
    pub function: Option<Symbol>,
    /// The unfold depth at the first trip.
    pub depth: u32,
    /// How many times this (budget, function) pair tripped.
    pub count: u64,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} budget tripped", self.budget)?;
        if let Some(function) = self.function {
            write!(f, " at `{function}`")?;
        }
        write!(f, " (unfold depth {})", self.depth)?;
        if self.count > 1 {
            write!(f, " ×{}", self.count)?;
        }
        Ok(())
    }
}

/// Everything that was degraded to keep specialization going.
///
/// Empty when no budget tripped (or when running under
/// [`ExhaustionPolicy::Fail`], where the first trip is an error instead).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// `true` when no degradation happened.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct (budget, function) degradations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The recorded events, in first-trip order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// `true` if some event tripped `budget`.
    pub fn tripped(&self, budget: Budget) -> bool {
        self.events.iter().any(|e| e.budget == budget)
    }

    /// Appends `other`'s events, merging duplicates by (budget, function).
    /// Used by multi-phase pipelines (analysis then specialization) to
    /// return one combined report.
    pub fn merge(&mut self, other: &DegradationReport) {
        for e in &other.events {
            if let Some(mine) = self
                .events
                .iter_mut()
                .find(|m| m.budget == e.budget && m.function == e.function)
            {
                mine.count += e.count;
            } else {
                self.events.push(e.clone());
            }
        }
    }

    /// Records an externally observed degradation (merging with an
    /// existing event for the same budget and function). Service layers
    /// that sit above one specialization run — the `ppe-server` batch and
    /// serve drivers — use this to fold per-request events such as
    /// [`Budget::CacheBytes`] into the report that travels back with the
    /// response, instead of losing them on worker threads.
    pub fn push(&mut self, event: DegradationEvent) {
        if let Some(mine) = self
            .events
            .iter_mut()
            .find(|m| m.budget == event.budget && m.function == event.function)
        {
            mine.count += event.count;
            return;
        }
        self.events.push(event);
    }

    fn record(&mut self, budget: Budget, function: Option<Symbol>, depth: u32) {
        if let Some(e) = self
            .events
            .iter_mut()
            .find(|e| e.budget == budget && e.function == function)
        {
            e.count += 1;
            return;
        }
        self.events.push(DegradationEvent {
            budget,
            function,
            depth,
            count: 1,
        });
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return f.write_str("no degradation");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// How often `tick()` consults the wall clock: every 256 ticks. Ticks are
/// sub-microsecond, so a deadline overshoots by well under a millisecond.
const DEADLINE_CHECK_MASK: u64 = 0xFF;

/// Centralized budget accounting for one specialization run.
///
/// Shared by the online engines ([`crate::OnlinePe`], [`crate::SimplePe`])
/// and re-used by the offline pipeline (`ppe-offline`). The evaluator in
/// `ppe-lang` mirrors the same guards natively (it sits below this crate in
/// the dependency order and cannot import it).
#[derive(Debug)]
pub struct Governor {
    policy: ExhaustionPolicy,
    fuel: u64,
    deadline: Option<Instant>,
    ticks: u64,
    max_residual_size: usize,
    residual_size: usize,
    max_recursion_depth: u32,
    recursion_depth: u32,
    /// Degrade mode only: set on a global trip (fuel, deadline, residual
    /// size, or the recursion soft limit). Once set, `may_unfold` answers
    /// `false` and callers generalize every new specialization pattern, so
    /// the run winds down along structural recursion alone.
    exhausted: bool,
    report: DegradationReport,
}

impl Governor {
    /// A governor for one run under `config`. The wall-clock deadline, if
    /// any, starts now.
    pub fn new(config: &PeConfig) -> Governor {
        Governor {
            policy: config.on_exhaustion,
            fuel: config.fuel,
            deadline: config.deadline.map(|d| Instant::now() + d),
            ticks: 0,
            max_residual_size: config.max_residual_size,
            residual_size: 0,
            max_recursion_depth: config.max_recursion_depth,
            recursion_depth: 0,
            exhausted: false,
            report: DegradationReport::default(),
        }
    }

    /// The active exhaustion policy.
    pub fn policy(&self) -> ExhaustionPolicy {
        self.policy
    }

    /// `true` once a global budget has tripped under
    /// [`ExhaustionPolicy::Degrade`]: callers must stop unfolding and
    /// generalize new specialization patterns.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Spend one unit of work. Checks fuel on every call and the deadline
    /// every 256 calls.
    ///
    /// # Errors
    ///
    /// Under [`ExhaustionPolicy::Fail`], [`PeError::OutOfFuel`] /
    /// [`PeError::DeadlineExceeded`] when the corresponding budget is
    /// exhausted. Under [`ExhaustionPolicy::Degrade`] this never fails; the
    /// trip is recorded and [`Governor::is_exhausted`] starts answering
    /// `true`.
    pub fn tick(&mut self) -> Result<(), PeError> {
        self.ticks += 1;
        if self.fuel == 0 {
            self.trip_global(Budget::Fuel, PeError::OutOfFuel)?;
        } else {
            self.fuel -= 1;
        }
        if self.ticks & DEADLINE_CHECK_MASK == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Fuel this governor has left. Lets downstream execution tiers (the
    /// bytecode VM's `VmOptions::from_governor`) inherit the unspent work
    /// budget of the run that produced a residual.
    pub fn remaining_fuel(&self) -> u64 {
        self.fuel
    }

    /// Spend `n` units of work as `n` consecutive [`Governor::tick`]s.
    ///
    /// The VM-backed static-evaluation shortcut uses this to charge the
    /// work the AST walk *would* have spent on the subtree it skipped, so
    /// fuel accounting (including the periodic deadline probes and the
    /// exact tick at which a budget trips) is bit-identical to the tree
    /// walk under both exhaustion policies.
    ///
    /// # Errors
    ///
    /// As for [`Governor::tick`], at the exact tick the walk would have
    /// tripped.
    pub fn charge(&mut self, n: u64) -> Result<(), PeError> {
        for _ in 0..n {
            self.tick()?;
        }
        Ok(())
    }

    /// `true` when `extra` further recursion levels stay strictly below
    /// the Degrade-mode soft-trip threshold (three quarters of
    /// [`PeConfig::max_recursion_depth`]) — and hence also below the hard
    /// limit. The VM shortcut only fires with this headroom, so skipping
    /// the subtree walk can never skip a recursion-guard transition the
    /// walk would have made.
    pub fn recursion_headroom(&self, extra: u32) -> bool {
        self.recursion_depth.saturating_add(extra) < self.max_recursion_depth / 4 * 3
    }

    /// Wall-clock allowance this governor has left, if a deadline is set:
    /// `Some(Duration::ZERO)` once the deadline has passed, `None` when no
    /// deadline was configured. The downstream-budget companion of
    /// [`Governor::remaining_fuel`].
    pub fn remaining_deadline(&self) -> Option<Duration> {
        self.deadline
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Check the wall-clock deadline immediately (used at coarse-grained
    /// boundaries like analysis-fixpoint iterations, where per-node ticks
    /// are not available).
    ///
    /// # Errors
    ///
    /// As for [`Governor::tick`].
    pub fn check_deadline(&mut self) -> Result<(), PeError> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip_global(Budget::Deadline, PeError::DeadlineExceeded)?;
            }
        }
        Ok(())
    }

    /// Whether a call at `depth` may be unfolded. Answers `false` — and
    /// records the generalization — past the unfold budget or once the
    /// governor is exhausted.
    pub fn may_unfold(&mut self, depth: u32, max_unfold_depth: u32, function: Symbol) -> bool {
        if self.exhausted {
            return false;
        }
        if depth >= max_unfold_depth {
            self.report
                .record(Budget::UnfoldDepth, Some(function), depth);
            return false;
        }
        true
    }

    /// Whether a fresh specialization's pattern must be generalized to
    /// fully dynamic (past the unfold budget, or exhausted).
    pub fn must_generalize(&self, depth: u32, max_unfold_depth: u32) -> bool {
        self.exhausted || depth >= max_unfold_depth
    }

    /// The specialization cache is full and `function` wants a new entry.
    ///
    /// # Errors
    ///
    /// Under [`ExhaustionPolicy::Fail`],
    /// [`PeError::SpecializationLimit`]. Under
    /// [`ExhaustionPolicy::Degrade`] the trip is recorded and the caller
    /// retries with a generalized pattern (generalized entries are admitted
    /// past the cap — they are bounded by the number of source functions).
    pub fn cache_full(&mut self, limit: usize, function: Symbol) -> Result<(), PeError> {
        match self.policy {
            ExhaustionPolicy::Fail => Err(PeError::SpecializationLimit(limit)),
            ExhaustionPolicy::Degrade => {
                self.report
                    .record(Budget::SpecializationCache, Some(function), 0);
                Ok(())
            }
        }
    }

    /// Account `nodes` residual nodes produced while specializing
    /// `function` (consulted at function-completion points).
    ///
    /// # Errors
    ///
    /// Under [`ExhaustionPolicy::Fail`], [`PeError::ResidualSizeLimit`]
    /// once the total exceeds the cap. Under [`ExhaustionPolicy::Degrade`]
    /// the governor becomes exhausted instead, so remaining work stops
    /// inflating the residual.
    pub fn add_residual_size(&mut self, nodes: usize, function: Symbol) -> Result<(), PeError> {
        self.residual_size = self.residual_size.saturating_add(nodes);
        if self.residual_size > self.max_residual_size {
            match self.policy {
                ExhaustionPolicy::Fail => {
                    return Err(PeError::ResidualSizeLimit(self.max_residual_size))
                }
                ExhaustionPolicy::Degrade => {
                    if !self.exhausted {
                        self.exhausted = true;
                        self.report.record(Budget::ResidualSize, Some(function), 0);
                    }
                }
            }
        }
        Ok(())
    }

    /// Enter one level of specializer recursion; pair with
    /// [`Governor::exit_recursion`].
    ///
    /// Under [`ExhaustionPolicy::Degrade`], crossing three quarters of the
    /// limit marks the governor exhausted (unfolding stops, so the
    /// recursion unwinds with headroom to spare). Reaching the limit itself
    /// is a hard [`PeError::DepthLimit`] under either policy — the
    /// alternative is a native stack overflow, which no policy can recover.
    ///
    /// # Errors
    ///
    /// [`PeError::DepthLimit`] at the hard limit.
    pub fn enter_recursion(&mut self) -> Result<(), PeError> {
        self.recursion_depth += 1;
        if self.recursion_depth >= self.max_recursion_depth {
            return Err(PeError::DepthLimit(self.max_recursion_depth));
        }
        if self.policy == ExhaustionPolicy::Degrade
            && !self.exhausted
            && self.recursion_depth >= self.max_recursion_depth / 4 * 3
        {
            self.exhausted = true;
            self.report.record(Budget::RecursionDepth, None, 0);
        }
        Ok(())
    }

    /// Leave one level of specializer recursion.
    pub fn exit_recursion(&mut self) {
        self.recursion_depth = self.recursion_depth.saturating_sub(1);
    }

    /// Total ticks spent so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Consume the governor, yielding the degradation report.
    pub fn into_report(self) -> DegradationReport {
        self.report
    }

    /// Trip a global budget: error under `Fail`, exhaust-and-record under
    /// `Degrade` (recorded once — repeated trips of an already-exhausted
    /// governor are silent).
    fn trip_global(&mut self, budget: Budget, error: PeError) -> Result<(), PeError> {
        match self.policy {
            ExhaustionPolicy::Fail => Err(error),
            ExhaustionPolicy::Degrade => {
                if !self.exhausted {
                    self.exhausted = true;
                    self.report.record(budget, None, 0);
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config(policy: ExhaustionPolicy) -> PeConfig {
        PeConfig {
            on_exhaustion: policy,
            ..PeConfig::default()
        }
    }

    #[test]
    fn fail_mode_errors_when_fuel_runs_out() {
        let mut gov = Governor::new(&PeConfig {
            fuel: 3,
            ..config(ExhaustionPolicy::Fail)
        });
        assert!(gov.tick().is_ok());
        assert!(gov.tick().is_ok());
        assert!(gov.tick().is_ok());
        assert_eq!(gov.tick(), Err(PeError::OutOfFuel));
    }

    #[test]
    fn degrade_mode_exhausts_instead_of_failing() {
        let mut gov = Governor::new(&PeConfig {
            fuel: 1,
            ..config(ExhaustionPolicy::Degrade)
        });
        assert!(gov.tick().is_ok());
        assert!(!gov.is_exhausted());
        assert!(gov.tick().is_ok());
        assert!(gov.is_exhausted());
        // Recorded exactly once, even after more ticks.
        assert!(gov.tick().is_ok());
        let report = gov.into_report();
        assert_eq!(report.len(), 1);
        assert!(report.tripped(Budget::Fuel));
    }

    #[test]
    fn deadline_is_checked_periodically() {
        let mut gov = Governor::new(&PeConfig {
            deadline: Some(Duration::ZERO),
            ..config(ExhaustionPolicy::Fail)
        });
        let mut tripped = false;
        for _ in 0..=256 {
            if gov.tick() == Err(PeError::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(
            tripped,
            "an already-expired deadline must trip within 256 ticks"
        );
    }

    #[test]
    fn unfold_budget_records_generalizations() {
        let mut gov = Governor::new(&config(ExhaustionPolicy::Fail));
        let f = Symbol::intern("f");
        assert!(gov.may_unfold(0, 4, f));
        assert!(!gov.may_unfold(4, 4, f));
        assert!(!gov.may_unfold(9, 4, f));
        let report = gov.into_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report.events()[0].count, 2);
        assert!(report.tripped(Budget::UnfoldDepth));
    }

    #[test]
    fn recursion_guard_soft_trips_then_hard_errors() {
        let mut gov = Governor::new(&PeConfig {
            max_recursion_depth: 8,
            ..config(ExhaustionPolicy::Degrade)
        });
        let mut result = Ok(());
        for _ in 0..8 {
            result = gov.enter_recursion();
            if result.is_err() {
                break;
            }
        }
        assert_eq!(result, Err(PeError::DepthLimit(8)));
        assert!(gov.is_exhausted(), "soft trip precedes the hard limit");
    }

    #[test]
    fn residual_size_cap_degrades_or_fails_by_policy() {
        let f = Symbol::intern("f");
        let mut strict = Governor::new(&PeConfig {
            max_residual_size: 10,
            ..config(ExhaustionPolicy::Fail)
        });
        assert!(strict.add_residual_size(10, f).is_ok());
        assert_eq!(
            strict.add_residual_size(1, f),
            Err(PeError::ResidualSizeLimit(10))
        );

        let mut soft = Governor::new(&PeConfig {
            max_residual_size: 10,
            ..config(ExhaustionPolicy::Degrade)
        });
        assert!(soft.add_residual_size(11, f).is_ok());
        assert!(soft.is_exhausted());
        assert!(soft.into_report().tripped(Budget::ResidualSize));
    }

    #[test]
    fn report_display_lists_events() {
        let mut report = DegradationReport::default();
        assert_eq!(report.to_string(), "no degradation");
        report.record(Budget::Fuel, None, 0);
        report.record(Budget::UnfoldDepth, Some(Symbol::intern("g")), 7);
        report.record(Budget::UnfoldDepth, Some(Symbol::intern("g")), 9);
        let text = report.to_string();
        assert!(text.contains("fuel budget tripped"), "{text}");
        assert!(text.contains("`g`"), "{text}");
        assert!(text.contains("×2"), "{text}");
    }
}
