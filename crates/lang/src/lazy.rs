//! A call-by-need evaluator for the first-order fragment.
//!
//! The paper closes with "we are also looking into parameterized partial
//! evaluation for a lazy language" (Section 7). This module provides the
//! substrate for that direction: a lazy (call-by-need) standard semantics
//! against which a lazy specializer could be validated. It exists so the
//! workspace can *observe* the semantic differences that make lazy partial
//! evaluation different — unused diverging arguments, unused failing
//! bindings, and sharing — and test them.
//!
//! The lazy semantics differs from Figure 1 exactly where the specializer
//! cares:
//!
//! - function arguments and `let` bindings are delayed (thunks) and
//!   memoized on first force — so the online specializer's let-insertion
//!   discipline (which preserves *strict* argument evaluation) would be
//!   wrong here, and the `Safe` optimizer level could drop unused `let`s
//!   unconditionally;
//! - primitives remain strict in all arguments;
//! - only the first-order fragment is supported (the paper's Figure 1
//!   language); higher-order forms report [`EvalError::Unsupported`].

use std::cell::RefCell;
use std::rc::Rc;

use crate::ast::Expr;
use crate::error::EvalError;
use crate::program::Program;
use crate::symbol::Symbol;
use crate::value::Value;

/// A delayed computation, memoized on first force.
enum Thunk {
    Delayed(Expr, LazyEnv),
    /// Being forced right now — re-entry means a cyclic dependency, which
    /// denotes ⊥ (reported as fuel-free divergence).
    InProgress,
    Forced(Value),
}

type ThunkRef = Rc<RefCell<Thunk>>;

/// Environment of thunks.
#[derive(Clone, Default)]
struct LazyEnv(Option<Rc<LazyNode>>);

struct LazyNode {
    name: Symbol,
    thunk: ThunkRef,
    rest: Option<Rc<LazyNode>>,
}

impl LazyEnv {
    fn bind(&self, name: Symbol, thunk: ThunkRef) -> LazyEnv {
        LazyEnv(Some(Rc::new(LazyNode {
            name,
            thunk,
            rest: self.0.clone(),
        })))
    }

    fn lookup(&self, name: Symbol) -> Option<ThunkRef> {
        let mut node = self.0.as_deref();
        while let Some(n) = node {
            if n.name == name {
                return Some(Rc::clone(&n.thunk));
            }
            node = n.rest.as_deref();
        }
        None
    }
}

/// A call-by-need evaluator for first-order programs.
///
/// # Examples
///
/// ```
/// use ppe_lang::{parse_program, LazyEvaluator, Value};
///
/// // `loop` diverges, but lazily its result is never needed.
/// let p = parse_program(
///     "(define (main x) (first x (loop x)))
///      (define (first a b) a)
///      (define (loop n) (loop n))",
/// )?;
/// let mut ev = LazyEvaluator::new(&p);
/// assert_eq!(ev.run_main(&[Value::Int(5)])?, Value::Int(5));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct LazyEvaluator<'p> {
    program: &'p Program,
    fuel: u64,
    initial_fuel: u64,
    depth: u32,
    max_depth: u32,
}

impl<'p> LazyEvaluator<'p> {
    /// Creates a lazy evaluator with the default budgets.
    pub fn new(program: &'p Program) -> LazyEvaluator<'p> {
        LazyEvaluator::with_fuel(program, crate::eval::DEFAULT_FUEL)
    }

    /// Creates a lazy evaluator with an explicit fuel budget.
    pub fn with_fuel(program: &'p Program, fuel: u64) -> LazyEvaluator<'p> {
        LazyEvaluator {
            program,
            fuel,
            initial_fuel: fuel,
            depth: 0,
            max_depth: crate::eval::DEFAULT_MAX_DEPTH,
        }
    }

    /// Sets the call-depth limit.
    pub fn set_max_depth(&mut self, max_depth: u32) {
        self.max_depth = max_depth;
    }

    /// Number of function applications consumed by the last run — under
    /// call-by-need this also witnesses *sharing* (a binding forced twice
    /// costs its applications once).
    pub fn fuel_used(&self) -> u64 {
        self.initial_fuel - self.fuel
    }

    /// Runs the main function on (eagerly supplied) argument values.
    ///
    /// # Errors
    ///
    /// As the strict evaluator, plus [`EvalError::Unsupported`] for
    /// higher-order forms.
    pub fn run_main(&mut self, args: &[Value]) -> Result<Value, EvalError> {
        self.fuel = self.initial_fuel;
        self.depth = 0;
        let main = self.program.main();
        if main.arity() != args.len() {
            return Err(EvalError::Arity {
                function: main.name,
                expected: main.arity(),
                got: args.len(),
            });
        }
        let mut env = LazyEnv::default();
        for (p, v) in main.params.iter().zip(args) {
            env = env.bind(*p, Rc::new(RefCell::new(Thunk::Forced(v.clone()))));
        }
        let body = main.body.clone();
        self.eval(&body, &env)
    }

    fn force(&mut self, thunk: &ThunkRef) -> Result<Value, EvalError> {
        // Fast path: already forced.
        {
            let borrowed = thunk.borrow();
            match &*borrowed {
                Thunk::Forced(v) => return Ok(v.clone()),
                Thunk::InProgress => return Err(EvalError::OutOfFuel), // cyclic: ⊥
                Thunk::Delayed(..) => {}
            }
        }
        let (expr, env) = {
            let mut borrowed = thunk.borrow_mut();
            match std::mem::replace(&mut *borrowed, Thunk::InProgress) {
                Thunk::Delayed(e, env) => (e, env),
                other => {
                    *borrowed = other;
                    unreachable!("checked above");
                }
            }
        };
        let result = self.eval(&expr, &env);
        match &result {
            Ok(v) => *thunk.borrow_mut() = Thunk::Forced(v.clone()),
            Err(_) => {
                // Re-forcing a failed thunk re-raises by re-evaluating.
                *thunk.borrow_mut() = Thunk::Delayed(expr, env);
            }
        }
        result
    }

    fn eval(&mut self, e: &Expr, env: &LazyEnv) -> Result<Value, EvalError> {
        match e {
            Expr::Const(c) => Ok(Value::from_const(*c)),
            Expr::Var(x) => {
                let thunk = env.lookup(*x).ok_or(EvalError::UnboundVar(*x))?;
                self.force(&thunk)
            }
            Expr::Prim(p, args) => {
                // Primitives are strict.
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                p.eval(&vals)
            }
            Expr::If(c, t, f) => match self.eval(c, env)? {
                Value::Bool(true) => self.eval(t, env),
                Value::Bool(false) => self.eval(f, env),
                _ => Err(EvalError::NonBoolCondition),
            },
            Expr::Let(x, b, body) => {
                let thunk = Rc::new(RefCell::new(Thunk::Delayed((**b).clone(), env.clone())));
                let inner = env.bind(*x, thunk);
                self.eval(body, &inner)
            }
            Expr::Call(f, args) => {
                let def = self
                    .program
                    .lookup(*f)
                    .ok_or(EvalError::UnknownFunction(*f))?;
                if def.arity() != args.len() {
                    return Err(EvalError::Arity {
                        function: *f,
                        expected: def.arity(),
                        got: args.len(),
                    });
                }
                if self.fuel == 0 {
                    return Err(EvalError::OutOfFuel);
                }
                self.fuel -= 1;
                if self.depth >= self.max_depth {
                    return Err(EvalError::DepthExceeded);
                }
                self.depth += 1;
                let mut inner = LazyEnv::default();
                for (p, a) in def.params.iter().zip(args) {
                    let thunk = Rc::new(RefCell::new(Thunk::Delayed(a.clone(), env.clone())));
                    inner = inner.bind(*p, thunk);
                }
                let body = def.body.clone();
                let out = self.eval(&body, &inner);
                self.depth -= 1;
                out
            }
            Expr::Lambda(..) | Expr::App(..) | Expr::FnRef(_) => Err(EvalError::Unsupported(
                "higher-order forms under call-by-need",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::parser::parse_program;

    fn lazy(src: &str, args: &[Value]) -> Result<Value, EvalError> {
        let p = parse_program(src).unwrap();
        LazyEvaluator::with_fuel(&p, 100_000).run_main(args)
    }

    fn strict(src: &str, args: &[Value]) -> Result<Value, EvalError> {
        let p = parse_program(src).unwrap();
        Evaluator::with_fuel(&p, 100_000).run_main(args)
    }

    #[test]
    fn agrees_with_strict_on_total_programs() {
        for (src, args, expected) in [
            (
                "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
                vec![Value::Int(5)],
                Value::Int(120),
            ),
            (
                "(define (f x) (let ((a (+ x 1))) (* a a)))",
                vec![Value::Int(3)],
                Value::Int(16),
            ),
        ] {
            assert_eq!(lazy(src, &args).unwrap(), expected);
            assert_eq!(strict(src, &args).unwrap(), expected);
        }
    }

    #[test]
    fn unused_diverging_argument_is_ignored() {
        let src = "(define (main x) (first x (loop x)))
                   (define (first a b) a)
                   (define (loop n) (loop n))";
        assert_eq!(lazy(src, &[Value::Int(9)]).unwrap(), Value::Int(9));
        // Strictly, the same program diverges.
        assert!(strict(src, &[Value::Int(9)]).is_err());
    }

    #[test]
    fn unused_failing_let_is_ignored() {
        let src = "(define (f x) (let ((boom (/ x 0))) 42))";
        assert_eq!(lazy(src, &[Value::Int(1)]).unwrap(), Value::Int(42));
        assert_eq!(
            strict(src, &[Value::Int(1)]).unwrap_err(),
            EvalError::DivByZero
        );
    }

    #[test]
    fn sharing_forces_a_binding_once() {
        // a = fact 8 is used twice; call-by-need pays for it once.
        let src = "(define (main n) (let ((a (fact n))) (+ a a)))
                   (define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))";
        let p = parse_program(src).unwrap();
        let mut ev = LazyEvaluator::with_fuel(&p, 100_000);
        assert_eq!(ev.run_main(&[Value::Int(8)]).unwrap(), Value::Int(80_640));
        let lazy_fuel = ev.fuel_used();
        let mut sv = Evaluator::with_fuel(&p, 100_000);
        sv.run_main(&[Value::Int(8)]).unwrap();
        let strict_fuel = sv.fuel_used();
        assert!(
            lazy_fuel < strict_fuel,
            "lazy {lazy_fuel} should share; strict {strict_fuel} recomputes"
        );
    }

    #[test]
    fn forced_errors_still_surface() {
        let src = "(define (f x) (let ((boom (/ x 0))) (+ boom 1)))";
        assert_eq!(
            lazy(src, &[Value::Int(1)]).unwrap_err(),
            EvalError::DivByZero
        );
    }

    #[test]
    fn cyclic_thunks_are_bottom_not_hangs() {
        // let a = a … is inexpressible in the surface syntax (the binder
        // is not in scope in its own bound expression), so build a cycle
        // through a call that immediately demands its own argument —
        // which is just divergence, caught by fuel.
        let src = "(define (f x) (g (g x)))
                   (define (g y) (g y))";
        assert!(lazy(src, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn higher_order_is_rejected() {
        let src = "(define (f g x) (g x))";
        let p = parse_program(src).unwrap();
        let err = LazyEvaluator::new(&p)
            .run_main(&[Value::Int(1), Value::Int(2)])
            .unwrap_err();
        assert!(matches!(err, EvalError::Unsupported(_)));
    }
}
