//! The standard evaluator (`E` and `E_Prog` of Figure 1).
//!
//! Evaluation is strict and environment-based. A *fuel* counter bounds the
//! number of function applications so that non-terminating programs — which
//! denote `⊥` in the paper — are observable as [`EvalError::OutOfFuel`]
//! rather than hanging tests.

use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::ast::Expr;
use crate::env::Env;
use crate::error::EvalError;
use crate::program::Program;
use crate::value::Value;

/// Default number of function applications before giving up.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// Default call-depth limit (bounds native stack use; non-tail recursion
/// deeper than this reports [`EvalError::DepthExceeded`]).
pub const DEFAULT_MAX_DEPTH: u32 = 200;

/// Default limit on the evaluator's *expression* recursion — the total
/// nesting of `eval` itself, which grows with deeply nested expressions
/// even when the call depth does not (e.g. a parser-built tower of
/// primitives). Converts would-be native stack overflows into structured
/// [`EvalError::DepthExceeded`] errors; calibrated to fire well before the
/// stacks this workspace configures (see `.cargo/config.toml`) run out.
pub const DEFAULT_MAX_EXPR_DEPTH: u32 = 65_536;

/// How often the evaluator consults the wall clock when a deadline is set:
/// every 1024 expression nodes.
const DEADLINE_CHECK_MASK: u64 = 0x3FF;

/// An evaluator for a fixed program.
///
/// # Examples
///
/// ```
/// use ppe_lang::{parse_program, Evaluator, Value};
///
/// let p = parse_program(
///     "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
/// )?;
/// let mut ev = Evaluator::new(&p);
/// assert_eq!(ev.run_main(&[Value::Int(5)])?, Value::Int(120));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'p> {
    program: &'p Program,
    fuel: u64,
    initial_fuel: u64,
    depth: u32,
    max_depth: u32,
    expr_depth: u32,
    max_expr_depth: u32,
    deadline: Option<Duration>,
    deadline_at: Option<Instant>,
    ticks: u64,
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator with the default fuel and depth budgets.
    pub fn new(program: &'p Program) -> Evaluator<'p> {
        Evaluator::with_fuel(program, DEFAULT_FUEL)
    }

    /// Creates an evaluator that performs at most `fuel` applications.
    pub fn with_fuel(program: &'p Program, fuel: u64) -> Evaluator<'p> {
        Evaluator {
            program,
            fuel,
            initial_fuel: fuel,
            depth: 0,
            max_depth: DEFAULT_MAX_DEPTH,
            expr_depth: 0,
            max_expr_depth: DEFAULT_MAX_EXPR_DEPTH,
            deadline: None,
            deadline_at: None,
            ticks: 0,
        }
    }

    /// Sets the call-depth limit (the default is [`DEFAULT_MAX_DEPTH`]).
    pub fn set_max_depth(&mut self, max_depth: u32) {
        self.max_depth = max_depth;
    }

    /// Sets the expression-recursion limit (the default is
    /// [`DEFAULT_MAX_EXPR_DEPTH`]).
    pub fn set_max_expr_depth(&mut self, max_expr_depth: u32) {
        self.max_expr_depth = max_expr_depth;
    }

    /// Sets (or clears) a wall-clock budget per run. The clock starts at
    /// the next [`Evaluator::run_main`] / [`Evaluator::run`]; expiry
    /// reports [`EvalError::DeadlineExceeded`], checked every 1024
    /// expression nodes.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
        self.deadline_at = None;
    }

    /// Runs the program's main function (the paper's `E_Prog`) on `args`.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`]; see the error type for the catalogue. The fuel
    /// budget resets on each call to `run_main`.
    pub fn run_main(&mut self, args: &[Value]) -> Result<Value, EvalError> {
        self.fuel = self.initial_fuel;
        self.deadline_at = self.deadline.map(|d| Instant::now() + d);
        let main = self.program.main();
        self.apply_named(main.name, args.to_vec())
    }

    /// Runs an arbitrary defined function on `args`, resetting fuel.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::run_main`].
    pub fn run(&mut self, name: crate::Symbol, args: &[Value]) -> Result<Value, EvalError> {
        self.fuel = self.initial_fuel;
        self.deadline_at = self.deadline.map(|d| Instant::now() + d);
        self.apply_named(name, args.to_vec())
    }

    /// Number of applications consumed by the last run.
    pub fn fuel_used(&self) -> u64 {
        self.initial_fuel - self.fuel
    }

    fn apply_named(&mut self, name: crate::Symbol, args: Vec<Value>) -> Result<Value, EvalError> {
        let def = self
            .program
            .lookup(name)
            .ok_or(EvalError::UnknownFunction(name))?;
        if def.arity() != args.len() {
            return Err(EvalError::Arity {
                function: name,
                expected: def.arity(),
                got: args.len(),
            });
        }
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        if self.depth >= self.max_depth {
            return Err(EvalError::DepthExceeded);
        }
        self.depth += 1;
        let env = Env::empty().bind_all(def.params.iter().copied().zip(args));
        let body = &def.body;
        let result = self.eval(body, &env);
        self.depth -= 1;
        result
    }

    /// Evaluates an expression in an environment (the paper's `E`).
    ///
    /// Guarded: the evaluator's own recursion is bounded (deeply nested
    /// expressions report [`EvalError::DepthExceeded`] instead of
    /// overflowing the native stack), and the wall-clock deadline, if set,
    /// is checked periodically.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    pub fn eval(&mut self, e: &Expr, env: &Env) -> Result<Value, EvalError> {
        self.expr_depth += 1;
        if self.expr_depth >= self.max_expr_depth {
            self.expr_depth -= 1;
            return Err(EvalError::DepthExceeded);
        }
        self.ticks += 1;
        if self.ticks & DEADLINE_CHECK_MASK == 0 {
            if let Some(at) = self.deadline_at {
                if Instant::now() >= at {
                    self.expr_depth -= 1;
                    return Err(EvalError::DeadlineExceeded);
                }
            }
        }
        let out = self.eval_inner(e, env);
        self.expr_depth -= 1;
        out
    }

    fn eval_inner(&mut self, e: &Expr, env: &Env) -> Result<Value, EvalError> {
        match e {
            Expr::Const(c) => Ok(Value::from_const(*c)),
            Expr::Var(x) => env.lookup(*x).cloned().ok_or(EvalError::UnboundVar(*x)),
            Expr::Prim(p, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                p.eval(&vals)
            }
            Expr::If(c, t, f) => {
                let cond = self.eval(c, env)?;
                match cond {
                    Value::Bool(true) => self.eval(t, env),
                    Value::Bool(false) => self.eval(f, env),
                    _ => Err(EvalError::NonBoolCondition),
                }
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.apply_named(*name, vals)
            }
            Expr::Let(x, b, body) => {
                let v = self.eval(b, env)?;
                let inner = env.bind(*x, v);
                self.eval(body, &inner)
            }
            Expr::Lambda(params, body) => Ok(Value::closure(
                params.clone(),
                Rc::new((**body).clone()),
                env.clone(),
            )),
            Expr::FnRef(f) => Ok(Value::FnVal(*f)),
            Expr::App(f, args) => {
                let fv = self.eval(f, env)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.apply_value(fv, vals)
            }
        }
    }

    /// Applies a function value (closure or top-level reference).
    pub fn apply_value(&mut self, f: Value, args: Vec<Value>) -> Result<Value, EvalError> {
        match f {
            Value::FnVal(name) => self.apply_named(name, args),
            Value::Closure(c) => {
                if c.params.len() != args.len() {
                    return Err(EvalError::Arity {
                        function: crate::Symbol::intern("<lambda>"),
                        expected: c.params.len(),
                        got: args.len(),
                    });
                }
                if self.fuel == 0 {
                    return Err(EvalError::OutOfFuel);
                }
                self.fuel -= 1;
                if self.depth >= self.max_depth {
                    return Err(EvalError::DepthExceeded);
                }
                self.depth += 1;
                let inner = c.env.bind_all(c.params.iter().copied().zip(args));
                let result = self.eval(&c.body, &inner);
                self.depth -= 1;
                result
            }
            _ => Err(EvalError::NotAFunction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, args: &[Value]) -> Result<Value, EvalError> {
        let p = parse_program(src).unwrap();
        Evaluator::new(&p).run_main(args)
    }

    #[test]
    fn evaluates_factorial() {
        let v = run(
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
            &[Value::Int(6)],
        )
        .unwrap();
        assert_eq!(v, Value::Int(720));
    }

    #[test]
    fn evaluates_let_bindings() {
        let v = run(
            "(define (f x) (let ((a (+ x 1)) (b (* a 2))) (- b x)))",
            &[Value::Int(10)],
        )
        .unwrap();
        assert_eq!(v, Value::Int(12)); // a=11, b=22, 22-10=12
    }

    #[test]
    fn evaluates_the_papers_inner_product() {
        let src = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
                   (define (dotprod a b n)
                     (if (= n 0) 0.0
                         (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";
        let a = Value::vector(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(3.0),
        ]);
        let b = Value::vector(vec![
            Value::Float(4.0),
            Value::Float(5.0),
            Value::Float(6.0),
        ]);
        assert_eq!(run(src, &[a, b]).unwrap(), Value::Float(32.0));
    }

    #[test]
    fn fuel_bounds_divergence() {
        // Tail-recursive loops hit the depth limit first (the evaluator is
        // not tail-call optimized); either budget makes divergence finite.
        let err = run("(define (loop x) (loop x))", &[Value::Int(0)]).unwrap_err();
        assert!(matches!(
            err,
            EvalError::DepthExceeded | EvalError::OutOfFuel
        ));
    }

    #[test]
    fn small_fuel_budget_is_respected() {
        let p = parse_program("(define (loop x) (loop x))").unwrap();
        let mut ev = Evaluator::with_fuel(&p, 50);
        assert_eq!(
            ev.run_main(&[Value::Int(0)]).unwrap_err(),
            EvalError::OutOfFuel
        );
    }

    #[test]
    fn non_bool_condition_is_an_error() {
        let err = run("(define (f x) (if x 1 2))", &[Value::Int(3)]).unwrap_err();
        assert_eq!(err, EvalError::NonBoolCondition);
    }

    #[test]
    fn higher_order_closures_capture_their_environment() {
        let src = "(define (main x) (let ((add-x (lambda (y) (+ x y)))) (apply2 add-x 10)))
                   (define (apply2 f v) (f v))";
        assert_eq!(run(src, &[Value::Int(5)]).unwrap(), Value::Int(15));
    }

    #[test]
    fn fnrefs_are_applicable_values() {
        let src = "(define (main x) (twice inc x))
                   (define (twice f x) (f (f x)))
                   (define (inc x) (+ x 1))";
        assert_eq!(run(src, &[Value::Int(1)]).unwrap(), Value::Int(3));
    }

    #[test]
    fn applying_non_function_fails() {
        let src = "(define (main f) (f 1))";
        assert_eq!(
            run(src, &[Value::Int(3)]).unwrap_err(),
            EvalError::NotAFunction
        );
    }

    #[test]
    fn fuel_used_reports_applications() {
        let p = parse_program("(define (f n) (if (= n 0) 0 (f (- n 1))))").unwrap();
        let mut ev = Evaluator::new(&p);
        ev.run_main(&[Value::Int(9)]).unwrap();
        assert_eq!(ev.fuel_used(), 10); // initial call + 9 recursive calls
    }

    #[test]
    fn strictness_errors_propagate_from_arguments() {
        // An erroring argument poisons the call, as strictness demands.
        let src = "(define (f x) (g (/ x 0))) (define (g y) 1)";
        assert_eq!(
            run(src, &[Value::Int(1)]).unwrap_err(),
            EvalError::DivByZero
        );
    }
}
