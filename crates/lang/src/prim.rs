//! The primitive-operator algebra (`Po` and `K_P` of Figure 1).
//!
//! Primitives are the operations of the paper's *semantic algebras*: the
//! integer/boolean algebra of Section 4.1 and the vector abstract data type
//! of Section 6. Each operator carries a *standard-semantics* classification
//! as **closed** (co-domain equals the carrier of its algebra) or **open**
//! (co-domain differs), per Section 3.2 — e.g. `+ : Int² → Int` is closed
//! while `< : Int² → Bool` is open, and `vref : V × Int → Float` is open in
//! the vector algebra.

use std::fmt;

use crate::ast::{Const, F64};
use crate::error::EvalError;
use crate::value::Value;

/// Standard-semantics classification of a primitive operator (Section 3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StdOpClass {
    /// Closed under the carrier of its algebra (`p : A^n → A`).
    Closed,
    /// Co-domain differs from the carrier (`p : A^n → B`).
    Open,
}

/// A primitive operator of the object language.
///
/// # Examples
///
/// ```
/// use ppe_lang::{Prim, Value};
///
/// let v = Prim::Add.eval(&[Value::Int(2), Value::Int(3)]).unwrap();
/// assert_eq!(v, Value::Int(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Prim {
    /// Numeric addition (`+`).
    Add,
    /// Numeric subtraction (`-`).
    Sub,
    /// Numeric multiplication (`*`).
    Mul,
    /// Numeric division (`/`); integer division truncates.
    Div,
    /// Integer remainder (`mod`).
    Mod,
    /// Numeric negation (`neg`).
    Neg,
    /// Equality on constants (`=`).
    Eq,
    /// Disequality (`/=`).
    Ne,
    /// Strict less-than (`<`), the paper's `≺`.
    Lt,
    /// Less-or-equal (`<=`).
    Le,
    /// Strict greater-than (`>`).
    Gt,
    /// Greater-or-equal (`>=`).
    Ge,
    /// Boolean conjunction (`and`).
    And,
    /// Boolean disjunction (`or`).
    Or,
    /// Boolean negation (`not`).
    Not,
    /// `mkvec : Int → V` — creates a zero-filled vector of the given size
    /// (the paper's `MkVec`).
    MkVec,
    /// `updvec : V × Int × a → V` — functional update of one element at a
    /// 1-based index (the paper's `UpdVec`).
    UpdVec,
    /// `vsize : V → Int` — vector size (the paper's `Vecf`).
    VSize,
    /// `vref : V × Int → a` — 1-based element access (the paper's `Vref`).
    VRef,
}

/// Largest vector `mkvec` will allocate; beyond it the call is a
/// [`EvalError::PrimType`] error rather than an allocation failure.
pub const MAX_VECTOR_SIZE: i64 = 16_000_000;

/// All primitive operators, in a fixed order (useful for exhaustive tests).
pub const ALL_PRIMS: [Prim; 19] = [
    Prim::Add,
    Prim::Sub,
    Prim::Mul,
    Prim::Div,
    Prim::Mod,
    Prim::Neg,
    Prim::Eq,
    Prim::Ne,
    Prim::Lt,
    Prim::Le,
    Prim::Gt,
    Prim::Ge,
    Prim::And,
    Prim::Or,
    Prim::Not,
    Prim::MkVec,
    Prim::UpdVec,
    Prim::VSize,
    Prim::VRef,
];

impl Prim {
    /// Surface-syntax spelling of the operator.
    pub fn name(self) -> &'static str {
        match self {
            Prim::Add => "+",
            Prim::Sub => "-",
            Prim::Mul => "*",
            Prim::Div => "/",
            Prim::Mod => "mod",
            Prim::Neg => "neg",
            Prim::Eq => "=",
            Prim::Ne => "/=",
            Prim::Lt => "<",
            Prim::Le => "<=",
            Prim::Gt => ">",
            Prim::Ge => ">=",
            Prim::And => "and",
            Prim::Or => "or",
            Prim::Not => "not",
            Prim::MkVec => "mkvec",
            Prim::UpdVec => "updvec",
            Prim::VSize => "vsize",
            Prim::VRef => "vref",
        }
    }

    /// Parses an operator from its surface spelling.
    pub fn from_name(name: &str) -> Option<Prim> {
        ALL_PRIMS.iter().copied().find(|p| p.name() == name)
    }

    /// Number of arguments the operator takes.
    pub fn arity(self) -> usize {
        match self {
            Prim::Neg | Prim::Not | Prim::MkVec | Prim::VSize => 1,
            Prim::UpdVec => 3,
            _ => 2,
        }
    }

    /// Standard-semantics open/closed classification (Section 3.2).
    ///
    /// Arithmetic is closed over the numeric algebra; comparisons are open
    /// (`Int² → Bool`); boolean connectives are closed over booleans;
    /// `mkvec`/`updvec` are closed over the vector algebra while
    /// `vsize`/`vref` are open — exactly the split used in the paper's Sign
    /// facet (Example 1) and Size facet (Section 6.1).
    pub fn std_class(self) -> StdOpClass {
        match self {
            Prim::Add
            | Prim::Sub
            | Prim::Mul
            | Prim::Div
            | Prim::Mod
            | Prim::Neg
            | Prim::And
            | Prim::Or
            | Prim::Not
            | Prim::MkVec
            | Prim::UpdVec => StdOpClass::Closed,
            Prim::Eq
            | Prim::Ne
            | Prim::Lt
            | Prim::Le
            | Prim::Gt
            | Prim::Ge
            | Prim::VSize
            | Prim::VRef => StdOpClass::Open,
        }
    }

    /// The standard semantics `K_P[p]` of Figure 1.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::PrimType`] on ill-typed arguments or an arity
    /// mismatch, [`EvalError::DivByZero`] for division/remainder by zero, and
    /// [`EvalError::VectorIndex`] for out-of-range vector accesses. These
    /// model the `⊥` outcomes of the paper's partial operators.
    pub fn eval(self, args: &[Value]) -> Result<Value, EvalError> {
        if args.len() != self.arity() {
            return Err(EvalError::PrimType {
                prim: self,
                detail: format!("expected {} arguments, got {}", self.arity(), args.len()),
            });
        }
        match self {
            Prim::Add => numeric2(self, args, |a, b| a.checked_add(b), |a, b| a + b),
            Prim::Sub => numeric2(self, args, |a, b| a.checked_sub(b), |a, b| a - b),
            Prim::Mul => numeric2(self, args, |a, b| a.checked_mul(b), |a, b| a * b),
            Prim::Div => match (&args[0], &args[1]) {
                (Value::Int(_), Value::Int(0)) => Err(EvalError::DivByZero),
                (Value::Int(a), Value::Int(b)) => a
                    .checked_div(*b)
                    .map(Value::Int)
                    .ok_or(EvalError::IntOverflow { prim: self }),
                (Value::Float(a), Value::Float(b)) => {
                    if *b == 0.0 {
                        Err(EvalError::DivByZero)
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                _ => Err(type_err(self, args)),
            },
            Prim::Mod => match (&args[0], &args[1]) {
                (Value::Int(_), Value::Int(0)) => Err(EvalError::DivByZero),
                (Value::Int(a), Value::Int(b)) => a
                    .checked_rem_euclid(*b)
                    .map(Value::Int)
                    .ok_or(EvalError::IntOverflow { prim: self }),
                _ => Err(type_err(self, args)),
            },
            Prim::Neg => match &args[0] {
                Value::Int(a) => a
                    .checked_neg()
                    .map(Value::Int)
                    .ok_or(EvalError::IntOverflow { prim: self }),
                Value::Float(a) => Ok(Value::Float(-a)),
                _ => Err(type_err(self, args)),
            },
            Prim::Eq => compare(self, args, |o| o == std::cmp::Ordering::Equal),
            Prim::Ne => compare(self, args, |o| o != std::cmp::Ordering::Equal),
            Prim::Lt => compare(self, args, |o| o == std::cmp::Ordering::Less),
            Prim::Le => compare(self, args, |o| o != std::cmp::Ordering::Greater),
            Prim::Gt => compare(self, args, |o| o == std::cmp::Ordering::Greater),
            Prim::Ge => compare(self, args, |o| o != std::cmp::Ordering::Less),
            Prim::And => boolean2(self, args, |a, b| a && b),
            Prim::Or => boolean2(self, args, |a, b| a || b),
            Prim::Not => match &args[0] {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                _ => Err(type_err(self, args)),
            },
            Prim::MkVec => match &args[0] {
                // Cap vector sizes: a bad size is a program error, not an
                // out-of-memory abort.
                Value::Int(n) if (0..=MAX_VECTOR_SIZE).contains(n) => {
                    Ok(Value::vector(vec![Value::Float(0.0); *n as usize]))
                }
                _ => Err(type_err(self, args)),
            },
            Prim::UpdVec => match (&args[0], &args[1]) {
                (Value::Vector(v), Value::Int(i)) => {
                    let idx = vector_index(*i, v.len())?;
                    let mut out = v.as_ref().clone();
                    out[idx] = args[2].clone();
                    Ok(Value::vector(out))
                }
                _ => Err(type_err(self, args)),
            },
            Prim::VSize => match &args[0] {
                Value::Vector(v) => Ok(Value::Int(v.len() as i64)),
                _ => Err(type_err(self, args)),
            },
            Prim::VRef => match (&args[0], &args[1]) {
                (Value::Vector(v), Value::Int(i)) => {
                    let idx = vector_index(*i, v.len())?;
                    Ok(v[idx].clone())
                }
                _ => Err(type_err(self, args)),
            },
        }
    }

    /// Evaluates the primitive over constants, the form used by the
    /// specializer's `SK_P` (Figure 2) when every argument is a constant.
    ///
    /// # Errors
    ///
    /// As for [`Prim::eval`]; additionally any argument or result that is not
    /// representable as a constant (e.g. a vector) yields
    /// [`EvalError::PrimType`].
    pub fn eval_consts(self, args: &[Const]) -> Result<Const, EvalError> {
        let vals: Vec<Value> = args.iter().map(|c| Value::from_const(*c)).collect();
        let out = self.eval(&vals)?;
        out.to_const().ok_or(EvalError::PrimType {
            prim: self,
            detail: "result is not a first-order constant".to_owned(),
        })
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn type_err(prim: Prim, args: &[Value]) -> EvalError {
    EvalError::PrimType {
        prim,
        detail: format!("ill-typed arguments {args:?}"),
    }
}

/// Converts a paper-style 1-based index into a checked 0-based one.
fn vector_index(i: i64, len: usize) -> Result<usize, EvalError> {
    if i >= 1 && (i as u64) <= len as u64 {
        Ok((i - 1) as usize)
    } else {
        Err(EvalError::VectorIndex { index: i, len })
    }
}

fn numeric2(
    prim: Prim,
    args: &[Value],
    ints: impl Fn(i64, i64) -> Option<i64>,
    floats: impl Fn(f64, f64) -> f64,
) -> Result<Value, EvalError> {
    match (&args[0], &args[1]) {
        (Value::Int(a), Value::Int(b)) => ints(*a, *b)
            .map(Value::Int)
            .ok_or(EvalError::IntOverflow { prim }),
        (Value::Float(a), Value::Float(b)) => {
            let r = floats(*a, *b);
            if r.is_nan() {
                Err(EvalError::PrimType {
                    prim,
                    detail: "floating-point result is NaN".to_owned(),
                })
            } else {
                Ok(Value::Float(r))
            }
        }
        _ => Err(type_err(prim, args)),
    }
}

fn boolean2(
    prim: Prim,
    args: &[Value],
    op: impl Fn(bool, bool) -> bool,
) -> Result<Value, EvalError> {
    match (&args[0], &args[1]) {
        (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(op(*a, *b))),
        _ => Err(type_err(prim, args)),
    }
}

fn compare(
    prim: Prim,
    args: &[Value],
    accept: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<Value, EvalError> {
    let ord = match (&args[0], &args[1]) {
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        (Value::Float(a), Value::Float(b)) => {
            a.partial_cmp(b).ok_or_else(|| type_err(prim, args))?
        }
        (Value::Bool(a), Value::Bool(b)) if matches!(prim, Prim::Eq | Prim::Ne) => a.cmp(b),
        _ => return Err(type_err(prim, args)),
    };
    Ok(Value::Bool(accept(ord)))
}

#[allow(dead_code)]
fn float_const(x: f64) -> Option<Const> {
    F64::new(x).map(Const::Float)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in ALL_PRIMS {
            assert_eq!(Prim::from_name(p.name()), Some(p), "{p:?}");
        }
        assert_eq!(Prim::from_name("frobnicate"), None);
    }

    #[test]
    fn arithmetic_on_ints() {
        assert_eq!(
            Prim::Add.eval(&[Value::Int(2), Value::Int(40)]).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Prim::Mul.eval(&[Value::Int(-3), Value::Int(5)]).unwrap(),
            Value::Int(-15)
        );
        assert_eq!(Prim::Neg.eval(&[Value::Int(7)]).unwrap(), Value::Int(-7));
    }

    #[test]
    fn arithmetic_on_floats() {
        assert_eq!(
            Prim::Add
                .eval(&[Value::Float(1.5), Value::Float(2.25)])
                .unwrap(),
            Value::Float(3.75)
        );
    }

    #[test]
    fn division_by_zero_is_bottom() {
        assert!(matches!(
            Prim::Div.eval(&[Value::Int(1), Value::Int(0)]),
            Err(EvalError::DivByZero)
        ));
        assert!(matches!(
            Prim::Mod.eval(&[Value::Int(1), Value::Int(0)]),
            Err(EvalError::DivByZero)
        ));
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        assert!(matches!(
            Prim::Add.eval(&[Value::Int(i64::MAX), Value::Int(1)]),
            Err(EvalError::IntOverflow { .. })
        ));
    }

    #[test]
    fn comparisons_are_open_and_boolean() {
        assert_eq!(Prim::Lt.std_class(), StdOpClass::Open);
        assert_eq!(
            Prim::Lt.eval(&[Value::Int(0), Value::Int(3)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Prim::Ge.eval(&[Value::Int(0), Value::Int(3)]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn equality_works_on_bools() {
        assert_eq!(
            Prim::Eq
                .eval(&[Value::Bool(true), Value::Bool(true)])
                .unwrap(),
            Value::Bool(true)
        );
        assert!(Prim::Lt
            .eval(&[Value::Bool(true), Value::Bool(false)])
            .is_err());
    }

    #[test]
    fn vector_ops_follow_the_paper_adt() {
        // MkVec, UpdVec closed; VSize (Vecf), VRef open.
        assert_eq!(Prim::MkVec.std_class(), StdOpClass::Closed);
        assert_eq!(Prim::UpdVec.std_class(), StdOpClass::Closed);
        assert_eq!(Prim::VSize.std_class(), StdOpClass::Open);
        assert_eq!(Prim::VRef.std_class(), StdOpClass::Open);

        let v = Prim::MkVec.eval(&[Value::Int(3)]).unwrap();
        assert_eq!(
            Prim::VSize.eval(std::slice::from_ref(&v)).unwrap(),
            Value::Int(3)
        );
        let v2 = Prim::UpdVec
            .eval(&[v, Value::Int(2), Value::Float(9.0)])
            .unwrap();
        assert_eq!(
            Prim::VRef.eval(&[v2.clone(), Value::Int(2)]).unwrap(),
            Value::Float(9.0)
        );
        // Indices are 1-based as in the paper's dot-product loop.
        assert!(matches!(
            Prim::VRef.eval(&[v2, Value::Int(0)]),
            Err(EvalError::VectorIndex { .. })
        ));
    }

    #[test]
    fn eval_consts_mirrors_eval() {
        assert_eq!(
            Prim::Add
                .eval_consts(&[Const::Int(1), Const::Int(2)])
                .unwrap(),
            Const::Int(3)
        );
        assert!(Prim::VSize.eval_consts(&[Const::Int(1)]).is_err());
    }

    #[test]
    fn arity_table_is_consistent_with_eval() {
        for p in ALL_PRIMS {
            // Calling with the wrong arity must be a PrimType error.
            let args = vec![Value::Int(1); p.arity() + 1];
            assert!(matches!(p.eval(&args), Err(EvalError::PrimType { .. })));
        }
    }
}
