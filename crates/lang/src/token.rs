//! Tokens of the s-expression surface syntax.

use std::fmt;

/// A lexical token with its 1-based source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token's payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// The payload of a [`Token`].
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// An integer literal.
    Int(i64),
    /// A float literal (contains `.` or exponent).
    Float(f64),
    /// `#t` or `#f`.
    Bool(bool),
    /// An identifier or operator name.
    Ident(String),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Int(n) => write!(f, "{n}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Bool(true) => f.write_str("#t"),
            TokenKind::Bool(false) => f.write_str("#f"),
            TokenKind::Ident(s) => f.write_str(s),
        }
    }
}
