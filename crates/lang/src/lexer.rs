//! Lexer for the s-expression surface syntax.
//!
//! The syntax is Scheme-flavoured: parentheses, integers, floats, `#t`/`#f`,
//! identifiers (which include operator spellings like `+` and `<=`), and
//! `;` line comments.

use crate::error::ParseError;
use crate::token::{Token, TokenKind};

/// Tokenizes `src` into a token stream.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed numeric literals or unknown `#`
/// syntax, with the position of the offending lexeme.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            ';' => {
                // Line comment: skip to end of line.
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                    col,
                });
                chars.next();
                col += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                    col,
                });
                chars.next();
                col += 1;
            }
            '#' => {
                let start_col = col;
                chars.next();
                col += 1;
                match chars.next() {
                    Some('t') => {
                        col += 1;
                        tokens.push(Token {
                            kind: TokenKind::Bool(true),
                            line,
                            col: start_col,
                        });
                    }
                    Some('f') => {
                        col += 1;
                        tokens.push(Token {
                            kind: TokenKind::Bool(false),
                            line,
                            col: start_col,
                        });
                    }
                    other => {
                        return Err(ParseError::new(
                            format!(
                                "unknown `#` syntax: #{}",
                                other.map(String::from).unwrap_or_default()
                            ),
                            line,
                            start_col,
                        ));
                    }
                }
            }
            _ => {
                // An atom: everything up to whitespace, parens, or comment.
                let start_col = col;
                let mut atom = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        break;
                    }
                    atom.push(c);
                    chars.next();
                    col += 1;
                }
                tokens.push(classify_atom(&atom, line, start_col)?);
            }
        }
    }
    Ok(tokens)
}

/// Decides whether an atom is a number or an identifier.
///
/// A leading `-` or `+` followed by a digit makes it numeric, so `-`
/// and `-x` stay identifiers while `-3` and `+4.5` are literals.
fn classify_atom(atom: &str, line: u32, col: u32) -> Result<Token, ParseError> {
    let bytes = atom.as_bytes();
    let numericish = bytes[0].is_ascii_digit()
        || ((bytes[0] == b'-' || bytes[0] == b'+') && bytes.len() > 1 && bytes[1].is_ascii_digit());
    let kind = if numericish {
        if atom.contains('.') || atom.contains('e') || atom.contains('E') {
            let x: f64 = atom.parse().map_err(|_| {
                ParseError::new(format!("malformed float literal `{atom}`"), line, col)
            })?;
            if x.is_nan() {
                return Err(ParseError::new("float literal is NaN", line, col));
            }
            TokenKind::Float(x)
        } else {
            let n: i64 = atom.parse().map_err(|_| {
                ParseError::new(format!("malformed integer literal `{atom}`"), line, col)
            })?;
            TokenKind::Int(n)
        }
    } else {
        TokenKind::Ident(atom.to_owned())
    };
    Ok(Token { kind, line, col })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_parens_and_atoms() {
        assert_eq!(
            kinds("(+ 1 x)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("+".to_owned()),
                TokenKind::Int(1),
                TokenKind::Ident("x".to_owned()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn lexes_negative_numbers_vs_minus_ident() {
        assert_eq!(kinds("-3"), vec![TokenKind::Int(-3)]);
        assert_eq!(kinds("-"), vec![TokenKind::Ident("-".to_owned())]);
        assert_eq!(kinds("-x"), vec![TokenKind::Ident("-x".to_owned())]);
    }

    #[test]
    fn lexes_floats() {
        assert_eq!(kinds("2.5"), vec![TokenKind::Float(2.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
    }

    #[test]
    fn lexes_booleans() {
        assert_eq!(
            kinds("#t #f"),
            vec![TokenKind::Bool(true), TokenKind::Bool(false)]
        );
        assert!(lex("#q").is_err());
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 ; two three\n4"),
            vec![TokenKind::Int(1), TokenKind::Int(4)]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("(\n  foo)").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 6));
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(lex("12ab").is_err());
        assert!(lex("1.2.3").is_err());
    }
}
