//! Abstract syntax of the object language (Figure 1 of the paper, extended
//! with `let` sugar and the higher-order forms of Section 5.5).

use std::fmt;

use crate::prim::Prim;
use crate::symbol::Symbol;

/// A totally ordered, hashable wrapper around `f64`.
///
/// Constants appear as keys of the specialization cache `Sf`, so they must be
/// `Eq + Hash`. NaN is rejected at construction; the remaining values admit
/// the usual total order.
///
/// # Examples
///
/// ```
/// use ppe_lang::F64;
///
/// let x = F64::new(1.5).unwrap();
/// assert_eq!(x.get(), 1.5);
/// assert!(F64::new(f64::NAN).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct F64(f64);

impl F64 {
    /// Wraps `v`, returning `None` if it is NaN.
    pub fn new(v: f64) -> Option<F64> {
        if v.is_nan() {
            None
        } else {
            Some(F64(v))
        }
    }

    /// Returns the underlying `f64`.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64 {}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalize -0.0 to 0.0 so that Eq and Hash agree.
        let bits = if self.0 == 0.0 {
            0u64
        } else {
            self.0.to_bits()
        };
        bits.hash(state);
    }
}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &F64) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &F64) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("F64 is never NaN")
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A literal constant of the language (domain `Const` of Figure 1).
///
/// The paper's basic semantic domains are integers and booleans; Section 6
/// additionally uses floating-point vector elements, so floats are included.
/// The `Ord` instance is an arbitrary total order (for use in ordered
/// collections), not the language's comparison semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Const {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A floating-point literal (never NaN).
    Float(F64),
}

impl Const {
    /// True if this constant is a boolean `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Const::Bool(true))
    }

    /// Returns the integer payload, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Const::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a boolean constant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Const::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(n) => write!(f, "{n}"),
            Const::Bool(true) => f.write_str("#t"),
            Const::Bool(false) => f.write_str("#f"),
            Const::Float(x) => write!(f, "{x}"),
        }
    }
}

impl From<i64> for Const {
    fn from(n: i64) -> Const {
        Const::Int(n)
    }
}

impl From<bool> for Const {
    fn from(b: bool) -> Const {
        Const::Bool(b)
    }
}

/// An expression of the object language.
///
/// The grammar is that of Figure 1 —
/// `e ::= c | x | p(e₁,…,eₙ) | f(e₁,…,eₙ) | if e₁ e₂ e₃` —
/// extended with `let` (used by the paper's Section 6 example) and the
/// higher-order forms of Section 5.5 (`lambda`, general application, and
/// top-level function references).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A constant `c`.
    Const(Const),
    /// A variable reference `x`.
    Var(Symbol),
    /// A primitive application `p(e₁, …, eₙ)`.
    Prim(Prim, Vec<Expr>),
    /// A conditional `if e₁ e₂ e₃`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A call of a named top-level function `f(e₁, …, eₙ)`.
    Call(Symbol, Vec<Expr>),
    /// `let x = e₁ in e₂` (sugar; Section 6 uses it).
    Let(Symbol, Box<Expr>, Box<Expr>),
    /// A lambda abstraction `λ(x₁,…,xₙ). e` (Section 5.5).
    Lambda(Vec<Symbol>, Box<Expr>),
    /// A general application `e(e₁, …, eₙ)` of a computed function
    /// (Section 5.5).
    App(Box<Expr>, Vec<Expr>),
    /// A reference to a top-level function used as a value (Section 5.5).
    FnRef(Symbol),
}

impl Expr {
    /// Shorthand for an integer constant expression.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Const::Int(n))
    }

    /// Shorthand for a boolean constant expression.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Const::Bool(b))
    }

    /// Shorthand for a variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Symbol::intern(name))
    }

    /// Shorthand for a call expression.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call(Symbol::intern(name), args)
    }

    /// Shorthand for a primitive application.
    pub fn prim(p: Prim, args: Vec<Expr>) -> Expr {
        Expr::Prim(p, args)
    }

    /// If this expression is a constant, returns it.
    pub fn as_const(&self) -> Option<Const> {
        match self {
            Expr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// True if the expression is a literal constant (`e' ∈ Const` in the
    /// paper's specializer, Figure 2).
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Const(_))
    }

    /// Number of nodes in the expression tree; used by size-bounded
    /// specialization policies and by benchmarks reporting residual size.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => 1,
            Expr::Prim(_, args) | Expr::Call(_, args) => {
                1 + args.iter().map(Expr::size).sum::<usize>()
            }
            Expr::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Expr::Let(_, b, body) => 1 + b.size() + body.size(),
            Expr::Lambda(_, body) => 1 + body.size(),
            Expr::App(f, args) => 1 + f.size() + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// Collects the free variables of the expression into `out`
    /// (top-level function names referenced by `Call`/`FnRef` excluded).
    pub fn free_vars(&self, out: &mut Vec<Symbol>) {
        fn go(e: &Expr, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
            match e {
                Expr::Const(_) | Expr::FnRef(_) => {}
                Expr::Var(x) => {
                    if !bound.contains(x) && !out.contains(x) {
                        out.push(*x);
                    }
                }
                Expr::Prim(_, args) | Expr::Call(_, args) => {
                    for a in args {
                        go(a, bound, out);
                    }
                }
                Expr::If(c, t, f) => {
                    go(c, bound, out);
                    go(t, bound, out);
                    go(f, bound, out);
                }
                Expr::Let(x, b, body) => {
                    go(b, bound, out);
                    bound.push(*x);
                    go(body, bound, out);
                    bound.pop();
                }
                Expr::Lambda(params, body) => {
                    let n = bound.len();
                    bound.extend_from_slice(params);
                    go(body, bound, out);
                    bound.truncate(n);
                }
                Expr::App(f, args) => {
                    go(f, bound, out);
                    for a in args {
                        go(a, bound, out);
                    }
                }
            }
        }
        go(self, &mut Vec::new(), out);
    }
}

impl From<Const> for Expr {
    fn from(c: Const) -> Expr {
        Expr::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_rejects_nan() {
        assert!(F64::new(f64::NAN).is_none());
        assert!(F64::new(2.0).is_some());
    }

    #[test]
    fn f64_orders_totally() {
        let a = F64::new(-1.0).unwrap();
        let b = F64::new(3.5).unwrap();
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn f64_negative_zero_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let pz = F64::new(0.0).unwrap();
        let nz = F64::new(-0.0).unwrap();
        assert_eq!(pz, nz);
        let h = |x: F64| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(pz), h(nz));
    }

    #[test]
    fn const_display() {
        assert_eq!(Const::Int(-3).to_string(), "-3");
        assert_eq!(Const::Bool(true).to_string(), "#t");
        assert_eq!(Const::Float(F64::new(2.0).unwrap()).to_string(), "2.0");
    }

    #[test]
    fn expr_size_counts_nodes() {
        let e = Expr::prim(Prim::Add, vec![Expr::int(1), Expr::var("x")]);
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn free_vars_respect_binders() {
        // let x = y in x + z  =>  frees are {y, z}
        let e = Expr::Let(
            Symbol::intern("x"),
            Box::new(Expr::var("y")),
            Box::new(Expr::prim(Prim::Add, vec![Expr::var("x"), Expr::var("z")])),
        );
        let mut fv = Vec::new();
        e.free_vars(&mut fv);
        assert_eq!(fv, vec![Symbol::intern("y"), Symbol::intern("z")]);
    }

    #[test]
    fn free_vars_of_lambda_exclude_params() {
        let e = Expr::Lambda(
            vec![Symbol::intern("a")],
            Box::new(Expr::prim(Prim::Add, vec![Expr::var("a"), Expr::var("b")])),
        );
        let mut fv = Vec::new();
        e.free_vars(&mut fv);
        assert_eq!(fv, vec![Symbol::intern("b")]);
    }
}
