//! Programs: ordered collections of first-order function definitions
//! (`Prog` of Figure 1), with well-formedness validation.

use std::collections::HashMap;
use std::fmt;

use crate::ast::Expr;
use crate::symbol::Symbol;

/// A single top-level function definition `f(x₁, …, xₙ) = e`.
#[derive(Clone, Debug, PartialEq)]
pub struct FunDef {
    /// The function's name.
    pub name: Symbol,
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// The function body.
    pub body: Expr,
}

impl FunDef {
    /// Creates a function definition.
    pub fn new(name: Symbol, params: Vec<Symbol>, body: Expr) -> FunDef {
        FunDef { name, params, body }
    }

    /// The function's arity.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// A stable 64-bit structural fingerprint of this single definition:
    /// the same spelling-stable walk as [`Program::fingerprint`], scoped
    /// to one def. Depends only on the name, parameter spellings, and
    /// body structure — never on interner ids — so it is safe to embed
    /// in persistent cache keys. Not memoized; callers that need it
    /// repeatedly (e.g. `ppe-analyze`'s dependency graph) cache it in
    /// their own tables.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(self.name.as_str());
        h.write_usize(self.params.len());
        for p in &self.params {
            h.write_str(p.as_str());
        }
        hash_expr(&self.body, &mut h);
        h.finish()
    }
}

/// A program: a non-empty sequence of definitions whose first element is the
/// main function (`f₁` of Figure 1).
///
/// # Examples
///
/// ```
/// use ppe_lang::parse_program;
///
/// let p = parse_program("(define (id x) x)")?;
/// assert_eq!(p.main().name.as_str(), "id");
/// assert!(p.lookup(p.main().name).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Program {
    defs: Vec<FunDef>,
    index: HashMap<Symbol, usize>,
    /// Memoized [`Program::fingerprint`]. Definitions are immutable after
    /// construction, so the hash is computed at most once per program
    /// (clones inherit an already-computed value for free).
    fingerprint: std::sync::OnceLock<u64>,
}

impl Program {
    /// Builds a program from its definitions.
    ///
    /// # Errors
    ///
    /// Returns a message if `defs` is empty or contains duplicate function
    /// names.
    pub fn new(defs: Vec<FunDef>) -> Result<Program, String> {
        if defs.is_empty() {
            return Err("a program needs at least one definition".to_owned());
        }
        let mut index = HashMap::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            if index.insert(d.name, i).is_some() {
                return Err(format!("duplicate definition of `{}`", d.name));
            }
        }
        Ok(Program {
            defs,
            index,
            fingerprint: std::sync::OnceLock::new(),
        })
    }

    /// The definitions, in source order.
    pub fn defs(&self) -> &[FunDef] {
        &self.defs
    }

    /// The main function (first definition).
    pub fn main(&self) -> &FunDef {
        &self.defs[0]
    }

    /// Looks up a definition by name.
    pub fn lookup(&self, name: Symbol) -> Option<&FunDef> {
        self.index.get(&name).map(|&i| &self.defs[i])
    }

    /// Total AST size over all definitions (for benchmarks and reports).
    pub fn size(&self) -> usize {
        self.defs.iter().map(|d| d.body.size() + 1).sum()
    }

    /// Checks well-formedness: every called function exists with matching
    /// arity, every variable is bound, and parameter lists have no
    /// duplicates. Function references (`FnRef`) must name defined
    /// functions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for def in &self.defs {
            let mut seen = Vec::new();
            for p in &def.params {
                if seen.contains(p) {
                    return Err(format!(
                        "duplicate parameter `{p}` in definition of `{}`",
                        def.name
                    ));
                }
                seen.push(*p);
            }
            self.validate_expr(&def.body, &mut seen, def.name)?;
        }
        Ok(())
    }

    fn validate_expr(
        &self,
        e: &Expr,
        bound: &mut Vec<Symbol>,
        context: Symbol,
    ) -> Result<(), String> {
        match e {
            Expr::Const(_) => Ok(()),
            Expr::Var(x) => {
                if bound.contains(x) {
                    Ok(())
                } else {
                    Err(format!("unbound variable `{x}` in `{context}`"))
                }
            }
            Expr::FnRef(f) => {
                if self.lookup(*f).is_some() {
                    Ok(())
                } else {
                    Err(format!(
                        "reference to unknown function `{f}` in `{context}`"
                    ))
                }
            }
            Expr::Prim(_, args) => {
                for a in args {
                    self.validate_expr(a, bound, context)?;
                }
                Ok(())
            }
            Expr::Call(f, args) => {
                let def = self
                    .lookup(*f)
                    .ok_or_else(|| format!("call to unknown function `{f}` in `{context}`"))?;
                if def.arity() != args.len() {
                    return Err(format!(
                        "`{f}` expects {} arguments but is called with {} in `{context}`",
                        def.arity(),
                        args.len()
                    ));
                }
                for a in args {
                    self.validate_expr(a, bound, context)?;
                }
                Ok(())
            }
            Expr::If(c, t, f) => {
                self.validate_expr(c, bound, context)?;
                self.validate_expr(t, bound, context)?;
                self.validate_expr(f, bound, context)
            }
            Expr::Let(x, b, body) => {
                self.validate_expr(b, bound, context)?;
                bound.push(*x);
                let r = self.validate_expr(body, bound, context);
                bound.pop();
                r
            }
            Expr::Lambda(params, body) => {
                let n = bound.len();
                bound.extend_from_slice(params);
                let r = self.validate_expr(body, bound, context);
                bound.truncate(n);
                r
            }
            Expr::App(f, args) => {
                self.validate_expr(f, bound, context)?;
                for a in args {
                    self.validate_expr(a, bound, context)?;
                }
                Ok(())
            }
        }
    }

    /// A stable 64-bit structural fingerprint of the program.
    ///
    /// Two programs fingerprint equal iff (modulo hash collisions) they
    /// have the same definitions in the same order: the same function
    /// names, parameter spellings, and bodies. The hash depends only on
    /// symbol *spellings* — never on interner ids — so it is stable
    /// across processes and independent of what else was interned first,
    /// which makes it usable as a persistent cache-key component (the
    /// `ppe-server` residual cache keys on it).
    ///
    /// The walk runs once per program and is memoized; repeated calls
    /// (e.g. per-request cache-key construction in `ppe-server`) return
    /// the stored value without touching the AST.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = Fnv64::new();
            h.write_usize(self.defs.len());
            for d in &self.defs {
                h.write_str(d.name.as_str());
                h.write_usize(d.params.len());
                for p in &d.params {
                    h.write_str(p.as_str());
                }
                hash_expr(&d.body, &mut h);
            }
            h.finish()
        })
    }

    /// True if any definition uses the higher-order forms of Section 5.5.
    pub fn is_higher_order(&self) -> bool {
        fn ho(e: &Expr) -> bool {
            match e {
                Expr::Lambda(..) | Expr::App(..) | Expr::FnRef(_) => true,
                Expr::Const(_) | Expr::Var(_) => false,
                Expr::Prim(_, args) | Expr::Call(_, args) => args.iter().any(ho),
                Expr::If(a, b, c) => ho(a) || ho(b) || ho(c),
                Expr::Let(_, a, b) => ho(a) || ho(b),
            }
        }
        self.defs.iter().any(|d| ho(&d.body))
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
/// Not collision-resistant against adversaries — callers that need that
/// must layer something stronger; cache keys over trusted programs don't.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write_bytes(&[b]);
    }

    fn write_u64(&mut self, n: u64) {
        self.write_bytes(&n.to_le_bytes());
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Length-prefixed so that `("ab","c")` and `("a","bc")` differ.
    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_const(c: &crate::ast::Const, h: &mut Fnv64) {
    use crate::ast::Const;
    match c {
        Const::Int(n) => {
            h.write_u8(1);
            h.write_u64(*n as u64);
        }
        Const::Bool(b) => {
            h.write_u8(2);
            h.write_u8(u8::from(*b));
        }
        Const::Float(x) => {
            h.write_u8(3);
            // -0.0 normalizes to 0.0, matching F64's Eq/Hash agreement.
            let bits = if x.get() == 0.0 { 0 } else { x.get().to_bits() };
            h.write_u64(bits);
        }
    }
}

fn hash_expr(e: &Expr, h: &mut Fnv64) {
    match e {
        Expr::Const(c) => {
            h.write_u8(10);
            hash_const(c, h);
        }
        Expr::Var(x) => {
            h.write_u8(11);
            h.write_str(x.as_str());
        }
        Expr::Prim(p, args) => {
            h.write_u8(12);
            h.write_str(p.name());
            h.write_usize(args.len());
            for a in args {
                hash_expr(a, h);
            }
        }
        Expr::If(c, t, f) => {
            h.write_u8(13);
            hash_expr(c, h);
            hash_expr(t, h);
            hash_expr(f, h);
        }
        Expr::Call(f, args) => {
            h.write_u8(14);
            h.write_str(f.as_str());
            h.write_usize(args.len());
            for a in args {
                hash_expr(a, h);
            }
        }
        Expr::Let(x, b, body) => {
            h.write_u8(15);
            h.write_str(x.as_str());
            hash_expr(b, h);
            hash_expr(body, h);
        }
        Expr::Lambda(params, body) => {
            h.write_u8(16);
            h.write_usize(params.len());
            for p in params {
                h.write_str(p.as_str());
            }
            hash_expr(body, h);
        }
        Expr::App(f, args) => {
            h.write_u8(17);
            hash_expr(f, h);
            h.write_usize(args.len());
            for a in args {
                hash_expr(a, h);
            }
        }
        Expr::FnRef(f) => {
            h.write_u8(18);
            h.write_str(f.as_str());
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::pretty_program(self))
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_program;

    #[test]
    fn rejects_duplicate_definitions() {
        assert!(parse_program("(define (f x) x) (define (f y) y)").is_err());
    }

    #[test]
    fn rejects_duplicate_params() {
        assert!(parse_program("(define (f x x) x)").is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(parse_program("(define (f x) (g x x)) (define (g y) y)").is_err());
    }

    #[test]
    fn rejects_unbound_variable() {
        assert!(parse_program("(define (f x) y)").is_err());
    }

    #[test]
    fn size_counts_all_definitions() {
        let p = parse_program("(define (f x) (+ x 1)) (define (g y) y)").unwrap();
        // f: body 3 nodes + 1; g: body 1 node + 1.
        assert_eq!(p.size(), 6);
    }

    #[test]
    fn fingerprint_is_stable_and_structural() {
        let a = parse_program("(define (f x) (+ x 1)) (define (g y) y)").unwrap();
        let b = parse_program("(define (f x)   (+ x 1))\n(define (g y) y)").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "whitespace is immaterial");
        let c = parse_program("(define (f x) (+ x 2)) (define (g y) y)").unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint(), "constants matter");
        let d = parse_program("(define (f z) (+ z 1)) (define (g y) y)").unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint(), "spellings matter");
        let e = parse_program("(define (g y) y) (define (f x) (+ x 1))").unwrap();
        assert_ne!(a.fingerprint(), e.fingerprint(), "definition order matters");
    }

    #[test]
    fn fingerprint_distinguishes_float_and_int() {
        let i = parse_program("(define (f) 1)").unwrap();
        let f = parse_program("(define (f) 1.0)").unwrap();
        assert_ne!(i.fingerprint(), f.fingerprint());
    }

    #[test]
    fn higher_order_detection() {
        let fo = parse_program("(define (f x) (+ x 1))").unwrap();
        assert!(!fo.is_higher_order());
        let ho = parse_program("(define (f g x) (g x))").unwrap();
        assert!(ho.is_higher_order());
    }
}
