//! Pretty-printer: renders expressions and programs back to the surface
//! syntax, with indentation for large forms.
//!
//! Round-trip law (tested property): `parse(pretty(e)) == e` for expressions
//! produced by the parser or the specializers (up to `let` sugar, which the
//! printer re-sugars one binding at a time).

use std::fmt::Write as _;

use crate::ast::Expr;
use crate::program::Program;

/// Width beyond which a form is broken across lines.
const WIDTH: usize = 72;

/// Renders an expression to surface syntax.
///
/// # Examples
///
/// ```
/// use ppe_lang::{parse_expr, pretty_expr};
///
/// let e = parse_expr("(+ 1 (* x 2))")?;
/// assert_eq!(pretty_expr(&e), "(+ 1 (* x 2))");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn pretty_expr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0);
    out
}

/// Renders a whole program, one definition per paragraph.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, def) in p.defs().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = write!(out, "(define ({}", def.name);
        for param in &def.params {
            let _ = write!(out, " {param}");
        }
        out.push(')');
        let body = pretty_expr(&def.body);
        if body.len() + def.name.as_str().len() <= WIDTH {
            let _ = write!(out, " {body})");
        } else {
            out.push('\n');
            let mut indented = String::new();
            write_expr(&mut indented, &def.body, 2);
            let _ = write!(out, "  {indented})");
        }
        out.push('\n');
    }
    out
}

/// One-line rendering, used to decide whether to break.
fn flat(e: &Expr) -> String {
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Var(x) => x.to_string(),
        Expr::FnRef(f) => f.to_string(),
        Expr::Prim(p, args) => {
            let inner: Vec<String> = args.iter().map(flat).collect();
            format!("({} {})", p, inner.join(" "))
        }
        Expr::Call(f, args) => {
            if args.is_empty() {
                format!("({f})")
            } else {
                let inner: Vec<String> = args.iter().map(flat).collect();
                format!("({} {})", f, inner.join(" "))
            }
        }
        Expr::If(c, t, f) => format!("(if {} {} {})", flat(c), flat(t), flat(f)),
        Expr::Let(x, b, body) => format!("(let (({} {})) {})", x, flat(b), flat(body)),
        Expr::Lambda(params, body) => {
            let ps: Vec<String> = params.iter().map(|p| p.to_string()).collect();
            format!("(lambda ({}) {})", ps.join(" "), flat(body))
        }
        Expr::App(f, args) => {
            let mut parts = vec![flat(f)];
            parts.extend(args.iter().map(flat));
            format!("({})", parts.join(" "))
        }
    }
}

fn write_expr(out: &mut String, e: &Expr, indent: usize) {
    let one_line = flat(e);
    if indent + one_line.len() <= WIDTH {
        out.push_str(&one_line);
        return;
    }
    let pad = |out: &mut String, n: usize| {
        out.push('\n');
        for _ in 0..n {
            out.push(' ');
        }
    };
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => out.push_str(&one_line),
        Expr::Prim(p, args) => {
            let _ = write!(out, "({p}");
            let inner = indent + 2;
            for a in args {
                pad(out, inner);
                write_expr(out, a, inner);
            }
            out.push(')');
        }
        Expr::Call(f, args) => {
            let _ = write!(out, "({f}");
            let inner = indent + 2;
            for a in args {
                pad(out, inner);
                write_expr(out, a, inner);
            }
            out.push(')');
        }
        Expr::If(c, t, f) => {
            out.push_str("(if ");
            write_expr(out, c, indent + 4);
            let inner = indent + 4;
            pad(out, inner);
            write_expr(out, t, inner);
            pad(out, inner);
            write_expr(out, f, inner);
            out.push(')');
        }
        Expr::Let(x, b, body) => {
            let _ = write!(out, "(let (({x} ");
            write_expr(out, b, indent + 8 + x.as_str().len());
            out.push_str("))");
            let inner = indent + 2;
            pad(out, inner);
            write_expr(out, body, inner);
            out.push(')');
        }
        Expr::Lambda(params, body) => {
            let ps: Vec<String> = params.iter().map(|p| p.to_string()).collect();
            let _ = write!(out, "(lambda ({})", ps.join(" "));
            let inner = indent + 2;
            pad(out, inner);
            write_expr(out, body, inner);
            out.push(')');
        }
        Expr::App(f, args) => {
            out.push('(');
            write_expr(out, f, indent + 1);
            let inner = indent + 2;
            for a in args {
                pad(out, inner);
                write_expr(out, a, inner);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn small_expressions_stay_on_one_line() {
        let e = parse_expr("(+ 1 (* x 2))").unwrap();
        assert_eq!(pretty_expr(&e), "(+ 1 (* x 2))");
    }

    #[test]
    fn round_trip_simple() {
        for src in [
            "42",
            "#t",
            "x",
            "(neg x)",
            "(if (< x 0) (neg x) x)",
            "(let ((a 1)) (+ a a))",
            "(lambda (x) (+ x 1))",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = pretty_expr(&e);
            let back = parse_expr(&printed).unwrap();
            assert_eq!(e, back, "round-trip of {src}");
        }
    }

    #[test]
    fn round_trip_program() {
        let src = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))";
        let p = parse_program(src).unwrap();
        let printed = pretty_program(&p);
        let back = parse_program(&printed).unwrap();
        assert_eq!(p.defs(), back.defs());
    }

    #[test]
    fn long_forms_break_and_still_parse() {
        // Build a deeply nested sum that exceeds the line width.
        let mut src = "x".to_owned();
        for _ in 0..30 {
            src = format!("(+ {src} 1)");
        }
        let e = parse_expr(&src).unwrap();
        let printed = pretty_expr(&e);
        assert!(printed.contains('\n'));
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }
}
