//! Interned identifiers.
//!
//! Variable and function names occur pervasively in environments, caches and
//! specialization keys, so they are interned once into a global table and
//! handled as copyable 32-bit ids thereafter.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier (variable, function, or primitive name).
///
/// Two `Symbol`s are equal iff their spellings are equal; comparison and
/// hashing are O(1) on the id. Interning is global and never freed, which is
/// appropriate for a compiler-style workload with a bounded name population.
///
/// # Examples
///
/// ```
/// use ppe_lang::Symbol;
///
/// let a = Symbol::intern("dot-prod");
/// let b = Symbol::intern("dot-prod");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "dot-prod");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = i.ids.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.names.len()).expect("symbol table overflow");
        // Leaking is the standard trade for a global interner: names are
        // small, bounded by program text, and live for the process lifetime.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(leaked);
        i.ids.insert(leaked, id);
        Symbol(id)
    }

    /// The symbol's dense interner index. Indices are assigned in interning
    /// order, so they are *not* stable across processes — they are suitable
    /// for in-process tables and fingerprints only (persistent keys must go
    /// through [`Symbol::as_str`]).
    pub(crate) fn index(self) -> u32 {
        self.0
    }

    /// Returns the spelling of this symbol.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("symbol interner poisoned");
        i.names[self.0 as usize]
    }

    /// Returns a fresh symbol spelled `base_n` that has not been interned
    /// before, for generating residual function names.
    pub fn fresh(base: &str) -> Symbol {
        let mut n = 0u64;
        loop {
            let candidate = format!("{base}_{n}");
            {
                let i = interner().lock().expect("symbol interner poisoned");
                if !i.ids.contains_key(candidate.as_str()) {
                    drop(i);
                    return Symbol::intern(&candidate);
                }
            }
            n += 1;
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("x");
        let b = Symbol::intern("x");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "x");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        assert_ne!(Symbol::intern("left"), Symbol::intern("right"));
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Symbol::fresh("spec");
        let b = Symbol::fresh("spec");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("spec_"));
    }

    #[test]
    fn display_matches_spelling() {
        let s = Symbol::intern("dot-prod");
        assert_eq!(s.to_string(), "dot-prod");
        assert_eq!(format!("{s:?}"), "Symbol(dot-prod)");
    }

    #[test]
    fn from_str_interns() {
        let s: Symbol = "abc".into();
        assert_eq!(s, Symbol::intern("abc"));
    }
}
