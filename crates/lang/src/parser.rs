//! Recursive-descent parser for the s-expression surface syntax.
//!
//! Grammar:
//!
//! ```text
//! program ::= define+
//! define  ::= (define (f x …) expr)
//! expr    ::= const | ident
//!           | (if e e e)
//!           | (let ((x e) …) body)
//!           | (lambda (x …) e)
//!           | (p e …)            ; primitive application
//!           | (f e …)            ; call of a top-level function
//!           | (e₀ e …)           ; general application (Section 5.5)
//! ```
//!
//! Identifier resolution is lexical: a locally bound name is a variable (and
//! in operator position produces a general application); otherwise an
//! operator-position name resolves first to a primitive, then to a top-level
//! function call, and a value-position name referring to a top-level
//! function becomes a function reference ([`Expr::FnRef`]).

use std::collections::HashSet;

use crate::ast::{Const, Expr, F64};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::prim::Prim;
use crate::program::{FunDef, Program};
use crate::symbol::Symbol;
use crate::token::{Token, TokenKind};

/// Parses a whole program: a sequence of `(define (f x …) body)` forms.
/// The first definition is the program's main function (`f₁` of Figure 1).
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic errors; semantic
/// problems (unknown functions, arity mismatches, unbound variables) are
/// reported by [`Program::validate`], which this function also runs.
///
/// # Examples
///
/// ```
/// use ppe_lang::parse_program;
///
/// let p = parse_program(
///     "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
/// )?;
/// assert_eq!(p.defs().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);

    // Pass 1: collect the names of all defined functions so that forward
    // references parse as calls.
    let fn_names = p.scan_define_names()?;

    let mut defs = Vec::new();
    while !p.at_end() {
        defs.push(p.parse_define(&fn_names)?);
    }
    if defs.is_empty() {
        return Err(ParseError::new("program has no definitions", 1, 1));
    }
    let program = Program::new(defs).map_err(|e| ParseError::new(e, 1, 1))?;
    program.validate().map_err(|e| ParseError::new(e, 1, 1))?;
    Ok(program)
}

/// Parses a sequence of `(define …)` forms *without* semantic validation.
///
/// Where [`parse_program`] rejects duplicate definitions, unbound
/// variables, unknown functions and arity mismatches up front, this
/// lenient entry point stops at syntax: it returns the raw definitions so
/// that a client — the `ppe-analyze` crate's `ppe check` pass — can
/// diagnose *all* semantic problems itself with structured codes and
/// locations instead of the first one as a parse error. An empty input
/// yields an empty vector (the analyzer reports it).
///
/// # Errors
///
/// Returns a [`ParseError`] only for lexical/syntactic problems (including
/// unknown primitives and primitive-arity mistakes, which this parser
/// resolves while text positions are still in hand).
///
/// # Examples
///
/// ```
/// use ppe_lang::parse_defs;
///
/// // Duplicate definition: rejected by `parse_program`, returned here.
/// let defs = parse_defs("(define (f x) x) (define (f y) y)")?;
/// assert_eq!(defs.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_defs(src: &str) -> Result<Vec<FunDef>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let fn_names = p.scan_define_names()?;
    let mut defs = Vec::new();
    while !p.at_end() {
        defs.push(p.parse_define(&fn_names)?);
    }
    Ok(defs)
}

/// Parses a single expression with no top-level functions in scope.
///
/// Handy in tests and examples for building expressions succinctly.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical/syntactic problems or trailing input.
///
/// # Examples
///
/// ```
/// use ppe_lang::{parse_expr, Expr, Prim};
///
/// let e = parse_expr("(+ 1 2)")?;
/// assert_eq!(e, Expr::prim(Prim::Add, vec![Expr::int(1), Expr::int(2)]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let no_functions = HashSet::new();
    let mut scope = Scope::new(&no_functions);
    let e = p.parse_expr(&mut scope)?;
    if !p.at_end() {
        let (line, col) = p.peek().map_or((0, 0), |t| (t.line, t.col));
        return Err(ParseError::new(
            "trailing input after expression",
            line,
            col,
        ));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Lexical scope: the set of known top-level functions plus a stack of
/// locally bound variables.
struct Scope<'a> {
    functions: &'a HashSet<Symbol>,
    locals: Vec<Symbol>,
}

impl<'a> Scope<'a> {
    fn new(functions: &'a HashSet<Symbol>) -> Scope<'a> {
        Scope {
            functions,
            locals: Vec::new(),
        }
    }

    fn is_local(&self, s: Symbol) -> bool {
        self.locals.contains(&s)
    }

    fn is_function(&self, s: Symbol) -> bool {
        self.functions.contains(&s)
    }
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn last_pos(&self) -> (u32, u32) {
        self.tokens
            .last()
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1))
    }

    fn expect_lparen(&mut self, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => Ok(()),
            Some(t) => Err(ParseError::new(
                format!("expected `(` to start {what}, found `{}`", t.kind),
                t.line,
                t.col,
            )),
            None => {
                let (l, c) = self.last_pos();
                Err(ParseError::new(
                    format!("expected `(` to start {what}, found end of input"),
                    l,
                    c,
                ))
            }
        }
    }

    fn expect_rparen(&mut self, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::RParen,
                ..
            }) => Ok(()),
            Some(t) => Err(ParseError::new(
                format!("expected `)` to close {what}, found `{}`", t.kind),
                t.line,
                t.col,
            )),
            None => {
                let (l, c) = self.last_pos();
                Err(ParseError::new(format!("unclosed {what}"), l, c))
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Symbol, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(Symbol::intern(&s)),
            Some(t) => Err(ParseError::new(
                format!("expected {what}, found `{}`", t.kind),
                t.line,
                t.col,
            )),
            None => {
                let (l, c) = self.last_pos();
                Err(ParseError::new(
                    format!("expected {what}, found end of input"),
                    l,
                    c,
                ))
            }
        }
    }

    /// Pre-scan: find `(define (name …` shapes and collect the names,
    /// without consuming input.
    fn scan_define_names(&mut self) -> Result<HashSet<Symbol>, ParseError> {
        let mut names = HashSet::new();
        let toks = &self.tokens;
        let mut i = 0;
        while i + 3 < toks.len() {
            if toks[i].kind == TokenKind::LParen {
                if let TokenKind::Ident(ref s) = toks[i + 1].kind {
                    if s == "define" && toks[i + 2].kind == TokenKind::LParen {
                        if let TokenKind::Ident(ref f) = toks[i + 3].kind {
                            names.insert(Symbol::intern(f));
                        }
                    }
                }
            }
            i += 1;
        }
        Ok(names)
    }

    fn parse_define(&mut self, fn_names: &HashSet<Symbol>) -> Result<FunDef, ParseError> {
        self.expect_lparen("a definition")?;
        let kw = self.expect_ident("`define`")?;
        if kw.as_str() != "define" {
            let (l, c) = self
                .peek()
                .map(|t| (t.line, t.col))
                .unwrap_or(self.last_pos());
            return Err(ParseError::new(
                format!("expected `define`, found `{kw}`"),
                l,
                c,
            ));
        }
        self.expect_lparen("the function header")?;
        let name = self.expect_ident("a function name")?;
        let mut params = Vec::new();
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::RParen,
                    ..
                }) => {
                    self.next();
                    break;
                }
                Some(Token {
                    kind: TokenKind::Ident(_),
                    ..
                }) => params.push(self.expect_ident("a parameter")?),
                Some(t) => {
                    return Err(ParseError::new(
                        format!("expected a parameter or `)`, found `{}`", t.kind),
                        t.line,
                        t.col,
                    ))
                }
                None => {
                    let (l, c) = self.last_pos();
                    return Err(ParseError::new("unclosed function header", l, c));
                }
            }
        }
        let mut scope = Scope::new(fn_names);
        scope.locals.extend_from_slice(&params);
        let body = self.parse_expr(&mut scope)?;
        self.expect_rparen("the definition")?;
        Ok(FunDef::new(name, params, body))
    }

    fn parse_expr(&mut self, scope: &mut Scope<'_>) -> Result<Expr, ParseError> {
        let tok = match self.next() {
            Some(t) => t,
            None => {
                let (l, c) = self.last_pos();
                return Err(ParseError::new(
                    "expected an expression, found end of input",
                    l,
                    c,
                ));
            }
        };
        match tok.kind {
            TokenKind::Int(n) => Ok(Expr::Const(Const::Int(n))),
            TokenKind::Bool(b) => Ok(Expr::Const(Const::Bool(b))),
            TokenKind::Float(x) => Ok(Expr::Const(Const::Float(
                F64::new(x).expect("lexer rejects NaN"),
            ))),
            TokenKind::Ident(name) => {
                let s = Symbol::intern(&name);
                if !scope.is_local(s) && scope.is_function(s) {
                    Ok(Expr::FnRef(s))
                } else {
                    Ok(Expr::Var(s))
                }
            }
            TokenKind::RParen => Err(ParseError::new("unexpected `)`", tok.line, tok.col)),
            TokenKind::LParen => self.parse_form(scope, tok.line, tok.col),
        }
    }

    /// Parses the contents of a parenthesized form; the `(` is consumed.
    fn parse_form(
        &mut self,
        scope: &mut Scope<'_>,
        line: u32,
        col: u32,
    ) -> Result<Expr, ParseError> {
        let head = match self.peek() {
            Some(t) => t.clone(),
            None => return Err(ParseError::new("unclosed `(`", line, col)),
        };
        if let TokenKind::Ident(ref name) = head.kind {
            match name.as_str() {
                "if" => {
                    self.next();
                    let c = self.parse_expr(scope)?;
                    let t = self.parse_expr(scope)?;
                    let e = self.parse_expr(scope)?;
                    self.expect_rparen("the `if` form")?;
                    return Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)));
                }
                "let" => {
                    self.next();
                    return self.parse_let(scope);
                }
                "lambda" => {
                    self.next();
                    return self.parse_lambda(scope);
                }
                "define" => {
                    return Err(ParseError::new(
                        "`define` is only allowed at the top level",
                        head.line,
                        head.col,
                    ));
                }
                _ => {
                    let s = Symbol::intern(name);
                    if !scope.is_local(s) {
                        if let Some(p) = Prim::from_name(name) {
                            self.next();
                            let args = self.parse_args(scope, "the primitive application")?;
                            if args.len() != p.arity() {
                                return Err(ParseError::new(
                                    format!(
                                        "primitive `{p}` expects {} arguments, got {}",
                                        p.arity(),
                                        args.len()
                                    ),
                                    head.line,
                                    head.col,
                                ));
                            }
                            return Ok(Expr::Prim(p, args));
                        }
                        if scope.is_function(s) {
                            self.next();
                            let args = self.parse_args(scope, "the call")?;
                            return Ok(Expr::Call(s, args));
                        }
                        return Err(ParseError::new(
                            format!("unknown operator `{name}`"),
                            head.line,
                            head.col,
                        ));
                    }
                    // Falls through to general application of a local.
                }
            }
        }
        // General application (e₀ e₁ …) — higher order (Section 5.5).
        let f = self.parse_expr(scope)?;
        let args = self.parse_args(scope, "the application")?;
        Ok(Expr::App(Box::new(f), args))
    }

    fn parse_args(&mut self, scope: &mut Scope<'_>, what: &str) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::RParen,
                    ..
                }) => {
                    self.next();
                    return Ok(args);
                }
                Some(_) => args.push(self.parse_expr(scope)?),
                None => {
                    let (l, c) = self.last_pos();
                    return Err(ParseError::new(format!("unclosed {what}"), l, c));
                }
            }
        }
    }

    /// `(let ((x e) …) body)` desugars into nested [`Expr::Let`]s.
    fn parse_let(&mut self, scope: &mut Scope<'_>) -> Result<Expr, ParseError> {
        self.expect_lparen("the `let` binding list")?;
        let mut bindings = Vec::new();
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::RParen,
                    ..
                }) => {
                    self.next();
                    break;
                }
                Some(_) => {
                    self.expect_lparen("a `let` binding")?;
                    let name = self.expect_ident("a `let`-bound variable")?;
                    let value = self.parse_expr(scope)?;
                    self.expect_rparen("the `let` binding")?;
                    bindings.push((name, value));
                }
                None => {
                    let (l, c) = self.last_pos();
                    return Err(ParseError::new("unclosed `let` binding list", l, c));
                }
            }
        }
        // Bindings are sequential (let*-style): each is in scope for the
        // next and the body.
        let depth = scope.locals.len();
        for (name, _) in &bindings {
            scope.locals.push(*name);
        }
        let body = self.parse_expr(scope)?;
        scope.locals.truncate(depth);
        self.expect_rparen("the `let` form")?;
        let mut expr = body;
        for (name, value) in bindings.into_iter().rev() {
            expr = Expr::Let(name, Box::new(value), Box::new(expr));
        }
        Ok(expr)
    }

    fn parse_lambda(&mut self, scope: &mut Scope<'_>) -> Result<Expr, ParseError> {
        self.expect_lparen("the `lambda` parameter list")?;
        let mut params = Vec::new();
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::RParen,
                    ..
                }) => {
                    self.next();
                    break;
                }
                Some(Token {
                    kind: TokenKind::Ident(_),
                    ..
                }) => params.push(self.expect_ident("a parameter")?),
                Some(t) => {
                    return Err(ParseError::new(
                        format!("expected a parameter or `)`, found `{}`", t.kind),
                        t.line,
                        t.col,
                    ))
                }
                None => {
                    let (l, c) = self.last_pos();
                    return Err(ParseError::new("unclosed `lambda` parameter list", l, c));
                }
            }
        }
        let depth = scope.locals.len();
        scope.locals.extend_from_slice(&params);
        let body = self.parse_expr(scope)?;
        scope.locals.truncate(depth);
        self.expect_rparen("the `lambda` form")?;
        Ok(Expr::Lambda(params, Box::new(body)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_constants_and_vars() {
        assert_eq!(parse_expr("42").unwrap(), Expr::int(42));
        assert_eq!(parse_expr("#t").unwrap(), Expr::bool(true));
        assert_eq!(parse_expr("x").unwrap(), Expr::var("x"));
        assert_eq!(
            parse_expr("2.5").unwrap(),
            Expr::Const(Const::Float(F64::new(2.5).unwrap()))
        );
    }

    #[test]
    fn parses_if_and_prims() {
        let e = parse_expr("(if (< x 0) (neg x) x)").unwrap();
        assert_eq!(
            e,
            Expr::If(
                Box::new(Expr::prim(Prim::Lt, vec![Expr::var("x"), Expr::int(0)])),
                Box::new(Expr::prim(Prim::Neg, vec![Expr::var("x")])),
                Box::new(Expr::var("x")),
            )
        );
    }

    #[test]
    fn parses_let_star_semantics() {
        let e = parse_expr("(let ((a 1) (b a)) (+ a b))").unwrap();
        match e {
            Expr::Let(a, v, rest) => {
                assert_eq!(a.as_str(), "a");
                assert_eq!(*v, Expr::int(1));
                match *rest {
                    Expr::Let(b, bv, _) => {
                        assert_eq!(b.as_str(), "b");
                        assert_eq!(*bv, Expr::var("a"));
                    }
                    other => panic!("expected inner let, got {other:?}"),
                }
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn prim_arity_is_checked_at_parse_time() {
        assert!(parse_expr("(+ 1)").is_err());
        assert!(parse_expr("(not #t #f)").is_err());
    }

    #[test]
    fn parses_program_with_forward_references() {
        let p = parse_program(
            "(define (even n) (if (= n 0) #t (odd (- n 1))))
             (define (odd n) (if (= n 0) #f (even (- n 1))))",
        )
        .unwrap();
        assert_eq!(p.defs().len(), 2);
        assert_eq!(p.main().name.as_str(), "even");
    }

    #[test]
    fn locals_shadow_functions_and_prims() {
        // Parameter `f` shadows nothing special; applying it is a general
        // application, not a call.
        let p = parse_program("(define (apply1 f x) (f x))").unwrap();
        match &p.main().body {
            Expr::App(f, args) => {
                assert_eq!(**f, Expr::var("f"));
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn function_in_value_position_is_a_fnref() {
        let p = parse_program(
            "(define (main x) (twice inc x))
             (define (twice f x) (f (f x)))
             (define (inc x) (+ x 1))",
        )
        .unwrap();
        match &p.main().body {
            Expr::Call(name, args) => {
                assert_eq!(name.as_str(), "twice");
                assert_eq!(args[0], Expr::FnRef(Symbol::intern("inc")));
            }
            other => panic!("expected Call, got {other:?}"),
        }
    }

    #[test]
    fn parses_lambda() {
        let e = parse_expr("(lambda (x) (+ x 1))").unwrap();
        match e {
            Expr::Lambda(params, _) => assert_eq!(params.len(), 1),
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_expr("(if #t 1\n  )").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_nested_define_and_unknown_operator() {
        assert!(parse_program("(define (f x) (define (g y) y))").is_err());
        assert!(parse_expr("(frobnicate 1)").is_err());
    }

    #[test]
    fn rejects_empty_program_and_trailing_tokens() {
        assert!(parse_program("   ; nothing\n").is_err());
        assert!(parse_expr("1 2").is_err());
    }
}
