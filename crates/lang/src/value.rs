//! Runtime values (domain `Values` of Figure 1, plus the vector ADT of
//! Section 6 and closures for the higher-order extension of Section 5.5).

use std::fmt;
use std::rc::Rc;

use crate::ast::{Const, Expr, F64};
use crate::env::Env;
use crate::symbol::Symbol;

/// A value of the standard semantics.
///
/// The paper's `Values = Int + Bool` (Figure 1), extended with floats and
/// the vector abstract data type used in Section 6, and with function values
/// for the higher-order language of Section 5.5.
///
/// # Examples
///
/// ```
/// use ppe_lang::{Const, Value};
///
/// let v = Value::from_const(Const::Int(5));
/// assert_eq!(v.to_const(), Some(Const::Int(5)));
/// ```
#[derive(Clone, Debug)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A floating-point number (never NaN; primitives reject NaN results).
    Float(f64),
    /// A vector (the ADT `V` of Section 6); shared immutably.
    Vector(Rc<Vec<Value>>),
    /// A closure created by `lambda` (Section 5.5).
    ///
    /// The payload lives behind one `Rc` so `Value` itself stays two words
    /// wide — every environment slot and VM register move copies 16 bytes
    /// instead of the 48 an inline closure record would force on all
    /// variants.
    Closure(Rc<ClosureData>),
    /// A reference to a top-level function used as a value (Section 5.5).
    FnVal(Symbol),
}

/// The payload of a [`Value::Closure`].
#[derive(Debug)]
pub struct ClosureData {
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// Function body.
    pub body: Rc<Expr>,
    /// Captured environment.
    pub env: Env,
}

impl Value {
    /// Builds a vector value from its elements.
    pub fn vector(elems: Vec<Value>) -> Value {
        Value::Vector(Rc::new(elems))
    }

    /// Builds a closure value.
    pub fn closure(params: Vec<Symbol>, body: Rc<Expr>, env: Env) -> Value {
        Value::Closure(Rc::new(ClosureData { params, body, env }))
    }

    /// Injects a constant into the value domain (the paper's `K`).
    pub fn from_const(c: Const) -> Value {
        match c {
            Const::Int(n) => Value::Int(n),
            Const::Bool(b) => Value::Bool(b),
            Const::Float(x) => Value::Float(x.get()),
        }
    }

    /// Projects a first-order value back to its textual constant (the
    /// paper's `K⁻¹`, i.e. the abstraction `τ̂` of Section 3.2).
    ///
    /// Vectors and function values have no constant representation and
    /// yield `None`.
    pub fn to_const(&self) -> Option<Const> {
        match self {
            Value::Int(n) => Some(Const::Int(*n)),
            Value::Bool(b) => Some(Const::Bool(*b)),
            Value::Float(x) => F64::new(*x).map(Const::Float),
            _ => None,
        }
    }

    /// True for boolean `true` (condition test in `if`).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// A short description of the value's summand, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Float(_) => "float",
            Value::Vector(_) => "vector",
            Value::Closure(_) => "closure",
            Value::FnVal(_) => "function",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Vector(a), Value::Vector(b)) => a == b,
            (Value::FnVal(a), Value::FnVal(b)) => a == b,
            // Closures compare by code and captured environment pointer
            // identity of the body; good enough for tests, never used by
            // the machinery itself.
            (Value::Closure(c1), Value::Closure(c2)) => {
                c1.params == c2.params && Rc::ptr_eq(&c1.body, &c2.body)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(true) => f.write_str("#t"),
            Value::Bool(false) => f.write_str("#f"),
            Value::Float(x) => match F64::new(*x) {
                Some(v) => write!(f, "{v}"),
                None => f.write_str("NaN"),
            },
            Value::Vector(v) => {
                f.write_str("#(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Value::Closure(c) => write!(f, "#<closure/{}>", c.params.len()),
            Value::FnVal(name) => write!(f, "#<fn {name}>"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_round_trip() {
        for c in [
            Const::Int(-4),
            Const::Bool(true),
            Const::Float(F64::new(2.5).unwrap()),
        ] {
            assert_eq!(Value::from_const(c).to_const(), Some(c));
        }
    }

    #[test]
    fn vectors_have_no_constant_form() {
        assert_eq!(Value::vector(vec![Value::Int(1)]).to_const(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Bool(false).to_string(), "#f");
        assert_eq!(
            Value::vector(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "#(1 2)"
        );
    }

    #[test]
    fn kinds_name_the_summand() {
        assert_eq!(Value::Int(0).kind(), "int");
        assert_eq!(Value::vector(vec![]).kind(), "vector");
    }

    #[test]
    fn equality_is_structural_for_first_order_values() {
        assert_eq!(
            Value::vector(vec![Value::Int(1)]),
            Value::vector(vec![Value::Int(1)])
        );
        assert_ne!(Value::Int(1), Value::Bool(true));
    }
}
