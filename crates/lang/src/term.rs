//! Hash-consed terms: an interned, immutable representation of [`Expr`]
//! with O(1) `clone`/`Eq`/`Hash` and precomputed structural metadata.
//!
//! Every [`Term`] is built through a process-wide thread-safe interner, so
//! structurally equal subterms share one allocation: equality is a pointer
//! comparison in the common case, hashing reads a precomputed 64-bit
//! fingerprint, and each node caches its size and free-variable occurrence
//! counts. The specialization pipeline uses terms wherever expression
//! trees are repeatedly cloned, compared, or re-traversed — residual
//! construction in the online engines and the optimizer's binder-use
//! queries (`count_uses` becomes a binary search instead of a traversal).
//!
//! Sharing is safe because [`Expr`] (and hence [`TermNode`]) is immutable:
//! no holder of a `Term` can observe another holder's mutations, there are
//! none. Like the [`Symbol`] table, the interner lives for the process —
//! nodes are never evicted, which keeps canonical pointers stable.
//!
//! # Examples
//!
//! ```
//! use ppe_lang::{parse_expr, Term};
//!
//! let a = Term::from_expr(&parse_expr("(+ x (* y y))").unwrap());
//! let b = Term::from_expr(&parse_expr("(+ x (* y y))").unwrap());
//! assert_eq!(a, b); // same interned node: pointer equality
//! assert_eq!(a.size(), 5);
//! assert_eq!(a.count_free(ppe_lang::Symbol::intern("y")), 2);
//! assert_eq!(a.to_expr(), parse_expr("(+ x (* y y))").unwrap());
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::ast::{Const, Expr};
use crate::prim::Prim;
use crate::symbol::Symbol;

/// The node shape of a [`Term`] — structurally identical to [`Expr`], with
/// interned children.
#[derive(PartialEq, Debug)]
pub enum TermNode {
    /// A constant `c`.
    Const(Const),
    /// A variable reference `x`.
    Var(Symbol),
    /// A primitive application `p(e₁, …, eₙ)`.
    Prim(Prim, Vec<Term>),
    /// A conditional `if e₁ e₂ e₃`.
    If(Term, Term, Term),
    /// A call of a named top-level function.
    Call(Symbol, Vec<Term>),
    /// `let x = e₁ in e₂`.
    Let(Symbol, Term, Term),
    /// A lambda abstraction.
    Lambda(Vec<Symbol>, Term),
    /// A general application of a computed function.
    App(Term, Vec<Term>),
    /// A reference to a top-level function used as a value.
    FnRef(Symbol),
}

/// The shared payload behind a [`Term`] handle.
#[derive(Debug)]
struct TermData {
    node: TermNode,
    /// 64-bit structural fingerprint (in-process: mixes [`Symbol`]
    /// indices, which depend on interning order — see
    /// [`crate::Program::fingerprint`] for the spelling-stable hash).
    fingerprint: u64,
    /// Node count, matching [`Expr::size`].
    size: u32,
    /// Free-variable occurrence counts, sorted by symbol, deduplicated.
    /// `count_free` is a binary search; binder-use queries that would
    /// re-traverse an [`Expr`] read this instead.
    free: Box<[(Symbol, u32)]>,
}

/// An interned, hash-consed expression.
///
/// `clone` is a reference-count bump, equality is pointer equality in the
/// common case (with a structural fallback guarding against fingerprint
/// collisions), and `Hash` writes the precomputed fingerprint.
#[derive(Clone)]
pub struct Term(Arc<TermData>);

/// Counters describing the process-wide term interner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Distinct nodes currently interned (allocations performed).
    pub nodes_interned: u64,
    /// Constructions satisfied by an existing node (sharing events).
    pub hits: u64,
}

impl InternerStats {
    /// Fraction of constructions that reused an existing node, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.nodes_interned + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

/// Buckets of interned terms keyed by fingerprint, sharded to keep lock
/// contention low when specializations run concurrently (`ppe serve`).
struct Interner {
    shards: [Mutex<HashMap<u64, Vec<Term>>>; SHARDS],
}

static INTERNER: OnceLock<Interner> = OnceLock::new();
static NODES_INTERNED: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);

fn interner() -> &'static Interner {
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
    })
}

/// Small integers memoized on the leaf fast path: wide enough for loop
/// counters and vector sizes, narrow enough that the per-thread table
/// stays trivial.
const LEAF_INT_MIN: i64 = -16;
const LEAF_INT_MAX: i64 = 128;

thread_local! {
    /// Leaf fast path: per-thread memos of interned variables (dense by
    /// symbol index) and small constants. Leaves dominate tiny-term
    /// workloads — a 4-element inner-product specialization builds the
    /// same handful of `Var`/`Int` nodes over and over — and paying the
    /// sharded-lock round trip for each one is what regressed
    /// `e1_online_iprod_n4` when terms were first interned. A memo hit
    /// costs one indexed read and an `Arc` bump; misses fall through to
    /// the interner and populate the memo. Memory is bounded by the
    /// symbol table, which is already process-lifetime.
    static VAR_LEAVES: RefCell<Vec<Option<Term>>> = const { RefCell::new(Vec::new()) };
    static CONST_LEAVES: RefCell<Vec<Option<Term>>> = const { RefCell::new(Vec::new()) };
}

/// The memo slot for a constant on the leaf fast path, if it has one
/// (booleans and small integers).
fn const_leaf_slot(c: &Const) -> Option<usize> {
    match c {
        Const::Bool(b) => Some(usize::from(*b)),
        Const::Int(n) if (LEAF_INT_MIN..=LEAF_INT_MAX).contains(n) => {
            Some(2 + (n - LEAF_INT_MIN) as usize)
        }
        _ => None,
    }
}

/// Looks up slot `i` in a leaf memo, or interns `node` and records it.
fn leaf(
    cache: &'static std::thread::LocalKey<RefCell<Vec<Option<Term>>>>,
    i: usize,
    node: impl FnOnce() -> TermNode,
) -> Term {
    cache.with(|memo| {
        if let Some(Some(t)) = memo.borrow().get(i) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
        let t = Term::intern(node());
        let mut memo = memo.borrow_mut();
        if memo.len() <= i {
            memo.resize(i + 1, None);
        }
        memo[i] = Some(t.clone());
        t
    })
}

/// A snapshot of the global interner's counters (monotonic over the
/// process lifetime; diff two snapshots to meter one workload).
pub fn interner_stats() -> InternerStats {
    InternerStats {
        nodes_interned: NODES_INTERNED.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
    }
}

/// splitmix64-style combiner: good diffusion, no allocation, stable
/// within a process.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn const_bits(c: &Const) -> u64 {
    match c {
        Const::Int(n) => mix(1, *n as u64),
        Const::Bool(b) => mix(2, u64::from(*b)),
        Const::Float(x) => {
            // -0.0 normalizes to 0.0, matching F64's Eq/Hash agreement.
            let bits = if x.get() == 0.0 { 0 } else { x.get().to_bits() };
            mix(3, bits)
        }
    }
}

/// Merges sorted occurrence lists, summing counts of equal symbols.
fn merge_free(a: &[(Symbol, u32)], b: &[(Symbol, u32)]) -> Vec<(Symbol, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn without(free: Vec<(Symbol, u32)>, bound: &[Symbol]) -> Vec<(Symbol, u32)> {
    if bound.is_empty() {
        return free;
    }
    free.into_iter()
        .filter(|(x, _)| !bound.contains(x))
        .collect()
}

fn merge_many<'a>(terms: impl Iterator<Item = &'a Term>) -> Vec<(Symbol, u32)> {
    let mut acc: Vec<(Symbol, u32)> = Vec::new();
    for t in terms {
        acc = merge_free(&acc, t.free_vars());
    }
    acc
}

impl Term {
    /// Interns `node`, computing fingerprint, size, and free-variable data
    /// from the (already interned) children, and returns the canonical
    /// handle for it.
    fn intern(node: TermNode) -> Term {
        let (fingerprint, size, free) = describe(&node);
        let shard = &interner().shards[(fingerprint as usize) & (SHARDS - 1)];
        let mut bucket = shard.lock().expect("term interner poisoned");
        let candidates = bucket.entry(fingerprint).or_default();
        if let Some(existing) = candidates.iter().find(|t| t.0.node == node) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return existing.clone();
        }
        NODES_INTERNED.fetch_add(1, Ordering::Relaxed);
        let term = Term(Arc::new(TermData {
            node,
            fingerprint,
            size,
            free: free.into_boxed_slice(),
        }));
        candidates.push(term.clone());
        term
    }

    /// An interned constant.
    pub fn constant(c: Const) -> Term {
        match const_leaf_slot(&c) {
            Some(i) => leaf(&CONST_LEAVES, i, || TermNode::Const(c)),
            None => Term::intern(TermNode::Const(c)),
        }
    }

    /// An interned variable reference.
    pub fn var(x: Symbol) -> Term {
        leaf(&VAR_LEAVES, x.index() as usize, || TermNode::Var(x))
    }

    /// An interned primitive application.
    pub fn prim(p: Prim, args: Vec<Term>) -> Term {
        Term::intern(TermNode::Prim(p, args))
    }

    /// An interned conditional.
    pub fn if_(c: Term, t: Term, f: Term) -> Term {
        Term::intern(TermNode::If(c, t, f))
    }

    /// An interned first-order call.
    pub fn call(f: Symbol, args: Vec<Term>) -> Term {
        Term::intern(TermNode::Call(f, args))
    }

    /// An interned `let`.
    pub fn let_(x: Symbol, bound: Term, body: Term) -> Term {
        Term::intern(TermNode::Let(x, bound, body))
    }

    /// An interned lambda.
    pub fn lambda(params: Vec<Symbol>, body: Term) -> Term {
        Term::intern(TermNode::Lambda(params, body))
    }

    /// An interned general application.
    pub fn app(f: Term, args: Vec<Term>) -> Term {
        Term::intern(TermNode::App(f, args))
    }

    /// An interned function reference.
    pub fn fnref(f: Symbol) -> Term {
        Term::intern(TermNode::FnRef(f))
    }

    /// The node, for matching.
    pub fn node(&self) -> &TermNode {
        &self.0.node
    }

    /// The precomputed structural fingerprint (in-process only).
    pub fn fingerprint(&self) -> u64 {
        self.0.fingerprint
    }

    /// Node count, equal to [`Expr::size`] of [`Term::to_expr`] — O(1).
    pub fn size(&self) -> usize {
        self.0.size as usize
    }

    /// Free variables with their occurrence counts, sorted by symbol —
    /// O(1) access (computed once at interning time).
    pub fn free_vars(&self) -> &[(Symbol, u32)] {
        &self.0.free
    }

    /// Number of free occurrences of `x` — a binary search, not a
    /// traversal.
    pub fn count_free(&self, x: Symbol) -> u32 {
        match self.0.free.binary_search_by_key(&x, |&(s, _)| s) {
            Ok(i) => self.0.free[i].1,
            Err(_) => 0,
        }
    }

    /// True if `x` occurs free in the term.
    pub fn has_free(&self, x: Symbol) -> bool {
        self.count_free(x) != 0
    }

    /// Interns an expression tree bottom-up.
    pub fn from_expr(e: &Expr) -> Term {
        match e {
            Expr::Const(c) => Term::constant(*c),
            Expr::Var(x) => Term::var(*x),
            Expr::Prim(p, args) => Term::prim(*p, args.iter().map(Term::from_expr).collect()),
            Expr::If(c, t, f) => {
                Term::if_(Term::from_expr(c), Term::from_expr(t), Term::from_expr(f))
            }
            Expr::Call(f, args) => Term::call(*f, args.iter().map(Term::from_expr).collect()),
            Expr::Let(x, b, body) => Term::let_(*x, Term::from_expr(b), Term::from_expr(body)),
            Expr::Lambda(params, body) => Term::lambda(params.clone(), Term::from_expr(body)),
            Expr::App(f, args) => Term::app(
                Term::from_expr(f),
                args.iter().map(Term::from_expr).collect(),
            ),
            Expr::FnRef(f) => Term::fnref(*f),
        }
    }

    /// Expands the term back into an owned expression tree.
    pub fn to_expr(&self) -> Expr {
        match self.node() {
            TermNode::Const(c) => Expr::Const(*c),
            TermNode::Var(x) => Expr::Var(*x),
            TermNode::Prim(p, args) => Expr::Prim(*p, args.iter().map(Term::to_expr).collect()),
            TermNode::If(c, t, f) => Expr::If(
                Box::new(c.to_expr()),
                Box::new(t.to_expr()),
                Box::new(f.to_expr()),
            ),
            TermNode::Call(f, args) => Expr::Call(*f, args.iter().map(Term::to_expr).collect()),
            TermNode::Let(x, b, body) => {
                Expr::Let(*x, Box::new(b.to_expr()), Box::new(body.to_expr()))
            }
            TermNode::Lambda(params, body) => {
                Expr::Lambda(params.clone(), Box::new(body.to_expr()))
            }
            TermNode::App(f, args) => Expr::App(
                Box::new(f.to_expr()),
                args.iter().map(Term::to_expr).collect(),
            ),
            TermNode::FnRef(f) => Expr::FnRef(*f),
        }
    }
}

/// Computes `(fingerprint, size, free)` for a node whose children are
/// already interned (so their metadata is O(1) to read).
fn describe(node: &TermNode) -> (u64, u32, Vec<(Symbol, u32)>) {
    let kids_fp = |tag: u64, kids: &[Term]| {
        kids.iter()
            .fold(mix(tag, kids.len() as u64), |h, k| mix(h, k.fingerprint()))
    };
    let kids_size = |kids: &[Term]| kids.iter().map(|k| k.0.size).sum::<u32>();
    match node {
        TermNode::Const(c) => (mix(10, const_bits(c)), 1, Vec::new()),
        TermNode::Var(x) => (mix(11, u64::from(x.index())), 1, vec![(*x, 1)]),
        TermNode::Prim(p, args) => (
            kids_fp(mix(12, p.name().len() as u64 ^ fp_str(p.name())), args),
            1 + kids_size(args),
            merge_many(args.iter()),
        ),
        TermNode::If(c, t, f) => (
            mix(
                mix(mix(13, c.fingerprint()), t.fingerprint()),
                f.fingerprint(),
            ),
            1 + c.0.size + t.0.size + f.0.size,
            merge_free(&merge_free(c.free_vars(), t.free_vars()), f.free_vars()),
        ),
        TermNode::Call(f, args) => (
            kids_fp(mix(14, u64::from(f.index())), args),
            1 + kids_size(args),
            merge_many(args.iter()),
        ),
        TermNode::Let(x, b, body) => (
            mix(
                mix(mix(15, u64::from(x.index())), b.fingerprint()),
                body.fingerprint(),
            ),
            1 + b.0.size + body.0.size,
            merge_free(b.free_vars(), &without(body.free_vars().to_vec(), &[*x])),
        ),
        TermNode::Lambda(params, body) => (
            params.iter().fold(mix(16, params.len() as u64), |h, p| {
                mix(h, u64::from(p.index()))
            }) ^ mix(16, body.fingerprint()),
            1 + body.0.size,
            without(body.free_vars().to_vec(), params),
        ),
        TermNode::App(f, args) => (
            kids_fp(mix(17, f.fingerprint()), args),
            1 + f.0.size + kids_size(args),
            merge_free(f.free_vars(), &merge_many(args.iter())),
        ),
        TermNode::FnRef(f) => (mix(18, u64::from(f.index())), 1, Vec::new()),
    }
}

/// FNV-1a over a short string (primitive names), for the fingerprint.
fn fp_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl PartialEq for Term {
    fn eq(&self, other: &Term) -> bool {
        // Canonical interning makes pointer equality the common case; the
        // structural fallback keeps `Eq` sound even under fingerprint
        // collisions (two distinct nodes can share a bucket).
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.fingerprint == other.0.fingerprint
                && self.0.size == other.0.size
                && self.0.node == other.0.node)
    }
}

impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.fingerprint);
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0.node, f)
    }
}

impl From<&Expr> for Term {
    fn from(e: &Expr) -> Term {
        Term::from_expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn t(src: &str) -> Term {
        Term::from_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn structurally_equal_terms_share_one_allocation() {
        let a = t("(+ x (* y y))");
        let b = t("(+ x (* y y))");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn subterms_are_shared_across_distinct_terms() {
        let common = Expr::call("f", vec![Expr::var("x"), Expr::int(1)]);
        let a = Term::from_expr(&Expr::prim(
            crate::Prim::Add,
            vec![common.clone(), Expr::int(2)],
        ));
        let b = Term::from_expr(&Expr::prim(crate::Prim::Sub, vec![common, Expr::int(3)]));
        let (TermNode::Prim(_, xs), TermNode::Prim(_, ys)) = (a.node(), b.node()) else {
            panic!("prim nodes expected");
        };
        assert!(Arc::ptr_eq(&xs[0].0, &ys[0].0), "common subterm not shared");
    }

    #[test]
    fn round_trip_preserves_structure() {
        let exprs = vec![
            parse_expr("(+ 1 2)").unwrap(),
            parse_expr("(if (< x 0) (neg x) x)").unwrap(),
            parse_expr("(let ((y (* x x))) (+ y y))").unwrap(),
            parse_expr("(lambda (a b) (+ a b))").unwrap(),
            parse_expr("1.5").unwrap(),
            parse_expr("#t").unwrap(),
            Expr::call("f", vec![Expr::var("x")]),
            Expr::FnRef(Symbol::intern("f")),
            Expr::App(
                Box::new(Expr::FnRef(Symbol::intern("f"))),
                vec![Expr::int(1), Expr::int(2)],
            ),
        ];
        for e in exprs {
            assert_eq!(Term::from_expr(&e).to_expr(), e, "{e:?}");
        }
    }

    #[test]
    fn size_matches_expr_size() {
        let exprs = vec![
            parse_expr("(+ 1 2)").unwrap(),
            parse_expr("(let ((y 1)) y)").unwrap(),
            Expr::If(
                Box::new(Expr::var("x")),
                Box::new(Expr::int(1)),
                Box::new(Expr::call("f", vec![Expr::call("g", vec![Expr::var("y")])])),
            ),
        ];
        for e in exprs {
            assert_eq!(Term::from_expr(&e).size(), e.size(), "{e:?}");
        }
    }

    #[test]
    fn free_vars_respect_binders_and_count_occurrences() {
        let term = t("(let ((y (+ x x))) (+ y (* x z)))");
        let x = Symbol::intern("x");
        assert_eq!(term.count_free(x), 3);
        assert_eq!(term.count_free(Symbol::intern("y")), 0);
        assert_eq!(term.count_free(Symbol::intern("z")), 1);
        assert!(!term.has_free(Symbol::intern("w")));
        // Sorted, deduplicated.
        let free = term.free_vars();
        assert!(free.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn lambda_params_are_bound() {
        let term = t("(lambda (a) (+ a b))");
        assert_eq!(term.count_free(Symbol::intern("a")), 0);
        assert_eq!(term.count_free(Symbol::intern("b")), 1);
    }

    #[test]
    fn distinct_terms_differ() {
        assert_ne!(t("(+ x 1)"), t("(+ x 2)"));
        assert_ne!(t("(+ x 1)"), t("(- x 1)"));
        assert_ne!(t("x"), t("y"));
    }

    #[test]
    fn hashing_is_fingerprint_based_and_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        let h = |term: &Term| {
            let mut s = DefaultHasher::new();
            term.hash(&mut s);
            s.finish()
        };
        let rec = || {
            Expr::If(
                Box::new(parse_expr("(< n 0)").unwrap()),
                Box::new(Expr::var("x")),
                Box::new(Expr::call(
                    "g",
                    vec![Expr::var("x"), parse_expr("(- n 1)").unwrap()],
                )),
            )
        };
        let a = Term::from_expr(&rec());
        let b = Term::from_expr(&rec());
        assert_eq!(h(&a), h(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn interner_stats_record_sharing() {
        let before = interner_stats();
        // A self-similar term: the two (* q q) children intern once.
        let _ = t("(+ (* q17 q17) (* q17 q17))");
        let after = interner_stats();
        assert!(after.nodes_interned >= before.nodes_interned);
        assert!(
            after.hits > before.hits,
            "shared subterm construction must count as a hit"
        );
    }

    #[test]
    fn stats_hit_rate_is_bounded() {
        let s = InternerStats {
            nodes_interned: 3,
            hits: 1,
        };
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(InternerStats::default().hit_rate(), 0.0);
    }
}
