//! Error types for parsing and evaluation.

use std::error::Error;
use std::fmt;

use crate::prim::Prim;
use crate::symbol::Symbol;

/// An error raised while parsing source text.
///
/// Carries a 1-based line/column position of the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the error.
    pub line: u32,
    /// 1-based column of the error.
    pub col: u32,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, line: u32, col: u32) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

/// An error raised by the standard evaluator or a primitive operator.
///
/// These model the `⊥` (undefined) outcomes of the paper's partial
/// operations, made observable: non-termination is cut off by fuel, partial
/// primitives report their failure mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was not bound in the environment.
    UnboundVar(Symbol),
    /// A called function is not defined in the program.
    UnknownFunction(Symbol),
    /// A function was called with the wrong number of arguments.
    Arity {
        /// The function being applied.
        function: Symbol,
        /// Number of declared parameters.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A primitive was applied to ill-typed arguments.
    PrimType {
        /// The offending primitive.
        prim: Prim,
        /// Description of the mismatch.
        detail: String,
    },
    /// Integer overflow in an arithmetic primitive.
    IntOverflow {
        /// The offending primitive.
        prim: Prim,
    },
    /// Division or remainder by zero.
    DivByZero,
    /// Vector access out of range (indices are 1-based, as in the paper).
    VectorIndex {
        /// The requested index.
        index: i64,
        /// The vector's length.
        len: usize,
    },
    /// The condition of an `if` did not evaluate to a boolean.
    NonBoolCondition,
    /// Attempt to apply a non-function value (higher-order programs).
    NotAFunction,
    /// The evaluator's fuel was exhausted (stand-in for non-termination).
    OutOfFuel,
    /// The evaluator's call-depth limit was exceeded (deep, non-tail
    /// recursion; also a stand-in for non-termination).
    DepthExceeded,
    /// The evaluator's wall-clock deadline expired (see
    /// `Evaluator::set_deadline`).
    DeadlineExceeded,
    /// The evaluator does not support this construct (e.g. higher-order
    /// forms under the call-by-need evaluator).
    Unsupported(&'static str),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            EvalError::UnknownFunction(g) => write!(f, "unknown function `{g}`"),
            EvalError::Arity {
                function,
                expected,
                got,
            } => write!(f, "`{function}` expects {expected} arguments, got {got}"),
            EvalError::PrimType { prim, detail } => {
                write!(f, "primitive `{prim}` type error: {detail}")
            }
            EvalError::IntOverflow { prim } => {
                write!(f, "integer overflow in primitive `{prim}`")
            }
            EvalError::DivByZero => f.write_str("division by zero"),
            EvalError::VectorIndex { index, len } => {
                write!(f, "vector index {index} out of range 1..={len}")
            }
            EvalError::NonBoolCondition => f.write_str("condition of `if` is not a boolean"),
            EvalError::NotAFunction => f.write_str("application of a non-function value"),
            EvalError::OutOfFuel => f.write_str("evaluation fuel exhausted"),
            EvalError::DepthExceeded => f.write_str("evaluation call depth exceeded"),
            EvalError::DeadlineExceeded => f.write_str("evaluation deadline exceeded"),
            EvalError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = EvalError::UnboundVar(Symbol::intern("zz"));
        assert_eq!(e.to_string(), "unbound variable `zz`");
        let p = ParseError::new("unexpected `)`", 3, 7);
        assert_eq!(p.to_string(), "parse error at 3:7: unexpected `)`");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
        assert_send_sync::<EvalError>();
    }
}
